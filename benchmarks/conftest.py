"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark module regenerates one figure of the paper's evaluation
at CI scale (shorter duration / fewer tenants than the paper; the
scaling used is recorded in EXPERIMENTS.md).  The printed rows/series
are the deliverable: they are echoed to the terminal (bypassing pytest's
capture) *and* written to ``benchmarks/results/<figure>.txt`` so the
committed bench output is inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Shared provenance/measurement record; several benches contribute
#: top-level sections, so writers must merge, never clobber.
BENCH_MANIFEST = RESULTS_DIR / "BENCH_manifest.json"


def read_bench_manifest() -> dict:
    """The committed BENCH_manifest.json, or {} if absent/corrupt."""
    try:
        return json.loads(BENCH_MANIFEST.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def merge_bench_manifest(**sections) -> None:
    """Update top-level sections of BENCH_manifest.json in place,
    preserving sections owned by other benchmark modules."""
    manifest = read_bench_manifest()
    manifest.update(sections)
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_MANIFEST.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def emit(capsys, figure_id: str, text: str) -> None:
    """Print a figure's regenerated series and persist it to disk."""
    banner = f"\n{'=' * 72}\n{figure_id}\n{'=' * 72}\n"
    payload = banner + text + "\n"
    with capsys.disabled():
        print(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = (
        figure_id.replace(":", "")
        .replace("(", "")
        .replace(")", "")
        .strip()
        .replace(" ", "_")
        .lower()
    )
    # Figure benches keep their short names; ablations get unique files.
    if slug.startswith("fig"):
        slug = slug.split("_")[0]
    (RESULTS_DIR / f"{slug}.txt").write_text(payload)


def once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark
    timer (the experiments are deterministic, so repeated timing rounds
    would only re-measure identical work)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
