"""Ablation: refresh charging on/off and its period.

Paper §6.2: "without refresh charging it would quickly lead to multiple
large requests taking over the thread pool" -- the schedule quality of
the estimated schedulers "deteriorated by a surprising amount".  Here a
predictable tenant shares the pool with bimodal-cost tenants whose
monsters masquerade as cheap under an EMA; we sweep the refresh period
(including off) for WFQ^E.

Metric: p99 latency of the predictable tenant.
"""

from repro.core.registry import make_scheduler
from repro.experiments.report import format_table
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource, Simulation, ThreadPoolServer
from repro.simulator.rng import make_rng

from conftest import emit, once

PERIODS = {"off": None, "100ms": 0.1, "10ms": 0.01, "1ms": 0.001}
NUM_THREADS = 8
RATE = 1000.0
DURATION = 30.0


def _run_refresh(period) -> float:
    sim = Simulation()
    scheduler = make_scheduler(
        "wfq-e", num_threads=NUM_THREADS, thread_rate=RATE,
        initial_estimate=2.0,
    )
    server = ThreadPoolServer(
        sim, scheduler, num_threads=NUM_THREADS, rate=RATE,
        refresh_interval=period,
    )
    collector = MetricsCollector(
        server, sample_interval=0.1, warmup=5.0, record_dispatches=False
    )
    BackloggedSource(server, "steady", lambda: ("call", 1.0), window=4).start()
    for index in range(6):
        rng = make_rng(23, "refresh-ablation", str(index))

        def sample(rng=rng):
            if rng.random() < 0.05:
                return ("call", float(rng.normal(2000.0, 200.0)))
            return ("call", float(max(0.1, rng.normal(2.0, 0.4))))

        BackloggedSource(server, f"wild-{index}", sample, window=4).start()
    sim.run(until=DURATION)
    return collector.result().latency_p99("steady")


def test_ablation_refresh_charging(benchmark, capsys):
    p99s = once(
        benchmark, lambda: {label: _run_refresh(p) for label, p in PERIODS.items()}
    )
    rows = [(label, value) for label, value in p99s.items()]
    text = "p99 latency [s] of the predictable tenant vs refresh period (WFQ^E):\n"
    text += format_table(["refresh", "steady p99 [s]"], rows)
    text += (
        "\n\nWithout refresh charging, underestimated monsters run to"
        "\ncompletion before the scheduler learns anything; with it, the"
        "\ntenant's clock is charged while the request is still running."
    )
    # The paper's 10ms operating point must not be worse than off.
    assert p99s["10ms"] <= p99s["off"] * 1.1
    emit(capsys, "ablation: refresh charging period", text)
