"""Figure 11: unknown costs with unpredictable workloads.

(a) T1's service received under WFQ^E / WF2Q^E / 2DFQ^E at 0% / 33% /
    66% scrambled replay tenants: 2DFQ^E serves the predictable tenant
    far more smoothly than both baselines at every level;
(b) 2DFQ^E's thread occupancy: size partitioning persists (coarser as
    unpredictability rises).

Known divergence from the paper, documented in EXPERIMENTS.md: our
synthetic random population natively contains unpredictable tenants
(as the paper's Figure 3 shows real populations do), so scrambling
*redistributes* rather than strictly adds unpredictability, and the
baselines' absolute deterioration with the scrambled fraction is
flatter than in the paper.  2DFQ^E's advantage at every level -- the
paper's core claim -- reproduces clearly.
"""

import numpy as np

from repro.experiments.report import format_table, sparkline

from conftest import emit, once
from shared_runs import UNPRED_FRACTIONS, unpredictable_sweep_service


def test_fig11_unpredictable_service(benchmark, capsys):
    sweep = once(benchmark, unpredictable_sweep_service)

    text = ""
    sigma_table = {}
    for fraction, result in zip(sweep.fractions, sweep.results):
        fair = result.fair_rate()
        text += f"--- {fraction:.0%} unpredictable ---\n"
        text += "T1 service rate (100ms bins):\n"
        for name, run in result.runs.items():
            series = run.service_series("T1")
            text += f"  {name:>7} {sparkline(series.service_rate().tolist())}\n"
            sigma_table[(fraction, name)] = series.lag_sigma(fair)
        text += "\n"

    rows = []
    names = sweep.results[0].scheduler_names
    for fraction in sweep.fractions:
        rows.append(
            tuple([f"{fraction:.0%}"] + [sigma_table[(fraction, n)] for n in names])
        )
    text += "sigma(T1 service lag) [s]:\n"
    text += format_table(["unpredictable"] + names, rows)

    text += "\n\nFigure 11b -- 2DFQ^E mean log10(cost) per thread:\n"
    for fraction, result in zip(sweep.fractions, sweep.results):
        means = result["2dfq-e"].thread_cost_partition(32)
        text += f"  {fraction:.0%}: " + " ".join(
            "." if np.isnan(m) else f"{m:.1f}" for m in means
        ) + "\n"

    # Shape assertions: 2DFQ^E beats WFQ^E clearly at every level and
    # never loses to WF2Q^E; at the predictable end the gap is large
    # (paper: 10-15x at full scale).
    for fraction in UNPRED_FRACTIONS:
        assert sigma_table[(fraction, "2dfq-e")] < sigma_table[(fraction, "wfq-e")] / 2
        assert (
            sigma_table[(fraction, "2dfq-e")]
            <= sigma_table[(fraction, "wf2q-e")] * 1.05
        )
    first = UNPRED_FRACTIONS[0]
    assert sigma_table[(first, "2dfq-e")] < sigma_table[(first, "wfq-e")] / 3
    assert sigma_table[(first, "2dfq-e")] < sigma_table[(first, "wf2q-e")] / 3
    # 2DFQ^E partitions by size crisply while the workload is mostly
    # predictable; the partitioning coarsens as tenants are scrambled
    # (paper: "the partitioning becomes more coarse grained").
    partition0 = sweep.results[0]["2dfq-e"].thread_cost_partition(32)
    valid0 = partition0[~np.isnan(partition0)]
    assert valid0[:4].mean() > valid0[-4:].mean() + 0.3
    contrast = []
    for result in sweep.results:
        p = result["2dfq-e"].thread_cost_partition(32)
        v = p[~np.isnan(p)]
        contrast.append(float(v[: len(v) // 2].mean() - v[len(v) // 2:].mean()))
    assert contrast[-1] < contrast[0]  # coarser under unpredictability
    emit(capsys, "fig11: unpredictable workloads (unknown costs)", text)
