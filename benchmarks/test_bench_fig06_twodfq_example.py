"""Figure 6: the 2DFQ schedule on the worked example.

Expected (paper Figure 6b): W0 = a1 c1 d1 c2 ... (larges partitioned to
the low-index thread), W1 = b1 a2 b2 a3 b3 ... (smalls alternate
smoothly on the high-index thread).
"""

from repro.experiments.schedule_examples import (
    gap_statistics,
    render_schedule,
    worked_example,
)

from conftest import emit, once


def test_fig06_twodfq_schedule(benchmark, capsys):
    slots = once(benchmark, lambda: worked_example("2dfq"))
    lines = render_schedule(slots)
    w0 = [s.label for s in slots if s.thread_id == 0]
    w1 = [s.label for s in slots if s.thread_id == 1]
    assert w0[:4] == ["a1", "c1", "d1", "c2"]
    assert w1[:5] == ["b1", "a2", "b2", "a3", "b3"]
    _, max_gap = gap_statistics(slots, "A")
    lines.append(f"tenant A max inter-start gap: {max_gap:.2f}s (smooth)")
    assert max_gap <= 2.0
    emit(capsys, "fig06: 2DFQ worked example", "\n".join(lines))
