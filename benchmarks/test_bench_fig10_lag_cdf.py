"""Figure 10: distributions of service-lag variation, known costs.

(left)  CDF across all tenants of sigma(service lag): the lower quartile
        of tenants -- the ones with small requests -- has orders of
        magnitude lower sigma under 2DFQ than WFQ/WF2Q;
(right) service-lag (p1, p99) ranges of the fixed-cost probe tenants
        t1..t7 (costs 2^8..2^20): ranges shrink with request size, and
        shrink dramatically more under 2DFQ.
"""

import numpy as np

from repro.experiments.production import fixed_cost_lag_ranges, lag_sigma_cdfs
from repro.experiments.report import format_table
from repro.workloads.synthetic import FIXED_COST_IDS

from conftest import emit, once
from shared_runs import production_run


def test_fig10_lag_distributions(benchmark, capsys):
    result = once(benchmark, production_run)

    cdfs = lag_sigma_cdfs(result)
    rows = []
    for name, cdf in cdfs.items():
        rows.append(
            (
                name,
                cdf.quantile(0.10),
                cdf.quantile(0.25),
                cdf.quantile(0.50),
                cdf.quantile(0.75),
            )
        )
    text = "Figure 10 (left) -- CDF of per-tenant sigma(service lag) [s]:\n"
    text += format_table(["scheduler", "q10", "q25", "q50", "q75"], rows)

    ranges = fixed_cost_lag_ranges(result)
    text += "\n\nFigure 10 (right) -- lag (p1, p99) of fixed-cost tenants t1..t7 [s]:\n"
    probe_rows = []
    for tenant in FIXED_COST_IDS:
        row = [tenant]
        for name in result.scheduler_names:
            p1, p99 = ranges[name].get(tenant, (float("nan"), float("nan")))
            row.append(f"[{p1:+.3f}, {p99:+.3f}]")
        probe_rows.append(tuple(row))
    text += format_table(["tenant"] + result.scheduler_names, probe_rows)

    # Shape assertions.  The upper quartile (the tenants that receive
    # substantial service) improves by ~10x under 2DFQ vs WFQ; the
    # paper reports 50-100x for the first quartile at full scale.
    q75 = {name: cdf.quantile(0.75) for name, cdf in cdfs.items()}
    assert q75["2dfq"] < q75["wfq"] / 5
    assert q75["wf2q"] < q75["wfq"] / 5

    # t1's lag range is far tighter under 2DFQ/WF2Q than WFQ, and grows
    # with request size.
    def span(name, tenant):
        p1, p99 = ranges[name][tenant]
        return p99 - p1

    assert span("2dfq", "t1") < span("wfq", "t1") / 5
    assert span("wf2q", "t1") < span("wfq", "t1") / 4
    assert span("2dfq", "t7") > span("2dfq", "t1")
    assert span("wfq", "t7") > 10 * span("2dfq", "t1")
    emit(capsys, "fig10: service-lag variation CDFs", text)
