"""Static-analyzer runtime benchmark and budget gate.

The full ``repro.analysis`` catalogue -- including the RPR1xx abstract
interpretation, the most expensive pass -- runs as a pre-commit / CI
gate, so its wall-clock must stay interactive.  This bench times one
cold run over ``src/repro`` under the complete rule set, records the
measurement into the ``analysis`` section of ``BENCH_manifest.json``,
and fails if the run exceeds the 10-second budget.

A second timed run through the CLI's ``--cache`` path records the warm
(digest-hit) wall-clock next to it.  The warm run skips only the
dataflow pass -- parsing and the single-pass rules still run -- so the
gate on it is the same absolute budget, not a cold-vs-warm race that
sub-second timing noise would make flaky.
"""

from __future__ import annotations

import os
import time

from repro.analysis import Analyzer
from repro.analysis.cli import main as analysis_main

from conftest import emit, merge_bench_manifest

#: Hard wall-clock budget (seconds) for one cold full-catalogue run.
ANALYSIS_BUDGET_SECONDS = 10.0

SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src",
    "repro",
)


def test_analysis_runtime_budget(capsys, tmp_path):
    started = time.perf_counter()  # repro: ignore[RPR001] -- host timing of the analyzer itself
    result = Analyzer().run([SRC_REPRO])
    cold_seconds = time.perf_counter() - started  # repro: ignore[RPR001] -- host timing of the analyzer itself

    assert result.findings == []  # the tree gate, enforced here too

    cache_dir = str(tmp_path / "dfcache")
    assert analysis_main(["--cache", cache_dir, SRC_REPRO]) == 0  # seed
    started = time.perf_counter()  # repro: ignore[RPR001] -- host timing of the analyzer itself
    assert analysis_main(["--cache", cache_dir, SRC_REPRO]) == 0  # hit
    warm_seconds = time.perf_counter() - started  # repro: ignore[RPR001] -- host timing of the analyzer itself
    # One digest entry: the second run hit it rather than re-analyzing.
    entries = [e for e in os.listdir(cache_dir) if e.startswith("dataflow-")]
    assert len(entries) == 1

    section = {
        "budget_seconds": ANALYSIS_BUDGET_SECONDS,
        "cold_seconds": round(cold_seconds, 3),
        "warm_cached_seconds": round(warm_seconds, 3),
        "files_analyzed": result.files_analyzed,
        "rules": len(Analyzer().rules),
    }
    merge_bench_manifest(analysis=section)
    emit(
        capsys,
        "analysis: static-analyzer runtime",
        "\n".join(
            [
                f"cold full catalogue  {cold_seconds:8.3f} s "
                f"(budget {ANALYSIS_BUDGET_SECONDS:.0f} s)",
                f"warm --cache hit     {warm_seconds:8.3f} s",
                f"files analyzed       {result.files_analyzed:8d}",
            ]
        ),
    )

    assert cold_seconds < ANALYSIS_BUDGET_SECONDS
    assert warm_seconds < ANALYSIS_BUDGET_SECONDS
