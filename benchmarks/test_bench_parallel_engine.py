"""Perf harness for the parallel experiment engine (repro.parallel).

Not a paper figure -- this benchmark tracks the engine the other
benches and the figures CLI run on.  It times one randomized-suite
workload (18 independent cells) four ways:

* serial (``jobs=1``), the baseline every other number is relative to;
* fanned out over ``jobs=4`` worker processes;
* cold through a fresh content-addressed run cache (simulate + store);
* warm through the same cache (every cell is a hit).

All four produce numerically identical p99 tables (the determinism
contract of DESIGN.md §10) -- that is asserted here, NaN-aware, before
any timing is recorded.  The timings land in the ``parallel_engine``
section of ``benchmarks/results/BENCH_manifest.json`` next to the
hot-path numbers, with the host's core count recorded because the
parallel speedup is meaningless without it: the >= 2x acceptance bar
for ``jobs=4`` is only enforced when the host actually has >= 4 cores,
while the warm-cache bar (>= 10x over cold) holds on any host.
"""

import math
import os
import time

from repro.experiments.suite import SuiteParameters, run_suite
from repro.parallel import RunCache

from conftest import emit, merge_bench_manifest, once

#: ~2.5 s of serial simulation across 18 cells: big enough that the
#: warm-cache ratio measures deserialization vs simulation, small
#: enough for CI.
BENCH_PARAMS = SuiteParameters(
    num_experiments=6,
    threads=(2, 16),
    replay_tenants=(10, 60),
    replay_speed=(0.5, 2.0),
    backlogged_tenants=(4, 16),
    expensive_tenants=(0, 8),
    unpredictable_tenants=(0, 8),
    duration=3.0,
    thread_rate=100000.0,
)
SCHEDULERS = ("wfq", "2dfq", "2dfq-e")
PARALLEL_JOBS = 4

#: Acceptance bars (ISSUE 3): parallel >= 2x at jobs=4 on a >= 4-core
#: host; warm cache >= 10x over cold anywhere.
MIN_PARALLEL_SPEEDUP = 2.0
MIN_WARM_SPEEDUP = 10.0


def _timed(fn):
    start = time.perf_counter()  # repro: ignore[RPR001] -- host timing of the bench itself
    result = fn()
    return result, time.perf_counter() - start  # repro: ignore[RPR001] -- host timing of the bench itself


def _p99_equal(a, b):
    """NaN-aware equality of two suite p99 tables."""
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if left.keys() != right.keys():
            return False
        for scheduler in left:
            if left[scheduler].keys() != right[scheduler].keys():
                return False
            for tenant, x in left[scheduler].items():
                y = right[scheduler][tenant]
                if not ((math.isnan(x) and math.isnan(y)) or x == y):
                    return False
    return True


def test_bench_parallel_engine(benchmark, capsys, tmp_path):
    def measure():
        suite = lambda **kw: run_suite(BENCH_PARAMS, schedulers=SCHEDULERS, **kw)
        serial, t_serial = _timed(lambda: suite(jobs=1))
        fanned, t_parallel = _timed(lambda: suite(jobs=PARALLEL_JOBS))
        cache = RunCache(tmp_path / "runcache")
        cold, t_cold = _timed(lambda: suite(cache=cache))
        warm, t_warm = _timed(lambda: suite(cache=cache))
        return {
            "serial": (serial, t_serial),
            "parallel": (fanned, t_parallel),
            "cold": (cold, t_cold),
            "warm": (warm, t_warm),
            "cache": cache.stats(),
        }

    data = once(benchmark, measure)
    serial, t_serial = data["serial"]
    times = {mode: data[mode][1] for mode in ("serial", "parallel", "cold", "warm")}

    # Determinism first: a fast wrong answer is not a speedup.
    for mode in ("parallel", "cold", "warm"):
        result = data[mode][0]
        assert result.experiments == serial.experiments
        assert _p99_equal(result.p99, serial.p99), (
            f"{mode} run diverged from the serial baseline"
        )

    cells = len(serial.p99) * len(SCHEDULERS)
    cores = os.cpu_count() or 1
    parallel_speedup = times["serial"] / times["parallel"]
    warm_speedup = times["cold"] / times["warm"]
    section = {
        "workload": {
            "cells": cells,
            "schedulers": list(SCHEDULERS),
            "num_experiments": BENCH_PARAMS.num_experiments,
            "duration": BENCH_PARAMS.duration,
        },
        "cpu_count": cores,
        "jobs": PARALLEL_JOBS,
        "seconds": {k: round(v, 4) for k, v in times.items()},
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_cache_speedup": round(warm_speedup, 2),
        "cache": data["cache"],
        "deterministic": True,
    }
    merge_bench_manifest(parallel_engine=section)

    lines = [
        f"{'mode':>10}  {'seconds':>8}  vs serial",
        *(
            f"{mode:>10}  {seconds:8.3f}  {times['serial'] / seconds:8.2f}x"
            for mode, seconds in times.items()
        ),
        "",
        f"cells: {cells}   cores: {cores}   jobs: {PARALLEL_JOBS}",
        f"cache: {data['cache']}",
        f"warm cache speedup over cold: {warm_speedup:.1f}x",
    ]
    emit(capsys, "BENCH: parallel engine (run cache)", "\n".join(lines))

    # Cache behaved: one store + one hit per cell across cold + warm.
    assert data["cache"]["stores"] == cells
    assert data["cache"]["hits"] == cells
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache only {warm_speedup:.1f}x faster than cold "
        f"(bar: {MIN_WARM_SPEEDUP}x)"
    )
    if cores >= PARALLEL_JOBS:
        assert parallel_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"jobs={PARALLEL_JOBS} only {parallel_speedup:.2f}x over serial "
            f"on a {cores}-core host (bar: {MIN_PARALLEL_SPEEDUP}x)"
        )
