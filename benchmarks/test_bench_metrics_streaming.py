"""Streaming-metrics memory/accuracy benchmark (DESIGN.md §13).

Not a paper figure -- this benchmark certifies the bounded-memory
collection path against the exact collector on a long open-loop run:

* **accuracy gate**: per-tenant p50/p99 latency error of the streaming
  sketches vs the exact percentiles must stay under 1% (worst tenant),
  and lag sigma / mean Gini must match to float round-off;
* **memory**: tracemalloc peak of each mode's simulation plus the
  process peak RSS, recorded so the manifest shows the streaming
  collector's footprint staying put while the exact one grows with run
  length.

The committed deliverable is the ``metrics_streaming`` section of
``benchmarks/results/BENCH_manifest.json`` plus the printed table.

Scale knobs (the defaults are the ISSUE's 1M-request / 1k-tenant run;
CI smoke uses the reduced scale):

* ``REPRO_BENCH_METRICS_REQUESTS`` -- target request count (default
  1_000_000);
* ``REPRO_BENCH_METRICS_TENANTS`` -- tenant population (default 1000);
* ``REPRO_BENCH_METRICS_10M=1`` -- additionally run a 10M-request
  streaming-only pass (no exact twin; records footprint + throughput).
  Skipped by default: it is a local, coffee-break-sized run.
"""

import dataclasses
import os
import resource
import time
import tracemalloc

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_single
from repro.workloads import LogNormalCost, PoissonArrivals, TenantSpec

from conftest import emit, merge_bench_manifest

#: Worst-tenant relative error budget for p50/p99 (the ISSUE's gate).
ERROR_BUDGET = 0.01

#: Per-tenant arrival rate (requests/s); duration is derived from it.
TENANT_RATE = 20.0

#: Mean request cost is ~0.011 with these parameters; thread_rate is
#: then chosen for ~0.7 utilization so queues stay busy but stable.
COST = LogNormalCost(median=0.01, sigma_decades=0.2)
MEAN_COST = 0.011
UTILIZATION = 0.7
NUM_THREADS = 8


def _scale():
    requests = int(os.environ.get("REPRO_BENCH_METRICS_REQUESTS", 1_000_000))
    tenants = int(os.environ.get("REPRO_BENCH_METRICS_TENANTS", 1000))
    return requests, tenants


def _workload(requests, tenants, seed=2026):
    specs = [
        TenantSpec(
            f"T{i:04d}",
            api_costs={"get": COST},
            arrivals=PoissonArrivals(rate=TENANT_RATE),
        )
        for i in range(tenants)
    ]
    duration = requests / (tenants * TENANT_RATE)
    thread_rate = tenants * TENANT_RATE * MEAN_COST / (NUM_THREADS * UTILIZATION)
    config = ExperimentConfig(
        name=f"bench-metrics-{requests}",
        schedulers=("2dfq",),
        num_threads=NUM_THREADS,
        thread_rate=thread_rate,
        duration=duration,
        sample_interval=max(0.1, duration / 2000.0),
        seed=seed,
    )
    return specs, config


def _measured_run(specs, config):
    """Run one mode under tracemalloc; returns (metrics, seconds, peak_bytes)."""
    tracemalloc.start()
    started = time.perf_counter()  # repro: ignore[RPR001] -- host timing of the bench itself
    metrics = run_single(config.schedulers[0], specs, config)
    elapsed = time.perf_counter() - started  # repro: ignore[RPR001] -- host timing of the bench itself
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return metrics, elapsed, peak


def _percentile_errors(exact, streaming):
    """Worst/mean relative p50/p99 error across tenants with >= 20
    completions (tiny-count tenants make relative error meaningless)."""
    errors = {"p50": [], "p99": []}
    for tenant in exact.tenants():
        es = exact.latency_stats(tenant)
        if es.count < 20:
            continue
        ss = streaming.latency_stats(tenant)
        assert ss.count == es.count, f"{tenant}: count {ss.count} != {es.count}"
        errors["p50"].append(abs(ss.p50 - es.p50) / es.p50)
        errors["p99"].append(abs(ss.p99 - es.p99) / es.p99)
    return {
        name: {"max": float(np.max(vals)), "mean": float(np.mean(vals)),
               "tenants": len(vals)}
        for name, vals in errors.items()
    }


def test_streaming_accuracy_and_memory(capsys):
    requests, tenants = _scale()
    specs, config = _workload(requests, tenants)
    exact, exact_s, exact_peak = _measured_run(specs, config)
    streaming, streaming_s, streaming_peak = _measured_run(
        specs, dataclasses.replace(config, metrics_mode="streaming")
    )

    completed = sum(exact.latency_stats(t).count for t in exact.tenants())
    errors = _percentile_errors(exact, streaming)
    assert errors["p50"]["max"] < ERROR_BUDGET, errors
    assert errors["p99"]["max"] < ERROR_BUDGET, errors

    # Full-information statistics must agree to float round-off.
    fair = config.capacity / tenants
    for tenant in list(exact.tenants())[:50]:
        assert abs(
            streaming.lag_sigma(tenant, reference_rate=fair)
            - exact.lag_sigma(tenant, reference_rate=fair)
        ) <= 1e-9 + 1e-6 * abs(exact.lag_sigma(tenant, reference_rate=fair))
    gini_exact = float(np.mean(exact.gini_values))
    assert abs(streaming.gini_mean - gini_exact) <= 1e-9

    # The sketches must not out-allocate the exact lists.
    assert streaming_peak <= exact_peak, (streaming_peak, exact_peak)

    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    section = {
        "requests_target": requests,
        "requests_completed": completed,
        "tenants": tenants,
        "duration_sim_s": config.duration,
        "error_budget": ERROR_BUDGET,
        "percentile_errors": errors,
        "exact": {
            "wall_s": round(exact_s, 3),
            "tracemalloc_peak_mb": round(exact_peak / 1e6, 3),
        },
        "streaming": {
            "wall_s": round(streaming_s, 3),
            "tracemalloc_peak_mb": round(streaming_peak / 1e6, 3),
            "sketch_sizes": streaming.sketch_sizes(),
        },
        "process_peak_rss_mb": round(rss_kb / 1024.0, 1),
    }
    section["requests_10m"] = _ten_million_entry()
    merge_bench_manifest(metrics_streaming=section)

    lines = [
        f"requests={completed} tenants={tenants} "
        f"duration={config.duration:.1f}s (sim)",
        f"p50 error: max={errors['p50']['max']:.2e} "
        f"mean={errors['p50']['mean']:.2e}  (budget {ERROR_BUDGET:.0%})",
        f"p99 error: max={errors['p99']['max']:.2e} "
        f"mean={errors['p99']['mean']:.2e}",
        f"exact:     {exact_s:7.1f}s wall, "
        f"{exact_peak / 1e6:8.1f} MB traced peak",
        f"streaming: {streaming_s:7.1f}s wall, "
        f"{streaming_peak / 1e6:8.1f} MB traced peak",
        f"sketches: {streaming.sketch_sizes()}",
    ]
    if isinstance(section["requests_10m"], dict):
        entry = section["requests_10m"]
        lines.append(
            f"10M run: {entry['wall_s']:.1f}s wall, "
            f"{entry['tracemalloc_peak_mb']:.1f} MB traced peak, "
            f"{entry['requests_completed']} completed"
        )
    emit(capsys, "bench: metrics streaming (bounded memory)", "\n".join(lines))


def _ten_million_entry():
    """The local-only 10M-request streaming pass, or a skip marker."""
    if os.environ.get("REPRO_BENCH_METRICS_10M") != "1":
        return "skipped (set REPRO_BENCH_METRICS_10M=1 to run locally)"
    specs, config = _workload(10_000_000, 1000)
    streaming, elapsed, peak = _measured_run(
        specs, dataclasses.replace(config, metrics_mode="streaming")
    )
    completed = sum(
        streaming.latency_stats(t).count for t in streaming.tenants()
    )
    return {
        "requests_completed": completed,
        "wall_s": round(elapsed, 1),
        "tracemalloc_peak_mb": round(peak / 1e6, 3),
        "sketch_sizes": streaming.sketch_sizes(),
        "requests_per_wall_s": round(completed / elapsed, 1),
    }
