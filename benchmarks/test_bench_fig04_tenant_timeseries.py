"""Figure 4: 30-second time series of three reference tenants.

T2 -- stable rate, small predictable costs (Figure 4a);
T3 -- a large burst tapering off over four APIs (Figure 4b);
T10 -- bursts and lulls with costs spanning >3 decades (Figure 4c).
"""

import numpy as np

from repro.experiments.report import sparkline
from repro.workloads.azure import named_tenant
from repro.workloads.trace import generate_trace

from conftest import emit, once

DURATION = 30.0


def test_fig04_tenant_timeseries(benchmark, capsys):
    def run():
        specs = [named_tenant(t) for t in ("T2", "T3", "T10")]
        return generate_trace(specs, duration=DURATION, seed=4)

    trace = once(benchmark, run)

    lines = []
    edges = np.arange(0.0, DURATION + 1.0, 1.0)
    rate_series = {}
    for tenant in ("T2", "T3", "T10"):
        times = np.array([r.time for r in trace if r.tenant == tenant])
        costs = np.array([r.cost for r in trace if r.tenant == tenant])
        rates = np.histogram(times, bins=edges)[0]
        rate_series[tenant] = rates
        apis = sorted({r.api for r in trace if r.tenant == tenant})
        spread = np.log10(
            np.percentile(costs, 99.5) / np.percentile(costs, 0.5)
        )
        lines.append(
            f"{tenant}: {len(times)} requests, APIs {','.join(apis)}, "
            f"cost spread {spread:.1f} decades"
        )
        lines.append(f"  rate/s  {sparkline(rates.tolist())}")
        lines.append(
            f"  rate min/mean/max = {rates.min()}/{rates.mean():.0f}/{rates.max()}"
        )

    t2, t3, t10 = (rate_series[t] for t in ("T2", "T3", "T10"))
    # T2 stable: modest variation around its mean.
    assert t2.std() / t2.mean() < 0.3
    # T3 tapering burst: first five seconds >> last five.
    assert t3[:5].sum() > 2 * t3[-5:].sum()
    # T10 bursts AND lulls: some silent seconds, some busy ones.
    assert (t10 == 0).any() and (t10 > 20).any()
    emit(capsys, "fig04: tenant time series (T2, T3, T10)", "\n".join(lines))
