"""Ablation: request chunking and the work-conservation limitation (§7).

Paper §7, Limitations: "work-conserving schedulers in general cannot
improve service when the system is under-utilized.  Inevitably, all
worker threads could be servicing expensive requests if no other
requests are present.  Any subsequent burst of small requests would
have to wait ... This behavior occurs under 2DFQ and all non-preemptive
schedulers."  The discussed alternative is reducing cost variation at
the source by splitting long requests ("after 100ms of work a request
could pause and re-enter the scheduler queue"), at the price of
developer burden and execution overhead.

This benchmark reproduces both halves of that discussion.  Small
tenants arrive *open-loop and under their fair share* (their queues
drain instantly), while heavy open-loop tenants overload the pool:

* 2DFQ's tail latency for the small tenant equals WFQ's -- the
  limitation, verbatim: when no small request is queued, every thread
  ratchets onto a 1-second request and fresh small arrivals must wait;
* chunking the workload to 100 ms pieces bounds that wait and slashes
  the small tenant's p99 under *any* scheduler -- but pays a measurable
  work tax (the per-chunk re-entry overhead).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_single
from repro.workloads import (
    NormalCost,
    PoissonArrivals,
    TenantSpec,
    chunk_trace,
    generate_trace,
)

from conftest import emit, once

NUM_THREADS = 16
RATE = 1000.0
DURATION = 6.0
CHUNK = 100.0        # 100 ms pieces at 1000 units/s
OVERHEAD = 5.0       # 5% of a chunk per re-entry


def _specs():
    specs = []
    for index in range(20):
        specs.append(
            TenantSpec(
                tenant_id=f"S{index}",
                api_costs={"small": NormalCost(1.0, 0.1, floor=0.01)},
                arrivals=PoissonArrivals(rate=30.0),
            )
        )
    for index in range(20):
        specs.append(
            TenantSpec(
                tenant_id=f"L{index}",
                api_costs={"large": NormalCost(1000.0, 100.0, floor=1.0)},
                arrivals=PoissonArrivals(rate=0.85),
            )
        )
    return specs


def test_ablation_chunking_vs_scheduling(benchmark, capsys):
    def run():
        specs = _specs()
        config = ExperimentConfig(
            name="chunking-ablation",
            schedulers=("wfq", "2dfq"),
            num_threads=NUM_THREADS,
            thread_rate=RATE,
            duration=DURATION,
            refresh_interval=None,
            seed=5,
        )
        trace = generate_trace(specs, duration=DURATION, seed=5)
        chunked = chunk_trace(trace, max_cost=CHUNK, overhead=OVERHEAD)
        runs = {
            "wfq, unchunked": run_single("wfq", specs, config, trace=trace),
            "2dfq, unchunked": run_single("2dfq", specs, config, trace=trace),
            "wfq, chunked": run_single("wfq", specs, config, trace=chunked),
            "2dfq, chunked": run_single("2dfq", specs, config, trace=chunked),
        }
        return runs, trace, chunked

    runs, trace, chunked = once(benchmark, run)

    rows = [
        (label, metrics.latency_p99("S0")) for label, metrics in runs.items()
    ]
    text = "p99 latency [s] of an open-loop, under-share small tenant:\n"
    text += format_table(["configuration", "S0 p99 [s]"], rows)
    tax = sum(r.cost for r in chunked) / sum(r.cost for r in trace) - 1.0
    text += f"\n\nchunking work tax: +{tax:.1%} total work"
    text += (
        "\n\nThe §7 limitation, measured: with no queued small requests to"
        "\nkeep threads reserved, 2DFQ's tail equals WFQ's -- non-preemptive"
        "\nwork-conserving schedulers cannot protect *intermittent* small"
        "\narrivals.  Chunking bounds the wait under any scheduler, at the"
        "\ncost of extra work and developer burden (the paper's trade-off)."
    )

    p99 = {label: row[1] for label, row in zip(runs, rows)}
    # The limitation: scheduling alone does not fix intermittent smalls.
    assert p99["2dfq, unchunked"] > 0.5 * p99["wfq, unchunked"]
    # Chunking slashes the tail under both schedulers...
    assert p99["wfq, chunked"] < p99["wfq, unchunked"] / 2
    assert p99["2dfq, chunked"] < p99["2dfq, unchunked"] / 2
    # ...but pays a real work tax.
    assert tax > 0.02
    emit(capsys, "ablation: request chunking vs scheduling (section 7)", text)
