"""Figure 3: mean request cost vs coefficient of variation per
(tenant, API) pair.

The paper's point: conditioning on the tenant collapses each API's
population spread for *most* tenants (predictable, low CoV), but every
API also has tenants using it unpredictably (high CoV).  We regenerate
the scatter for a population of random tenants and report, per API, how
many tenants fall in each class.
"""

import numpy as np

from repro.experiments.report import format_table
from repro.simulator.rng import make_rng
from repro.workloads.azure import random_tenants

from conftest import emit, once

NUM_TENANTS = 80
SAMPLES_PER_PAIR = 400


def test_fig03_mean_vs_cov(benchmark, capsys):
    def run():
        rng = make_rng(3, "fig3")
        points = []  # (api, mean, cov)
        for spec in random_tenants(NUM_TENANTS, seed=3):
            for api, dist in spec.api_costs.items():
                samples = dist.sample_many(rng, SAMPLES_PER_PAIR)
                mean = float(samples.mean())
                cov = float(samples.std() / mean)
                points.append((api, mean, cov))
        return points

    points = once(benchmark, run)

    rows = []
    for api in sorted({p[0] for p in points}):
        covs = np.array([cov for a, _, cov in points if a == api])
        means = np.array([m for a, m, _ in points if a == api])
        rows.append(
            (
                api,
                len(covs),
                f"{means.min():.3g}..{means.max():.3g}",
                float((covs < 0.5).mean()),
                float((covs > 1.0).mean()),
            )
        )
    text = "Per-API scatter summary (Figure 3 right):\n"
    text += format_table(
        ["API", "tenants", "mean-cost range", "frac CoV<0.5", "frac CoV>1"],
        rows,
    )
    all_covs = np.array([cov for _, _, cov in points])
    text += (
        f"\n\npopulation: {(all_covs < 0.5).mean():.0%} predictable pairs,"
        f" {(all_covs > 1.0).mean():.0%} unpredictable pairs"
    )
    # The paper's qualitative claim: both classes exist.
    assert (all_covs < 0.5).mean() > 0.4
    assert (all_covs > 1.0).mean() > 0.05
    emit(capsys, "fig03: mean vs CoV per (tenant, API)", text)
