"""Perf-regression harness: scheduler hot-path dequeue throughput.

Not a paper figure -- this benchmark tracks the simulator's own speed.
It measures full dispatch cycles (dequeue + complete + enqueue) per
wallclock second with N = 2 / 10 / 100 / 1000 / 10000 tenants
continuously backlogged, for every virtual-time scheduler, in all three
selection modes: the reference O(N) linear scans (``indexed=False``),
the forced O(log N) selection index (``indexed=True``), and the
adaptive ``indexed="auto"`` default that picks per scheduler from the
live backlog size.

The committed deliverable is ``benchmarks/results/BENCH_schedulers.json``
-- the requests/sec trajectory tracked from PR to PR, including the
``SelectionIndex`` lazy-invalidation churn (stale pops, heap rebuilds,
pushes, touches) per indexed cell -- plus ``BENCH_manifest.json``, whose
``adaptive_selection`` (linear-vs-index crossover sweep) and
``batch_dispatch`` (dequeue_batch size ablation) sections this module
owns alongside the provenance record (seed, versions, git SHA).

Acceptance bars:

* the adaptive default must never lose to the linear reference at small
  backlogs (N = 2 and 10: auto runs the identical linear algorithm, so
  the best *paired* per-repetition ratio -- interleaved modes, jittered
  allocator; see ``measure_paired_cell`` -- must reach 1.0x) and must
  match the index above the threshold (N >= 1000: >= 7x linear at full
  scale, >= 5x on reduced smoke runs);
* at 1000 backlogged tenants the forced index must buy >= 2x dequeue
  throughput for 2DFQ and WF2Q (PR-1's bar, unchanged);
* the auto threshold crossing is deterministic: the index must be OFF
  at N <= 10 and ON at N >= 100 in every auto cell;
* churn pins: stale pops never exceed heap pushes (conservation of
  lazily-invalidated entries), and the stagger-aware 2DFQ family stays
  near one ladder push per touch (<= 2x) at N >= 1000 -- the
  order-of-magnitude churn cut the deferred dirty-log buys;
* with tracing *disabled* (the default: no tracer attached, so every
  instrumentation site is a single ``is not None`` check) throughput
  must stay within 5% of the committed baseline, comparing the median
  ratio across all cells.  The comparison only runs when the committed
  baseline came from a matching host fingerprint and the same op
  counts; wallclock numbers from different hardware are not comparable.

Scale down for smoke runs with ``REPRO_BENCH_OPS`` (dispatches per
timing cell, default ~500-3000 depending on N).
"""

import json
import os
import statistics

from repro.obs import write_manifest
from repro.perf import (
    format_results,
    measure_adaptive_crossover,
    measure_batch_dispatch,
    measure_observability_overhead,
    run_hotpath_suite,
    write_results,
)

from conftest import RESULTS_DIR, emit, once, read_bench_manifest

#: Where the perf trajectory lives; committed alongside the figure text.
BENCH_JSON = RESULTS_DIR / "BENCH_schedulers.json"
BENCH_MANIFEST = RESULTS_DIR / "BENCH_manifest.json"

#: Disabled-tracer overhead budget vs the committed baseline (median
#: ratio across cells).
MAX_DISABLED_TRACER_OVERHEAD = 1.05


def _load_baseline():
    if not BENCH_JSON.exists():
        return None
    try:
        return json.loads(BENCH_JSON.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _overhead_vs_baseline(baseline, payload):
    """Median baseline/fresh indexed-rps ratio over comparable cells, or
    ``None`` (with a reason) when the baseline is not comparable."""
    if baseline is None:
        return None, "no committed baseline"
    meta, fresh_meta = baseline.get("meta", {}), payload["meta"]
    for key in ("machine", "python", "num_threads", "seed"):
        if meta.get(key) != fresh_meta.get(key):
            return None, f"baseline {key} mismatch ({meta.get(key)!r})"
    fresh = {(r["scheduler"], r["tenants"]): r for r in payload["results"]}
    ratios = []
    for row in baseline.get("results", []):
        match = fresh.get((row["scheduler"], row["tenants"]))
        if match is None or match["ops"] != row["ops"]:
            continue
        if row["indexed_rps"] > 0 and match["indexed_rps"] > 0:
            ratios.append(row["indexed_rps"] / match["indexed_rps"])
    if not ratios:
        return None, "no comparable cells (op counts differ?)"
    return statistics.median(ratios), None


def _format_observability(section):
    lines = [f"{'mode':<10} {'rps':>12} {'relative':>9}"]
    for mode in ("disabled", "traced", "audited"):
        row = section["modes"][mode]
        lines.append(f"{mode:<10} {row['rps']:>12.1f} {row['relative']:>8.3f}x")
    return "\n".join(lines)


#: Manifest sections owned by *other* bench modules, carried over when
#: this module rewrites the manifest (write_manifest replaces the file
#: wholesale).
PRESERVED_SECTIONS = ("parallel_engine", "metrics_streaming", "event_queue")


def test_bench_perf_hotpath(benchmark, capsys):
    ops_env = int(os.environ.get("REPRO_BENCH_OPS", "0"))
    # Wallclock cells report best-of-`repeats`; raising it (committed
    # full-scale runs use 5) tightens the noise floor on shared hosts.
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "0")) or 2
    reduced = ops_env > 0
    baseline = _load_baseline()
    payload = once(
        benchmark,
        lambda: run_hotpath_suite(ops=ops_env or None, repeats=repeats),
    )
    write_results(payload, BENCH_JSON)
    # Enabled-mode observability cost (spans-grade tracing, full --audit
    # sink stack) vs the disabled default, on the 2DFQ hot path.
    observability = measure_observability_overhead(
        "2dfq", num_tenants=100, ops=ops_env or None, repeats=repeats
    )
    # Adaptive-policy provenance: the crossover sweep that backs the
    # AUTO_INDEX_HIGH/LOW thresholds, for the paper's scheduler and the
    # policy with the latest measured crossover.
    crossover = {
        name: measure_adaptive_crossover(
            name, ops=ops_env or None, repeats=repeats
        )
        for name in ("2dfq", "wf2q+")
    }
    batch = measure_batch_dispatch(
        "2dfq", num_tenants=100, ops=ops_env or None, repeats=repeats
    )
    preserved = {
        key: value
        for key, value in read_bench_manifest().items()
        if key in PRESERVED_SECTIONS
    }
    write_manifest(
        BENCH_MANIFEST,
        name="scheduler-hotpath-dequeue-throughput",
        seed=payload["meta"]["seed"],
        config={k: v for k, v in payload["meta"].items() if k != "note"},
        extra={
            "results_file": BENCH_JSON.name,
            "observability": observability,
            "adaptive_selection": crossover,
            "batch_dispatch": batch,
            **preserved,
        },
    )
    overhead, skip_reason = _overhead_vs_baseline(baseline, payload)
    overhead_note = (
        f"disabled-tracer overhead vs committed baseline: "
        f"{(overhead - 1) * 100:+.1f}% (median across cells)"
        if overhead is not None
        else f"disabled-tracer overhead check skipped: {skip_reason}"
    )
    emit(
        capsys,
        "BENCH: scheduler hot-path dequeue throughput",
        format_results(payload)
        + f"\n\n{overhead_note}"
        + "\n\nobservability layers (2dfq, 100 tenants):\n"
        + _format_observability(observability)
        + f"\nfull results -> {BENCH_JSON.relative_to(RESULTS_DIR.parent.parent)}",
    )
    rows = {(r["scheduler"], r["tenants"]): r for r in payload["results"]}
    # Acceptance bar: the forced index must hold >= 2x at the
    # 1000-tenant backlog for the paper's contribution and its closest
    # baseline (PR-1's bar, unchanged).
    for name in ("2dfq", "wf2q"):
        row = rows[(name, 1000)]
        assert row["indexed_speedup"] >= 2.0, (
            f"{name} indexed selection regressed below 2x at 1000 tenants: {row}"
        )
    schedulers = {name for name, _ in rows}
    for name in schedulers:
        # The adaptive threshold crossing is deterministic: linear below
        # AUTO_INDEX_HIGH, indexed above (the backlog build crosses it).
        for tenants in (2, 10):
            if (name, tenants) in rows:
                row = rows[(name, tenants)]
                assert not row["auto_index_active"], row
                # Below the threshold auto runs the identical linear
                # algorithm, so the best paired per-repetition ratio
                # must reach break-even -- anything less means the
                # adaptive check itself costs throughput.  The gate
                # needs full-size cells to be meaningful.
                if not reduced:
                    assert row["speedup"] >= 1.0, (
                        f"{name} auto mode lost to linear at "
                        f"{tenants} tenants: {row}"
                    )
        for tenants in (100, 1000, 10000):
            if (name, tenants) in rows:
                assert rows[(name, tenants)]["auto_index_active"], (
                    rows[(name, tenants)]
                )
        # Above the threshold the adaptive default must deliver the
        # index's asymptotic win for *every* policy.  Reduced smoke runs
        # get a lower bar (5x, the CI gate), and only when the cell is
        # big enough to amortize the one-off index build (>= 200 ops);
        # below that the measurement is all fixed cost.
        bar = 5.0 if reduced else 7.0
        for tenants in (1000, 10000):
            if (name, tenants) in rows and (not reduced or ops_env >= 200):
                row = rows[(name, tenants)]
                assert row["speedup"] >= bar, (
                    f"{name} auto mode below {bar}x linear at {tenants} "
                    f"tenants: {row}"
                )
    # Sanity: every cell actually measured work, and the churn counters
    # are live (every indexed run pushes heap entries).
    assert all(
        r["indexed_rps"] > 0 and r["linear_rps"] > 0 and r["auto_rps"] > 0
        for r in rows.values()
    )
    assert all(r["heap_pushes"] > 0 for r in rows.values())
    # Lazy invalidation actually churns under eligibility-gated policies.
    assert any(r["stale_pops"] > 0 for r in rows.values())
    # Churn pins.  Conservation: every stale pop removes an entry some
    # push added, so stale pops can never outnumber pushes.  And the
    # stagger-aware 2DFQ family is bounded by the index structure: one
    # touch pushes one entry into each auxiliary heap (finish, start)
    # and the top eligibility gate, and each of the <= threads-1
    # downward gate migrations adds <= 2 pushes (ready + cascade), so
    # pushes/touch <= 3 + 2*(threads-1) = 2*threads + 1.  Eager
    # per-touch reinsertion into every gate had no such bound -- it
    # scaled with the gate count times the re-touch rate, an order of
    # magnitude above this on the same workload.
    assert all(r["stale_pops"] <= r["heap_pushes"] for r in rows.values())
    for name in ("2dfq", "2dfq-e"):
        for tenants in (1000, 10000):
            if (name, tenants) in rows:
                row = rows[(name, tenants)]
                bound = (2 * row["threads"] + 1) * row["index_touches"]
                assert row["heap_pushes"] <= bound, (
                    f"{name} ladder churn exceeded the depth bound at "
                    f"{tenants} tenants: {row}"
                )
    # Adaptive-crossover provenance is sane: thresholds configured with
    # a hysteresis band, and the index wins somewhere inside the sweep,
    # within the 2x band the activation threshold was chosen from.
    for name, sweep in crossover.items():
        assert sweep["auto_high"] > sweep["auto_low"] > 0
        if not reduced:
            assert sweep["crossover_tenants"] is not None, sweep
            assert sweep["crossover_tenants"] <= 2 * sweep["auto_high"], sweep
    # Batch dispatch measured every requested size and stayed within
    # sane bounds (it is the same per-request work, so a batched cycle
    # can neither collapse nor implausibly inflate throughput).
    assert [r["batch_size"] for r in batch["rows"]] == [1, 2, 4, 8]
    for row in batch["rows"]:
        assert row["rps"] > 0, row
        assert 0.5 <= row["ratio"] <= 2.0, row
    # Observability acceptance bar: with no tracer attached the
    # instrumentation must cost < 5% median throughput vs the committed
    # baseline (only enforced against a same-host, same-ops baseline).
    if overhead is not None:
        assert overhead < MAX_DISABLED_TRACER_OVERHEAD, (
            f"disabled-tracer hot path regressed {(overhead - 1) * 100:.1f}% "
            f"vs committed baseline (budget 5%)"
        )
    # Enabled modes are recorded, not perf-gated (wallclock variance),
    # but the measurement itself must be sane: every mode ran, and
    # turning observability ON cannot plausibly be faster than 2x off.
    for mode, row in observability["modes"].items():
        assert row["rps"] > 0, f"observability mode {mode} measured no work"
        assert row["relative"] <= 2.0, f"implausible speedup in mode {mode}: {row}"
