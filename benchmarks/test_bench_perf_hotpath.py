"""Perf-regression harness: scheduler hot-path dequeue throughput.

Not a paper figure -- this benchmark tracks the simulator's own speed.
It measures full dispatch cycles (dequeue + complete + enqueue) per
wallclock second with N = 10 / 100 / 1000 tenants continuously
backlogged, for every virtual-time scheduler, in both selection modes:
the reference O(N) linear scans (``indexed=False``) and the O(log N)
selection index that production runs use by default.

The committed deliverable is ``benchmarks/results/BENCH_schedulers.json``
-- the requests/sec trajectory tracked from PR to PR.  The assertion
encodes this PR's acceptance bar: at 1000 backlogged tenants the index
must buy at least a 2x dequeue-throughput speedup for 2DFQ and WF2Q.

Scale down for smoke runs with ``REPRO_BENCH_OPS`` (dispatches per
timing cell, default ~500-3000 depending on N).
"""

import os

from repro.perf import format_results, run_hotpath_suite, write_results

from conftest import RESULTS_DIR, emit, once

#: Where the perf trajectory lives; committed alongside the figure text.
BENCH_JSON = RESULTS_DIR / "BENCH_schedulers.json"


def test_bench_perf_hotpath(benchmark, capsys):
    ops_env = int(os.environ.get("REPRO_BENCH_OPS", "0"))
    payload = once(
        benchmark,
        lambda: run_hotpath_suite(ops=ops_env or None),
    )
    write_results(payload, BENCH_JSON)
    emit(
        capsys,
        "BENCH: scheduler hot-path dequeue throughput",
        format_results(payload)
        + f"\n\nfull results -> {BENCH_JSON.relative_to(RESULTS_DIR.parent.parent)}",
    )
    rows = {(r["scheduler"], r["tenants"]): r for r in payload["results"]}
    # Acceptance bar: the index must hold >= 2x at the 1000-tenant
    # backlog for the paper's contribution and its closest baseline.
    for name in ("2dfq", "wf2q"):
        row = rows[(name, 1000)]
        assert row["speedup"] >= 2.0, (
            f"{name} indexed selection regressed below 2x at 1000 tenants: {row}"
        )
    # Sanity: every cell actually measured work.
    assert all(r["indexed_rps"] > 0 and r["linear_rps"] > 0 for r in rows.values())
