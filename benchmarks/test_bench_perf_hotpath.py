"""Perf-regression harness: scheduler hot-path dequeue throughput.

Not a paper figure -- this benchmark tracks the simulator's own speed.
It measures full dispatch cycles (dequeue + complete + enqueue) per
wallclock second with N = 10 / 100 / 1000 tenants continuously
backlogged, for every virtual-time scheduler, in both selection modes:
the reference O(N) linear scans (``indexed=False``) and the O(log N)
selection index that production runs use by default.

The committed deliverable is ``benchmarks/results/BENCH_schedulers.json``
-- the requests/sec trajectory tracked from PR to PR, now including the
``SelectionIndex`` lazy-invalidation churn (stale pops, heap rebuilds,
pushes) per indexed cell -- plus ``BENCH_manifest.json``, the provenance
record (seed, versions, git SHA) of the machine/run that produced it.

Two acceptance bars:

* at 1000 backlogged tenants the index must buy >= 2x dequeue
  throughput for 2DFQ and WF2Q (PR-1's bar, unchanged);
* with tracing *disabled* (the default: no tracer attached, so every
  instrumentation site is a single ``is not None`` check) throughput
  must stay within 5% of the committed baseline, comparing the median
  ratio across all cells.  The comparison only runs when the committed
  baseline came from a matching host fingerprint and the same op
  counts; wallclock numbers from different hardware are not comparable.

Scale down for smoke runs with ``REPRO_BENCH_OPS`` (dispatches per
timing cell, default ~500-3000 depending on N).
"""

import json
import os
import statistics

from repro.obs import write_manifest
from repro.perf import (
    format_results,
    measure_observability_overhead,
    run_hotpath_suite,
    write_results,
)

from conftest import RESULTS_DIR, emit, once, read_bench_manifest

#: Where the perf trajectory lives; committed alongside the figure text.
BENCH_JSON = RESULTS_DIR / "BENCH_schedulers.json"
BENCH_MANIFEST = RESULTS_DIR / "BENCH_manifest.json"

#: Disabled-tracer overhead budget vs the committed baseline (median
#: ratio across cells).
MAX_DISABLED_TRACER_OVERHEAD = 1.05


def _load_baseline():
    if not BENCH_JSON.exists():
        return None
    try:
        return json.loads(BENCH_JSON.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _overhead_vs_baseline(baseline, payload):
    """Median baseline/fresh indexed-rps ratio over comparable cells, or
    ``None`` (with a reason) when the baseline is not comparable."""
    if baseline is None:
        return None, "no committed baseline"
    meta, fresh_meta = baseline.get("meta", {}), payload["meta"]
    for key in ("machine", "python", "num_threads", "seed"):
        if meta.get(key) != fresh_meta.get(key):
            return None, f"baseline {key} mismatch ({meta.get(key)!r})"
    fresh = {(r["scheduler"], r["tenants"]): r for r in payload["results"]}
    ratios = []
    for row in baseline.get("results", []):
        match = fresh.get((row["scheduler"], row["tenants"]))
        if match is None or match["ops"] != row["ops"]:
            continue
        if row["indexed_rps"] > 0 and match["indexed_rps"] > 0:
            ratios.append(row["indexed_rps"] / match["indexed_rps"])
    if not ratios:
        return None, "no comparable cells (op counts differ?)"
    return statistics.median(ratios), None


def _format_observability(section):
    lines = [f"{'mode':<10} {'rps':>12} {'relative':>9}"]
    for mode in ("disabled", "traced", "audited"):
        row = section["modes"][mode]
        lines.append(f"{mode:<10} {row['rps']:>12.1f} {row['relative']:>8.3f}x")
    return "\n".join(lines)


def test_bench_perf_hotpath(benchmark, capsys):
    ops_env = int(os.environ.get("REPRO_BENCH_OPS", "0"))
    baseline = _load_baseline()
    payload = once(
        benchmark,
        lambda: run_hotpath_suite(ops=ops_env or None),
    )
    write_results(payload, BENCH_JSON)
    # Enabled-mode observability cost (spans-grade tracing, full --audit
    # sink stack) vs the disabled default, on the 2DFQ hot path.
    observability = measure_observability_overhead(
        "2dfq", num_tenants=100, ops=ops_env or None
    )
    # write_manifest replaces the file wholesale; carry over sections
    # other bench modules own (the parallel-engine timings).
    preserved = {
        key: value
        for key, value in read_bench_manifest().items()
        if key == "parallel_engine"
    }
    write_manifest(
        BENCH_MANIFEST,
        name="scheduler-hotpath-dequeue-throughput",
        seed=payload["meta"]["seed"],
        config={k: v for k, v in payload["meta"].items() if k != "note"},
        extra={
            "results_file": BENCH_JSON.name,
            "observability": observability,
            **preserved,
        },
    )
    overhead, skip_reason = _overhead_vs_baseline(baseline, payload)
    overhead_note = (
        f"disabled-tracer overhead vs committed baseline: "
        f"{(overhead - 1) * 100:+.1f}% (median across cells)"
        if overhead is not None
        else f"disabled-tracer overhead check skipped: {skip_reason}"
    )
    emit(
        capsys,
        "BENCH: scheduler hot-path dequeue throughput",
        format_results(payload)
        + f"\n\n{overhead_note}"
        + "\n\nobservability layers (2dfq, 100 tenants):\n"
        + _format_observability(observability)
        + f"\nfull results -> {BENCH_JSON.relative_to(RESULTS_DIR.parent.parent)}",
    )
    rows = {(r["scheduler"], r["tenants"]): r for r in payload["results"]}
    # Acceptance bar: the index must hold >= 2x at the 1000-tenant
    # backlog for the paper's contribution and its closest baseline.
    for name in ("2dfq", "wf2q"):
        row = rows[(name, 1000)]
        assert row["speedup"] >= 2.0, (
            f"{name} indexed selection regressed below 2x at 1000 tenants: {row}"
        )
    # Sanity: every cell actually measured work, and the churn counters
    # are live (every indexed run pushes heap entries).
    assert all(r["indexed_rps"] > 0 and r["linear_rps"] > 0 for r in rows.values())
    assert all(r["heap_pushes"] > 0 for r in rows.values())
    # Lazy invalidation actually churns under eligibility-gated policies.
    assert any(r["stale_pops"] > 0 for r in rows.values())
    # Observability acceptance bar: with no tracer attached the
    # instrumentation must cost < 5% median throughput vs the committed
    # baseline (only enforced against a same-host, same-ops baseline).
    if overhead is not None:
        assert overhead < MAX_DISABLED_TRACER_OVERHEAD, (
            f"disabled-tracer hot path regressed {(overhead - 1) * 100:.1f}% "
            f"vs committed baseline (budget 5%)"
        )
    # Enabled modes are recorded, not perf-gated (wallclock variance),
    # but the measurement itself must be sane: every mode ran, and
    # turning observability ON cannot plausibly be faster than 2x off.
    for mode, row in observability["modes"].items():
        assert row["rps"] > 0, f"observability mode {mode} measured no work"
        assert row["relative"] <= 2.0, f"implausible speedup in mode {mode}: {row}"
