"""Figure 1: bursty vs smooth schedules, 4 tenants / 2 threads.

Paper: A and B send 1-second requests, C and D 10-second requests.  WFQ
produces the bursty schedule (A and B starve for ~10s periods); 2DFQ
produces the smooth schedule (~1s gaps).  Both are long-run fair.
"""

from repro.experiments.schedule_examples import (
    gap_statistics,
    render_schedule,
    worked_example,
)

from conftest import emit, once


def test_fig01_bursty_vs_smooth(benchmark, capsys):
    def run():
        out = {}
        for name in ("wfq", "2dfq"):
            slots = worked_example(name, horizon=60.0, large_cost=10.0)
            out[name] = slots
        return out

    schedules = once(benchmark, run)

    lines = []
    for name, slots in schedules.items():
        mean_gap, max_gap = gap_statistics(slots, "A")
        kind = "bursty" if max_gap >= 10.0 else "smooth"
        lines.append(f"--- {name} ({kind}) ---")
        lines.extend(render_schedule(slots, horizon=40.0))
        lines.append(
            f"tenant A inter-start gaps: mean={mean_gap:.2f}s max={max_gap:.2f}s"
        )
        lines.append("")
    # Reproduction checks (Figure 1 caption).
    assert gap_statistics(schedules["wfq"], "A")[1] >= 10.0
    assert gap_statistics(schedules["2dfq"], "A")[1] <= 2.0
    emit(capsys, "fig01: bursty vs smooth schedule", "\n".join(lines))
