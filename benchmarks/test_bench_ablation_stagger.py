"""Ablation: the shape of 2DFQ's eligibility stagger.

DESIGN.md decision 2: request ``r`` is eligible on thread ``i`` at
``S(r) - g(i/n) * l(r)``.  The paper uses the uniform (linear) spreading
``g(x) = x``.  This ablation compares:

* ``none``      -- g(x) = 0 (exactly WF2Q);
* ``linear``    -- g(x) = x (2DFQ as published);
* ``quadratic`` -- g(x) = x^2 (small requests squeezed onto fewer,
  higher threads);
* ``sqrt``      -- g(x) = sqrt(x) (small requests spread over more
  threads).

Metric: sigma(service lag) of a small tenant on the Figure 8 workload.
Expectation: any stagger beats none by a large factor; the precise
shape is a second-order effect.
"""

from typing import Optional

from repro.core import TenantState, VirtualTimeScheduler
from repro.core import registry as registry_module
from repro.experiments.expensive_requests import (
    SMALL_PROBE,
    expensive_requests_config,
    run_expensive_requests,
)
from repro.experiments.report import format_table

from conftest import emit, once


def _stagger_class(name: str, g):
    class Stagger2DFQ(VirtualTimeScheduler):
        def _select(self, thread_id: int, vnow: float) -> Optional[TenantState]:
            shape = g(thread_id / self._num_threads)
            eligible = []
            for state in self._backlogged.values():
                offset = shape * self._head_estimate(state)
                if self._eligible(state.start_tag - offset, vnow):
                    eligible.append(state)
            return self._min_finish(eligible)

    Stagger2DFQ.name = name
    return Stagger2DFQ


SHAPES = {
    "stagger-none": lambda x: 0.0,
    "stagger-linear": lambda x: x,
    "stagger-quadratic": lambda x: x * x,
    "stagger-sqrt": lambda x: x ** 0.5,
}


def test_ablation_stagger_shape(benchmark, capsys):
    for name, g in SHAPES.items():
        registry_module._FACTORIES[name] = _stagger_class(name, g)

    def run():
        config = expensive_requests_config(
            schedulers=tuple(SHAPES), duration=5.0
        )
        return run_expensive_requests(
            num_expensive=50, total_tenants=100, config=config
        )

    result = once(benchmark, run)
    fair = result.fair_rate()
    rows = [
        (name, result[name].lag_sigma(SMALL_PROBE, reference_rate=fair))
        for name in SHAPES
    ]
    text = "sigma(service lag) of a small tenant by stagger shape:\n"
    text += format_table(["stagger", "sigma(lag) [s]"], rows)

    sigma = dict(rows)
    # Every stagger shape improves dramatically on no stagger (WF2Q).
    for name in ("stagger-linear", "stagger-quadratic", "stagger-sqrt"):
        assert sigma[name] < sigma["stagger-none"] / 2
    emit(capsys, "ablation: 2DFQ eligibility stagger shape", text)
