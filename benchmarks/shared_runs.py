"""Cached expensive experiment runs shared between benchmark modules.

Figures 9/10 share one production run and Figures 11/12 share one
unpredictability sweep; caching keeps the committed benchmark suite
within a few minutes while each figure module still prints its own
series.  The scale used here (duration, tenant counts) is a reduction
of the paper's setup; EXPERIMENTS.md records the exact factors.

The runs execute through the parallel engine when asked to via the
environment (so CI and local runs can opt in without touching the
benchmark code):

* ``REPRO_BENCH_JOBS=N``  -- fan each comparison's scheduler runs out
  over ``N`` worker processes;
* ``REPRO_BENCH_CACHE=DIR`` -- reuse results from a content-addressed
  run cache (DESIGN.md §10).

Both default to off (serial, uncached), and either way the results are
bit-identical.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.experiments.production import production_config, run_production
from repro.experiments.unpredictable import (
    run_unpredictable_sweep,
    unpredictable_config,
)
from repro.parallel import RunCache


def _engine_kwargs() -> dict:
    """jobs/cache overrides from the environment (see module docstring)."""
    kwargs: dict = {}
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    if jobs:
        kwargs["jobs"] = int(jobs)
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    if cache_dir:
        kwargs["cache"] = RunCache(cache_dir)
    return kwargs

# -- CI-scale knobs (paper scale in parentheses) ---------------------------
PRODUCTION_THREADS = 32          # (32)
PRODUCTION_DURATION = 6.0        # (15 s)
PRODUCTION_RANDOM_TENANTS = 80   # (250)
UNPRED_DURATION = 8.0            # (15 s)
UNPRED_RANDOM_TENANTS = 120      # (300)
UNPRED_FRACTIONS = (0.0, 0.33, 0.66)
UNPRED_UTILIZATION = 1.3


@lru_cache(maxsize=1)
def production_run():
    """Figures 9/10: known costs, production-like workload, with the
    fixed-cost probes t1..t7 and T1..T12 run as continuously backlogged
    yardsticks (their service-lag role in the paper's figures)."""
    config = production_config(duration=PRODUCTION_DURATION)
    return run_production(
        num_random=PRODUCTION_RANDOM_TENANTS,
        include_fixed=True,
        config=config,
        named_mode="backlogged",
        # Half the capacity in replayed load; the backlogged yardsticks
        # (T1..T12, t1..t7) soak the rest, keeping the server saturated
        # with genuinely competing tenants -- the contended known-cost
        # regime of §6.1.2.
        open_loop_utilization=0.5,
        **_engine_kwargs(),
    )


@lru_cache(maxsize=1)
def unpredictable_sweep():
    """Figure 12: unknown costs at 0% / 33% / 66% unpredictable, with
    the fixed-cost probes included for the bottom-right panel."""
    config = unpredictable_config(duration=UNPRED_DURATION)
    return run_unpredictable_sweep(
        fractions=UNPRED_FRACTIONS,
        num_random=UNPRED_RANDOM_TENANTS,
        include_fixed=True,
        config=config,
        open_loop_utilization=UNPRED_UTILIZATION,
        **_engine_kwargs(),
    )


@lru_cache(maxsize=1)
def unpredictable_sweep_service():
    """Figure 11: the service-smoothness view of the same experiment,
    run without the heavy fixed-cost probes (whose constant 0.07-1 s
    requests dominate the pool at this reduced scale and mask the
    schedulers' treatment of the workload's own unpredictability)."""
    config = unpredictable_config(duration=UNPRED_DURATION)
    return run_unpredictable_sweep(
        fractions=UNPRED_FRACTIONS,
        num_random=150,
        include_fixed=False,
        config=config,
        open_loop_utilization=UNPRED_UTILIZATION,
        **_engine_kwargs(),
    )
