"""Figure 12: request latencies as the workload becomes unpredictable.

Top: latency distributions (p50 / p99) for T1..T12 under each scheduler
at 0% / 33% / 66% unpredictable.  Bottom left: CDFs of per-tenant
sigma(service lag).  Bottom right: latencies of the fixed-cost probes
t1..t7.

Expected shapes: as unpredictability rises the baselines' latencies for
small predictable tenants inflate while 2DFQ^E protects them (the paper
reports up to ~100x tail-latency gaps at full scale; at CI scale the
gap is smaller but the ordering and growth direction hold); T10 -- the
genuinely unpredictable tenant -- sees no improvement.
"""

import numpy as np

from repro.experiments.report import format_table
from repro.workloads.azure import NAMED_TENANT_IDS
from repro.workloads.synthetic import FIXED_COST_IDS

from conftest import emit, once
from shared_runs import unpredictable_sweep


def test_fig12_latency_distributions(benchmark, capsys):
    sweep = once(benchmark, unpredictable_sweep)
    names = sweep.results[0].scheduler_names

    text = ""
    p99 = {}
    for fraction, result in zip(sweep.fractions, sweep.results):
        text += f"--- {fraction:.0%} unpredictable: p99 latency [s] ---\n"
        rows = []
        for tenant in list(NAMED_TENANT_IDS) + list(FIXED_COST_IDS):
            row = [tenant]
            for name in names:
                value = result[name].latency_p99(tenant)
                p99[(fraction, name, tenant)] = value
                row.append(value)
            rows.append(tuple(row))
        text += format_table(["tenant"] + names, rows) + "\n\n"

    text += "sigma(service lag) CDF medians [s]:\n"
    rows = []
    for fraction, result in zip(sweep.fractions, sweep.results):
        fair = result.fair_rate()
        row = [f"{fraction:.0%}"]
        for name in names:
            sigmas = [
                v
                for v in result[name].lag_sigmas(reference_rate=fair).values()
                if not np.isnan(v)
            ]
            row.append(float(np.median(sigmas)))
        rows.append(tuple(row))
    text += format_table(["unpredictable"] + names, rows)

    low, mid, high = sweep.fractions
    # Small predictable tenants (T1, T2): at 66% unpredictable, 2DFQ^E's
    # p99 beats both baselines.
    for tenant in ("T1", "T2"):
        assert (
            p99[(high, "2dfq-e", tenant)] < p99[(high, "wfq-e", tenant)]
        ), tenant
        assert (
            p99[(high, "2dfq-e", tenant)] < p99[(high, "wf2q-e", tenant)]
        ), tenant
    # Baselines deteriorate as unpredictability rises.
    assert p99[(high, "wfq-e", "T1")] > p99[(low, "wfq-e", "T1")]
    # T10 (inherently unpredictable) is not rescued by 2DFQ^E.
    t10_gain = p99[(high, "wfq-e", "T10")] / p99[(high, "2dfq-e", "T10")]
    t1_gain = p99[(high, "wfq-e", "T1")] / p99[(high, "2dfq-e", "T1")]
    assert t1_gain > t10_gain
    emit(capsys, "fig12: latency distributions (unknown costs)", text)
