"""Figure 14: quality of service vs workload unpredictability (§7).

The discussion figure: moving from fully predictable (left) to fully
unpredictable (right) workloads, every scheduler's quality of service
falls, but 2DFQ^E degrades much more slowly than WFQ^E / WF2Q^E --
opening the gap in the middle where typical workloads live.

QoS score = normalized 1 / median(p99 latency of the predictable small
tenants T1..T4).
"""

from repro.experiments.intuition import run_intuition_sweep
from repro.experiments.report import format_table, sparkline
from repro.experiments.unpredictable import unpredictable_config

from conftest import emit, once

FRACTIONS = (0.0, 0.5, 1.0)


def test_fig14_intuition_curve(benchmark, capsys):
    def run():
        config = unpredictable_config(duration=5.0)
        return run_intuition_sweep(
            fractions=FRACTIONS, num_random=80, config=config,
            open_loop_utilization=1.3,
        )

    curve = once(benchmark, run)

    rows = []
    for i, fraction in enumerate(curve.fractions):
        rows.append(
            tuple([f"{fraction:.0%}"] + [curve.qos[n][i] for n in curve.qos])
        )
    text = "QoS (normalized 1/median sigma(lag) of T1..T4) vs unpredictability:\n"
    text += format_table(["unpredictable"] + list(curve.qos), rows)
    text += "\n"
    for name, series in curve.qos.items():
        text += f"\n  {name:>7} {sparkline(series)}"

    # Shape (paper Figure 14): 2DFQ^E's quality-of-service curve sits
    # above both baselines at every unpredictability level, with a
    # clear gap in the middle ground where typical workloads live.
    for i in range(len(curve.fractions)):
        assert curve.qos["2dfq-e"][i] >= curve.qos["wfq-e"][i]
        assert curve.qos["2dfq-e"][i] >= curve.qos["wf2q-e"][i]
    middle = len(curve.fractions) // 2
    assert curve.qos["2dfq-e"][middle] > 2.0 * curve.qos["wfq-e"][middle]
    assert curve.qos["2dfq-e"][middle] > 2.0 * curve.qos["wf2q-e"][middle]
    emit(capsys, "fig14: QoS vs unpredictability intuition curve", text)
