"""Figure 13: the randomized experiment suite with unknown costs.

The paper runs 150 randomized experiments (threads 2-64, replay tenants
0-400, speed 0.5-4x, backlogged/expensive/unpredictable tenants 0-100)
and reports the distribution of 2DFQ^E's 99th-percentile-latency speedup
over WFQ^E and WF2Q^E for each reference tenant.  Expected shape: strong
median speedups for the small predictable tenants (T1..T4), near-parity
or losses for the large/unpredictable ones (T10, T12).

CI scale: 10 experiments over reduced ranges (see SuiteParameters
below); EXPERIMENTS.md records the scaling.
"""

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.suite import SuiteParameters, run_suite
from repro.workloads.azure import NAMED_TENANT_IDS

from conftest import emit, once

PARAMS = SuiteParameters(
    num_experiments=10,
    threads=(4, 16),
    replay_tenants=(10, 80),
    replay_speed=(0.5, 2.0),
    backlogged_tenants=(0, 8),
    expensive_tenants=(0, 8),
    unpredictable_tenants=(0, 60),
    duration=4.0,
    thread_rate=1.0e6,
    open_loop_utilization=1.2,
    seed=13,
)


def test_fig13_suite_speedups(benchmark, capsys):
    result = once(benchmark, lambda: run_suite(PARAMS))

    text = "Experiments:\n"
    for e in result.experiments:
        text += (
            f"  #{e.index}: threads={e.num_threads} replay={e.num_replay} "
            f"speed={e.replay_speed:.2f} backlogged={e.num_backlogged} "
            f"expensive={e.num_expensive} unpredictable={e.num_unpredictable}\n"
        )

    def signed(ratio: float) -> float:
        return ratio if ratio >= 1.0 else -1.0 / ratio

    rows = []
    for baseline in ("wfq-e", "wf2q-e"):
        ratios = result.ratios(baseline)
        for tenant in NAMED_TENANT_IDS:
            values = ratios[tenant]
            if not values:
                continue
            rows.append(
                (
                    baseline,
                    tenant,
                    len(values),
                    signed(float(np.min(values))),
                    signed(float(np.median(values))),
                    signed(float(np.max(values))),
                )
            )
    text += "\n2DFQ^E p99 speedup distribution per tenant:\n"
    text += format_table(
        ["baseline", "tenant", "n", "min", "median", "max"], rows
    )

    # Shape assertions: across the suite, the small predictable tenants'
    # median speedup is at least parity against both baselines, and the
    # best observed speedup for them is clearly positive.
    for baseline in ("wfq-e", "wf2q-e"):
        small_medians = [
            result.median_speedup(baseline, t) for t in ("T1", "T2", "T4")
        ]
        small_medians = [m for m in small_medians if not np.isnan(m)]
        assert small_medians, "no speedup data for small tenants"
        assert np.median(small_medians) >= 1.0
        best_t1 = max(result.ratios(baseline, tenants=("T1",))["T1"])
        assert best_t1 > 1.2
    emit(capsys, "fig13: randomized suite p99 speedups", text)
