"""Perf-regression harness: event-queue throughput (heap vs calendar).

Not a paper figure -- this benchmark tracks the simulator's event-loop
speed.  It runs the hold model (pop the earliest event, push a
replacement an exponential increment later) at pending-event counts
from a thousand to a million, on both :class:`~repro.simulator.events`
implementations: the reference binary heap and the calendar queue
selectable via ``ExperimentConfig.event_queue = "calendar"``.

The committed deliverable is the ``event_queue`` section of
``BENCH_manifest.json`` (plus the printed table under
``benchmarks/results/``): the heap-vs-calendar ratio trajectory that
justifies the calendar queue's existence.

Acceptance bars (full scale only -- the sweep needs the million-entry
regime to be meaningful):

* at the top of the sweep (1M pending) the calendar queue must deliver
  >= 2x the heap's throughput -- the O(1)-amortized bucket scan beating
  the heap's cache-hostile sift walks;
* at the bottom (1k pending) it must stay within 2x of the heap (the
  regime the heap wins; the calendar queue must merely not collapse).

Smoke runs (``REPRO_BENCH_OPS`` set) scale ops down and cap the sweep
at 50k pending, where neither bar applies -- only sanity is checked.
"""

import os

from repro.perf import (
    format_event_queue_results,
    measure_event_queue_throughput,
)

from conftest import emit, merge_bench_manifest, once

#: Full-scale sweep: heap-friendly, crossover, and fleet-scale regimes.
FULL_PENDING_SIZES = (1_000, 100_000, 1_000_000)
#: Smoke sweep: just enough to exercise both implementations end to end
#: (resizes, day walks) without the million-entry build cost.
SMOKE_PENDING_SIZES = (1_000, 50_000)


def test_bench_event_queue(benchmark, capsys):
    ops_env = int(os.environ.get("REPRO_BENCH_OPS", "0"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "0")) or 2
    reduced = ops_env > 0
    payload = once(
        benchmark,
        lambda: measure_event_queue_throughput(
            pending_sizes=SMOKE_PENDING_SIZES if reduced else FULL_PENDING_SIZES,
            ops=ops_env if reduced else 200_000,
            repeats=repeats,
        ),
    )
    merge_bench_manifest(event_queue=payload)
    emit(
        capsys,
        "BENCH: event-queue hold-model throughput (heap vs calendar)",
        format_event_queue_results(payload)
        + "\n\nratio = calendar/heap; >= 2x required at 1M pending "
        + "(full scale)",
    )
    rows = {row["pending"]: row for row in payload["results"]}
    assert all(
        row["heap_rps"] > 0 and row["calendar_rps"] > 0
        for row in rows.values()
    )
    if reduced:
        return
    top = rows[max(rows)]
    assert top["calendar_vs_heap"] >= 2.0, (
        f"calendar queue lost its >=2x advantage at {top['pending']:,} "
        f"pending events: {top}"
    )
    bottom = rows[min(rows)]
    assert bottom["calendar_vs_heap"] >= 0.5, (
        f"calendar queue collapsed in the heap-friendly regime: {bottom}"
    )
