"""Figure 9: known costs on the production-like workload (32 threads).

(a) T1's service rate and service lag under WFQ / WF2Q / 2DFQ, plus the
    Gini fairness index across all tenants;
(b) per-thread request-size partitioning.

Expected shapes: WFQ runs seconds ahead with oscillations; WF2Q tracks
GPS but dips when expensive requests occupy the pool; 2DFQ hugs GPS.
WFQ's Gini index is clearly worse; 2DFQ partitions request sizes across
threads.
"""

import numpy as np

from repro.experiments.report import format_table, sparkline

from conftest import emit, once
from shared_runs import production_run


def test_fig09_production_known_costs(benchmark, capsys):
    result = once(benchmark, production_run)

    fair_rate = result.fair_rate()
    text = "Figure 9a -- T1 service rate (100ms bins):\n"
    for name, run in result.runs.items():
        series = run.service_series("T1")
        text += f"  {name:>5} {sparkline(series.service_rate().tolist())}\n"

    rows = []
    for name, run in result.runs.items():
        series = run.service_series("T1")
        lag = series.lag_seconds(fair_rate)
        rows.append(
            (
                name,
                float(np.std(lag)),
                float(lag.min()),
                float(lag.max()),
                float(run.gini_values.mean()),
            )
        )
    text += "\nFigure 9a -- T1 service lag (s) and Gini index:\n"
    text += format_table(
        ["scheduler", "sigma(lag)", "lag min", "lag max", "mean Gini"], rows
    )

    text += "\n\nFigure 9b -- mean log10(request cost) per thread:\n"
    for name, run in result.runs.items():
        means = run.thread_cost_partition(32)
        text += f"  {name:>5} " + " ".join(
            "." if np.isnan(m) else f"{m:.1f}" for m in means
        ) + "\n"

    sigma = {row[0]: row[1] for row in rows}
    gini = {row[0]: row[4] for row in rows}
    # T1's service is far steadier under 2DFQ than WFQ (paper: 1-2
    # orders of magnitude; >= 5x at this reduced scale) and WF2Q sits
    # in between.
    assert sigma["2dfq"] < sigma["wfq"] / 5
    assert sigma["wf2q"] < sigma["wfq"] / 3
    assert sigma["2dfq"] <= sigma["wf2q"] * 1.5
    # WFQ is the least fair in aggregate; 2DFQ and WF2Q comparable.
    assert gini["wfq"] > gini["2dfq"]
    assert gini["wfq"] > gini["wf2q"]
    # 2DFQ's per-thread cost profile is ordered (size partitioning):
    # the low-index threads run costlier requests than the top ones.
    partition = result["2dfq"].thread_cost_partition(32)
    valid = partition[~np.isnan(partition)]
    assert valid[0] > valid[-1] + 0.5
    emit(capsys, "fig09: production workload, known costs", text)
