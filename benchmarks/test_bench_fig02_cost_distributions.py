"""Figure 2: per-API and per-tenant cost distributions of the workload.

Regenerates the violin-plot statistics (p1 / p50 / p99 whiskers) for the
ten APIs A..K and the twelve reference tenants T1..T12, and checks the
paper's headline facts: aggregate costs span ~4 orders of magnitude; A
is consistently cheap; G is usually cheap but occasionally very
expensive; T1 small/predictable, T11 large/predictable, T9 mixed.
"""

import numpy as np

from repro.experiments.report import format_table
from repro.metrics.summary import cost_summary
from repro.simulator.rng import make_rng
from repro.workloads.azure import (
    API_NAMES,
    NAMED_TENANT_IDS,
    api_population_distribution,
    named_tenant,
)

from conftest import emit, once

SAMPLES = 6000


def test_fig02_cost_distributions(benchmark, capsys):
    def run():
        rng = make_rng(2, "fig2")
        api_rows = []
        all_samples = []
        for api in API_NAMES:
            samples = api_population_distribution(api).sample_many(rng, SAMPLES)
            all_samples.append(samples)
            s = cost_summary(samples)
            api_rows.append((api, s.p1, s.p50, s.p99, s.decades_of_spread()))
        tenant_rows = []
        for tenant_id in NAMED_TENANT_IDS:
            sampler = named_tenant(tenant_id).request_sampler(rng)
            samples = np.array([sampler()[1] for _ in range(2000)])
            s = cost_summary(samples)
            tenant_rows.append((tenant_id, s.p1, s.p50, s.p99, s.cov))
        return api_rows, tenant_rows, np.concatenate(all_samples)

    api_rows, tenant_rows, aggregate = once(benchmark, run)

    text = "Figure 2a -- per-API cost distributions:\n"
    text += format_table(
        ["API", "p1", "p50", "p99", "decades(p99/p1)"], api_rows
    )
    text += "\n\nFigure 2b -- per-tenant cost distributions:\n"
    text += format_table(["tenant", "p1", "p50", "p99", "CoV"], tenant_rows)
    spread = np.log10(np.percentile(aggregate, 99.9) / np.percentile(aggregate, 0.1))
    text += f"\n\naggregate spread p0.1..p99.9: {spread:.2f} decades (paper: ~4)"

    api = {row[0]: row for row in api_rows}
    assert spread >= 3.5
    assert api["A"][3] < 2e3                      # A consistently cheap
    assert api["G"][3] / api["G"][2] > 50         # G bimodal tail
    tenant = {row[0]: row for row in tenant_rows}
    assert tenant["T1"][3] <= 1000.0              # T1 small
    assert tenant["T11"][2] > 1e5                 # T11 large
    assert tenant["T9"][4] > 1.0                  # T9 high variation
    emit(capsys, "fig02: cost distributions", text)
