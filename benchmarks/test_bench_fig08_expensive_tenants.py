"""Figure 8: known costs with increasingly many expensive tenants.

(a) service rate and service lag of one small tenant at n=50% expensive;
(b) thread occupancy (2DFQ partitions by size, the baselines do not);
(c) sigma(service lag) of the small tenant as the expensive-tenant count
    sweeps -- WFQ grows, WF2Q plateaus near its worst case, 2DFQ stays
    about an order of magnitude lower.

Scale: 16 threads as in the paper; 100 backlogged tenants; 6 s / 3 s
horizons instead of 15 s (shapes are stationary well before that).
"""

import numpy as np

from repro.experiments.expensive_requests import (
    SMALL_PROBE,
    expensive_requests_config,
    occupancy_expensive_fraction,
    run_expensive_requests,
    sigma_vs_expensive,
    small_tenant_series,
)
from repro.experiments.report import format_table, sparkline

from conftest import emit, once


def test_fig08_expensive_tenants(benchmark, capsys):
    def run():
        config_a = expensive_requests_config(duration=6.0)
        half = run_expensive_requests(
            num_expensive=50, total_tenants=100, config=config_a
        )
        config_c = expensive_requests_config(duration=3.0)
        sweep = sigma_vs_expensive(
            expensive_counts=(0, 25, 50, 75, 95),
            total_tenants=100,
            config=config_c,
        )
        return half, sweep

    half, sweep = once(benchmark, run)

    # (a) service rate + lag of the small probe tenant.
    series = small_tenant_series(half)
    text = "Figure 8a -- small tenant service rate (100ms bins) at n=50:\n"
    for name in half.scheduler_names:
        text += f"  {name:>5} {sparkline(series[name]['service_rate'].tolist())}\n"
    text += "\nFigure 8a -- service lag (s):\n"
    rows_a = []
    for name in half.scheduler_names:
        lag = series[name]["lag_seconds"]
        rows_a.append((name, float(lag.min()), float(lag.max()),
                       float(np.std(lag))))
    text += format_table(["scheduler", "lag min", "lag max", "sigma(lag)"], rows_a)

    # (b) occupancy partitioning.
    text += "\n\nFigure 8b -- fraction of busy time on expensive requests per thread:\n"
    for name in half.scheduler_names:
        frac = occupancy_expensive_fraction(half[name], 16)
        text += f"  {name:>5} " + " ".join(f"{f:.2f}" for f in frac) + "\n"

    # (c) sigma(lag) vs number of expensive tenants.
    text += "\nFigure 8c -- sigma(service lag) [s] vs expensive tenants:\n"
    text += format_table(
        ["n expensive"] + list(sweep.sigmas), sweep.rows()
    )

    # Shape assertions.
    sigma_at_50 = {name: sweep.sigmas[name][2] for name in sweep.sigmas}
    assert sigma_at_50["2dfq"] < sigma_at_50["wfq"] / 4
    assert sigma_at_50["2dfq"] < sigma_at_50["wf2q"] / 2
    frac_2dfq = occupancy_expensive_fraction(half["2dfq"], 16)
    assert frac_2dfq.max() > 0.8 and frac_2dfq.min() < 0.1
    # WFQ roughly grows with n; 2DFQ stays low throughout.
    assert max(sweep.sigmas["2dfq"]) < max(sweep.sigmas["wfq"]) / 3
    emit(capsys, "fig08: expensive tenants (known costs)", text)
