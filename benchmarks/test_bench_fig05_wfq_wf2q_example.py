"""Figure 5: WFQ and WF2Q schedules on the worked example.

Four backlogged tenants share two threads; A and B send size-1 requests,
C and D size-4.  Expected (paper §4): WFQ runs four A/B rounds then
blocks both threads with C and D at t=4; WF2Q interleaves one large
block per small burst starting at t=1.
"""

from repro.experiments.schedule_examples import render_schedule, worked_example

from conftest import emit, once


def test_fig05_wfq_wf2q_schedules(benchmark, capsys):
    schedules = once(
        benchmark,
        lambda: {name: worked_example(name) for name in ("wfq", "wf2q")},
    )
    lines = []
    for name, slots in schedules.items():
        lines.append(f"--- {name} ---")
        lines.extend(render_schedule(slots))
        lines.append("")

    wfq_w0 = [s.label for s in schedules["wfq"] if s.thread_id == 0]
    assert wfq_w0[:5] == ["a1", "a2", "a3", "a4", "c1"]
    wf2q_w0 = [s.label for s in schedules["wf2q"] if s.thread_id == 0]
    assert wf2q_w0[:2] == ["a1", "c1"]
    emit(capsys, "fig05: WFQ and WF2Q worked example", "\n".join(lines))
