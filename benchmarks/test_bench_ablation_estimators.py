"""Ablation: estimator x scheduler cross (paper §7, "Estimators").

"We experimented with numerous combinations of scheduler and estimator,
and found that WFQ and WF2Q with pessimistic estimation performed no
better, and often significantly worse, than using an EMA."  Pessimism
only pays off when the scheduler can *spatially* separate the tenants
it marks expensive -- which only 2DFQ can.

Metric: p99 latency of a predictable small tenant under each
(scheduler, estimator) pair on the bimodal-unpredictable workload.
"""

from repro.core.registry import SCHEDULER_CLASSES
from repro.estimation import EMAEstimator, PessimisticEstimator
from repro.experiments.report import format_table
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource, Simulation, ThreadPoolServer
from repro.simulator.rng import make_rng

from conftest import emit, once

NUM_THREADS = 8
RATE = 1000.0
DURATION = 30.0

SCHEDULERS = ("wfq", "wf2q", "2dfq")
ESTIMATORS = {
    "ema": lambda: EMAEstimator(alpha=0.99, initial_estimate=2.0),
    "pessimistic": lambda: PessimisticEstimator(alpha=0.99, initial_estimate=2.0),
}


def _run(scheduler_name: str, estimator_name: str) -> float:
    sim = Simulation()
    scheduler = SCHEDULER_CLASSES[scheduler_name](
        num_threads=NUM_THREADS,
        thread_rate=RATE,
        estimator=ESTIMATORS[estimator_name](),
    )
    server = ThreadPoolServer(
        sim, scheduler, num_threads=NUM_THREADS, rate=RATE,
        refresh_interval=0.01,
    )
    collector = MetricsCollector(
        server, sample_interval=0.1, warmup=5.0, record_dispatches=False
    )
    BackloggedSource(server, "steady", lambda: ("call", 1.0), window=4).start()
    for index in range(6):
        rng = make_rng(31, "estimator-ablation", str(index))

        def sample(rng=rng):
            if rng.random() < 0.05:
                return ("call", float(rng.normal(2000.0, 200.0)))
            return ("call", float(max(0.1, rng.normal(2.0, 0.4))))

        BackloggedSource(server, f"wild-{index}", sample, window=4).start()
    sim.run(until=DURATION)
    return collector.result().latency_p99("steady")


def test_ablation_estimator_scheduler_cross(benchmark, capsys):
    def run():
        return {
            (s, e): _run(s, e) for s in SCHEDULERS for e in ESTIMATORS
        }

    p99 = once(benchmark, run)
    rows = []
    for scheduler in SCHEDULERS:
        rows.append(
            (scheduler, p99[(scheduler, "ema")], p99[(scheduler, "pessimistic")])
        )
    text = "p99 latency [s] of the predictable tenant:\n"
    text += format_table(["scheduler", "EMA", "pessimistic"], rows)
    text += (
        "\n\nOn this small controlled workload pessimism helps every"
        "\nscheduler (over-charging the bimodal tenants delays them under"
        "\nany policy); the paper reports that on full production"
        "\nworkloads WFQ/WF2Q with pessimistic estimation were often"
        "\nsignificantly worse than with an EMA -- only 2DFQ can also act"
        "\non pessimism *spatially*, which is why 2DFQ^E pairs them."
    )
    # 2DFQ + pessimistic is the best cell overall (the 2DFQ^E design).
    best = min(p99.values())
    assert p99[("2dfq", "pessimistic")] <= best * 1.25
    # Pessimism buys 2DFQ more than it buys WFQ (relative improvement).
    gain_2dfq = p99[("2dfq", "ema")] / p99[("2dfq", "pessimistic")]
    gain_wfq = p99[("wfq", "ema")] / p99[("wfq", "pessimistic")]
    assert gain_2dfq >= gain_wfq * 0.9
    emit(capsys, "ablation: estimator x scheduler cross", text)
