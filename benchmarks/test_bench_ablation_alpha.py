"""Ablation: the pessimistic estimator's decay factor alpha.

Paper §5: "The alpha parameter allows us to tune the trade-off between
how aggressively we separate predictable tenants from unpredictable
ones, and how much leeway a tenant has to send the occasional expensive
request."  alpha -> 1 means surprises are remembered (almost) forever;
small alpha forgets quickly and re-exposes the pool to underestimates.

Workload: one predictable small tenant vs unpredictable tenants whose
costs are bimodal within a single API (the Figure 3 high-CoV shape).
Metric: sigma(service lag) of the predictable tenant under 2DFQ^E.
"""

from repro.core.twodfq import TwoDFQEScheduler
from repro.experiments.report import format_table
from repro.metrics import MetricsCollector
from repro.simulator import BackloggedSource, Simulation, ThreadPoolServer
from repro.simulator.rng import make_rng

from conftest import emit, once

ALPHAS = (0.5, 0.9, 0.99, 0.999, 1.0)
NUM_THREADS = 8
RATE = 1000.0
DURATION = 30.0
NUM_WILD = 6


def _run_alpha(alpha: float) -> float:
    sim = Simulation()
    scheduler = TwoDFQEScheduler(
        num_threads=NUM_THREADS, thread_rate=RATE,
        alpha=alpha, initial_estimate=2.0,
    )
    server = ThreadPoolServer(
        sim, scheduler, num_threads=NUM_THREADS, rate=RATE,
        refresh_interval=0.01,
    )
    collector = MetricsCollector(server, sample_interval=0.1, warmup=5.0)
    BackloggedSource(server, "steady", lambda: ("call", 1.0), window=4).start()
    for index in range(NUM_WILD):
        rng = make_rng(11, "alpha-ablation", str(index))

        def sample(rng=rng):
            if rng.random() < 0.05:
                return ("call", float(rng.normal(2000.0, 200.0)))
            return ("call", float(max(0.1, rng.normal(2.0, 0.4))))

        BackloggedSource(server, f"wild-{index}", sample, window=4).start()
    sim.run(until=DURATION)
    result = collector.result()
    fair = NUM_THREADS * RATE / (1 + NUM_WILD)
    return result.service_series("steady").lag_sigma(fair)


def test_ablation_pessimistic_alpha(benchmark, capsys):
    sigmas = once(
        benchmark, lambda: {alpha: _run_alpha(alpha) for alpha in ALPHAS}
    )
    rows = [(alpha, sigma) for alpha, sigma in sigmas.items()]
    text = "sigma(lag) of the predictable tenant vs pessimistic alpha:\n"
    text += format_table(["alpha", "sigma(lag) [s]"], rows)
    text += (
        "\n\nalpha close to 1 retains the expensive-surprise memory and"
        "\nkeeps the unpredictable tenants isolated; small alpha forgets"
        "\nand re-admits their masquerading monsters to the small threads."
    )
    # The paper's operating point (0.99+) must beat quick forgetting.
    best_high = min(sigmas[0.99], sigmas[0.999], sigmas[1.0])
    assert best_high < sigmas[0.5]
    emit(capsys, "ablation: pessimistic estimator alpha", text)
