"""Fleet scaling: router cost as the server count grows.

The routing tier sits on every request's critical path, so its cost
must stay flat as the fleet grows.  This bench runs the figfleet
workload (closed-loop probes + expensive tenants + open-loop Poisson
arrivals, scaled to fleet capacity) through 1, 4, and 16 servers under
every registered router and records wallclock throughput into the
``fleet`` section of ``BENCH_manifest.json``.

Env knobs (CI smoke uses the reduced scale):

* ``REPRO_BENCH_FLEET_DURATION`` -- simulated seconds per run
  (default 4.0).
"""

from __future__ import annotations

import os
import time

from repro.experiments.fleet import fleet_population, run_fleet
from repro.experiments.report import format_table
from repro.fleet import router_names

from conftest import emit, merge_bench_manifest, once

SERVER_COUNTS = (1, 4, 16)
NUM_THREADS = 4
RATE = 1000.0


def _run_one(num_servers: int, router: str, duration: float) -> dict:
    specs = fleet_population(capacity=num_servers * NUM_THREADS * RATE)
    started = time.perf_counter()  # repro: ignore[RPR001] -- host timing of the bench itself
    result = run_fleet(
        num_servers=num_servers,
        num_threads=NUM_THREADS,
        thread_rate=RATE,
        duration=duration,
        router=router,
        specs=specs,
        seed=0,
    )
    elapsed = time.perf_counter() - started  # repro: ignore[RPR001] -- host timing of the bench itself
    routed = result.counts["routed"]
    return {
        "servers": num_servers,
        "router": router,
        "sim_duration": duration,
        "wall_seconds": round(elapsed, 4),
        "routed": routed,
        "completed": result.counts["completed"],
        "routes_per_wall_second": round(routed / elapsed, 1),
    }


def _sweep(duration: float) -> list:
    rows = []
    for num_servers in SERVER_COUNTS:
        for router in router_names():
            rows.append(_run_one(num_servers, router, duration))
    return rows


def test_bench_fleet_router_scaling(benchmark, capsys):
    duration = float(os.environ.get("REPRO_BENCH_FLEET_DURATION", "4.0"))
    rows = once(benchmark, lambda: _sweep(duration))
    merge_bench_manifest(
        fleet={
            "num_threads": NUM_THREADS,
            "thread_rate": RATE,
            "sim_duration": duration,
            "results": rows,
        }
    )
    emit(
        capsys,
        "BENCH: fleet router scaling 1-4-16 servers",
        format_table(
            ["servers", "router", "routed", "completed", "wall s", "routes/s"],
            [
                (
                    r["servers"],
                    r["router"],
                    r["routed"],
                    r["completed"],
                    r["wall_seconds"],
                    r["routes_per_wall_second"],
                )
                for r in rows
            ],
        ),
    )
    assert all(r["completed"] > 0 for r in rows)
    # Work scales with the fleet: the 16-server runs must admit (and
    # finish) more than the single-server runs for the same router.
    by_router = {}
    for r in rows:
        by_router.setdefault(r["router"], {})[r["servers"]] = r
    for router, sizes in by_router.items():
        assert sizes[16]["completed"] > sizes[1]["completed"], router
