"""Bounded flight recorder: the last K events, dumped on trouble.

Long runs cannot retain their full event stream, but the events that
*explain a failure* are almost always the ones immediately before it.
A :class:`FlightRecorder` is a tracer sink holding a ring buffer of the
last ``capacity`` events; whenever a trigger event arrives -- a
``fault`` from the :class:`~repro.faults.injector.FaultInjector` or an
``invariant`` from the :mod:`repro.validate` watchdog -- it snapshots
the ring into a dump.  The watchdog emits its ``invariant`` event
*before* raising in strict mode, so the dump exists even when the run
aborts; the session exporter writes any dumps as
``flight_recorder.json`` alongside the manifest.

Dumps are capped (``max_dumps``) so a fault storm cannot blow memory;
suppressed dumps are counted, never silently ignored.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Tuple, Union

import json

from .events import FAULT, INVARIANT, TraceEvent

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring buffer of recent trace events with trigger-driven dumps."""

    def __init__(
        self,
        capacity: int = 2048,
        trigger_kinds: Tuple[str, ...] = (FAULT, INVARIANT),
        max_dumps: int = 4,
    ) -> None:
        self.capacity = capacity
        self.trigger_kinds = trigger_kinds
        self.max_dumps = max_dumps
        self.events_seen = 0
        self.suppressed_dumps = 0
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Completed dumps, oldest first.
        self.dumps: List[Dict[str, Any]] = []

    def on_event(self, event: TraceEvent) -> None:
        """Tracer sink: record the event; dump if it is a trigger."""
        self._ring.append(event)
        self.events_seen += 1
        if event.kind in self.trigger_kinds:
            self._dump(event)

    def _dump(self, trigger: TraceEvent) -> None:
        if len(self.dumps) >= self.max_dumps:
            self.suppressed_dumps += 1
            return
        self.dumps.append(
            {
                "trigger": trigger.as_dict(),
                "events_seen": self.events_seen,
                "ring": [e.as_dict() for e in self._ring],
            }
        )

    def payload(self) -> Dict[str, Any]:
        """JSON-ready artifact body (written only when dumps exist)."""
        return {
            "capacity": self.capacity,
            "trigger_kinds": list(self.trigger_kinds),
            "events_seen": self.events_seen,
            "suppressed_dumps": self.suppressed_dumps,
            "dumps": self.dumps,
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write :meth:`payload` to ``path`` and return it."""
        target = Path(path)
        with target.open("w") as fh:
            json.dump(self.payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return target

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, seen={self.events_seen}, "
            f"dumps={len(self.dumps)})"
        )
