"""Observability: scheduler-decision tracing, counters, and exporters.

The paper's claims are about scheduler *decisions* -- which tenant won a
thread and why (tags, eligibility, stagger, estimates).  This package
makes those decisions observable without perturbing them:

* :class:`Tracer` -- typed decision events (:mod:`repro.obs.events`)
  emitted by the instrumented schedulers, estimators and simulator; a
  single ``is not None`` guard when disabled (see the overhead contract
  in :mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` -- named counters/gauges/timers with a
  snapshot API (:mod:`repro.obs.registry`);
* exporters (:mod:`repro.obs.exporters`) -- JSONL event streams, Chrome
  trace / Perfetto occupancy timelines, and per-run ``manifest.json``
  provenance records;
* :class:`TraceSession` (:mod:`repro.obs.session`) -- the glue that the
  experiment runner and the ``--trace`` CLI flag use to write all three
  artifacts per run.

On top of the raw event stream sit the derivation layers:

* spans (:mod:`repro.obs.spans`) -- per-request lifecycle spans with an
  exact wait-time decomposition (head-of-line blocking attribution);
* the online fairness auditor (:mod:`repro.obs.audit`) -- streaming
  lag / bursty-allocation / estimator-drift monitors emitting ``audit``
  events;
* the exposition layer -- a Prometheus text-format exporter
  (:mod:`repro.obs.prometheus`) and a bounded flight recorder
  (:mod:`repro.obs.flight`) that dumps the last K events whenever a
  fault or invariant violation fires.  The figures CLI's ``--audit DIR``
  enables all of them per run.

Quickstart::

    from repro.obs import Tracer

    tracer = Tracer("demo")
    scheduler.attach_tracer(tracer)
    scheduler.estimator.attach_tracer(tracer)
    ... run ...
    tracer.of_kind("select")          # decision events
    tracer.registry.snapshot()        # counters

or, end to end: ``python -m repro.figures fig06 --trace traces/``.
"""

from .audit import AuditConfig, FairnessAuditor
from .events import EVENT_KINDS, TraceEvent
from .exporters import (
    build_manifest,
    chrome_trace_events,
    write_chrome_trace,
    write_events_jsonl,
    write_manifest,
)
from .flight import FlightRecorder
from .prometheus import prometheus_text, write_prometheus
from .registry import HOST_CLOCK, ClockFn, Counter, Gauge, MetricsRegistry, Timer
from .session import TraceSession, clear_session, current_session, trace_session
from .spans import BlockingInterval, RequestSpan, SpanSet, build_spans, spans_from_jsonl
from .tracer import Tracer

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "ClockFn",
    "HOST_CLOCK",
    "TraceSession",
    "trace_session",
    "current_session",
    "clear_session",
    "build_manifest",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_manifest",
    "BlockingInterval",
    "RequestSpan",
    "SpanSet",
    "build_spans",
    "spans_from_jsonl",
    "AuditConfig",
    "FairnessAuditor",
    "FlightRecorder",
    "prometheus_text",
    "write_prometheus",
]
