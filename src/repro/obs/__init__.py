"""Observability: scheduler-decision tracing, counters, and exporters.

The paper's claims are about scheduler *decisions* -- which tenant won a
thread and why (tags, eligibility, stagger, estimates).  This package
makes those decisions observable without perturbing them:

* :class:`Tracer` -- typed decision events (:mod:`repro.obs.events`)
  emitted by the instrumented schedulers, estimators and simulator; a
  single ``is not None`` guard when disabled (see the overhead contract
  in :mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` -- named counters/gauges/timers with a
  snapshot API (:mod:`repro.obs.registry`);
* exporters (:mod:`repro.obs.exporters`) -- JSONL event streams, Chrome
  trace / Perfetto occupancy timelines, and per-run ``manifest.json``
  provenance records;
* :class:`TraceSession` (:mod:`repro.obs.session`) -- the glue that the
  experiment runner and the ``--trace`` CLI flag use to write all three
  artifacts per run.

Quickstart::

    from repro.obs import Tracer

    tracer = Tracer("demo")
    scheduler.attach_tracer(tracer)
    scheduler.estimator.attach_tracer(tracer)
    ... run ...
    tracer.of_kind("select")          # decision events
    tracer.registry.snapshot()        # counters

or, end to end: ``python -m repro.figures fig06 --trace traces/``.
"""

from .events import EVENT_KINDS, TraceEvent
from .exporters import (
    build_manifest,
    chrome_trace_events,
    write_chrome_trace,
    write_events_jsonl,
    write_manifest,
)
from .registry import Counter, Gauge, MetricsRegistry, Timer
from .session import TraceSession, clear_session, current_session, trace_session
from .tracer import Tracer

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "TraceSession",
    "trace_session",
    "current_session",
    "clear_session",
    "build_manifest",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_manifest",
]
