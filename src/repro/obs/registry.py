"""Named counters, gauges and timers with a snapshot API.

A :class:`MetricsRegistry` is the numeric side of the observability
subsystem: where the :class:`~repro.obs.tracer.Tracer` records *events*
(one object per decision), the registry records *aggregates* -- how many
dispatches ran, how many stale heap entries the
:class:`~repro.core.selection.SelectionIndex` popped, how long the hot
path spent inside the timed loop.  Instruments are created lazily on
first use and identified by dotted names (``server.refresh_reports``),
so instrumentation sites never need registration boilerplate.

All instruments are plain-Python and allocation-free on the hot path:
``Counter.inc`` is one float add, ``Gauge.set`` one store, and ``Timer``
only calls its clock at scope boundaries.

Timer clocks are *injectable*: a timer reads time through a zero-arg
callable, defaulting to the host's monotonic high-resolution counter
(:data:`HOST_CLOCK`).  The experiment runner swaps in the simulation
clock (:meth:`MetricsRegistry.set_clock`) for traced runs, so phase
timers report in deterministic sim-time and run manifests stay
byte-reproducible; standalone profiling (the perf harness) keeps the
host clock.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

__all__ = ["ClockFn", "HOST_CLOCK", "Counter", "Gauge", "Timer", "MetricsRegistry"]

#: A timer clock: zero-arg callable returning seconds (any epoch).
ClockFn = Callable[[], float]

#: The default timer clock -- the host's monotonic high-resolution
#: counter, held as a function *reference*.  This is the single point
#: where host wall-clock may enter the metrics layer, and it is never
#: read by simulation logic: attach a sim clock for deterministic runs.
HOST_CLOCK: ClockFn = time.perf_counter


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulating interval timer; usable as a context manager.

    ``total`` sums every timed interval, ``count`` the number of
    intervals, ``last`` the most recent one -- enough to report both
    aggregate and per-iteration hot-path cost.  Time is read through
    ``clock`` (default :data:`HOST_CLOCK`); attach the simulation clock
    to report in sim-time instead.
    """

    __slots__ = ("name", "total", "count", "last", "clock", "_started")

    def __init__(self, name: str, clock: Optional[ClockFn] = None) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self.last = 0.0
        self.clock: ClockFn = clock if clock is not None else HOST_CLOCK
        self._started = 0.0

    def start(self) -> "Timer":
        self._started = self.clock()
        return self

    def stop(self) -> float:
        self.last = self.clock() - self._started
        self.total += self.last
        self.count += 1
        return self.last

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"Timer({self.name} total={self.total:.6g}s count={self.count})"


class MetricsRegistry:
    """Lazily created named instruments with one-call snapshotting."""

    __slots__ = ("_counters", "_gauges", "_timers", "_clock")

    def __init__(self, clock: Optional[ClockFn] = None) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._clock = clock

    def set_clock(self, clock: Optional[ClockFn]) -> None:
        """Set the clock for this registry's timers -- existing and
        future.  ``None`` restores :data:`HOST_CLOCK`."""
        self._clock = clock
        effective = clock if clock is not None else HOST_CLOCK
        for timer in self._timers.values():
            timer.clock = effective

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._gauges, self._timers)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._timers)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._gauges)
            instrument = self._timers[name] = Timer(name, self._clock)
        return instrument

    def instruments(self) -> Iterator[Tuple[str, str, Any]]:
        """``(type, name, instrument)`` triples in registration order --
        the typed view exposition layers (Prometheus) need, which the
        flat :meth:`snapshot` erases."""
        for name, counter in self._counters.items():
            yield ("counter", name, counter)
        for name, gauge in self._gauges.items():
            yield ("gauge", name, gauge)
        for name, timer in self._timers.items():
            yield ("timer", name, timer)

    @staticmethod
    def _check_free(name: str, *others: Dict) -> None:
        # Snapshot keys are flat, so one name must map to one instrument.
        if any(name in other for other in others):
            raise ValueError(
                f"metric name {name!r} already registered as another type"
            )

    def snapshot(self) -> Dict[str, Union[int, float, Dict[str, float]]]:
        """JSON-ready view of every instrument: counters and gauges map
        to their value, timers to ``{total, count, mean}``."""
        out: Dict[str, Union[int, float, Dict[str, float]]] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, timer in self._timers.items():
            out[name] = {
                "total": timer.total,
                "count": timer.count,
                "mean": timer.total / timer.count if timer.count else 0.0,
            }
        return out

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )
