"""Named counters, gauges and timers with a snapshot API.

A :class:`MetricsRegistry` is the numeric side of the observability
subsystem: where the :class:`~repro.obs.tracer.Tracer` records *events*
(one object per decision), the registry records *aggregates* -- how many
dispatches ran, how many stale heap entries the
:class:`~repro.core.selection.SelectionIndex` popped, how long the hot
path spent inside the timed loop.  Instruments are created lazily on
first use and identified by dotted names (``server.refresh_reports``),
so instrumentation sites never need registration boilerplate.

All instruments are plain-Python and allocation-free on the hot path:
``Counter.inc`` is one float add, ``Gauge.set`` one store, and ``Timer``
only calls ``perf_counter`` at scope boundaries.
"""

from __future__ import annotations

import time
from typing import Dict, Union

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry"]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulating wall-clock timer; usable as a context manager.

    ``total`` sums every timed interval, ``count`` the number of
    intervals, ``last`` the most recent one -- enough to report both
    aggregate and per-iteration hot-path wall-clock.
    """

    __slots__ = ("name", "total", "count", "last", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self.last = 0.0
        self._started = 0.0

    def start(self) -> "Timer":
        # Timers measure real host wall-clock (run telemetry), the one
        # place that is allowed to differ between runs.
        self._started = time.perf_counter()  # repro: ignore[RPR001]
        return self

    def stop(self) -> float:
        self.last = time.perf_counter() - self._started  # repro: ignore[RPR001]
        self.total += self.last
        self.count += 1
        return self.last

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"Timer({self.name} total={self.total:.6g}s count={self.count})"


class MetricsRegistry:
    """Lazily created named instruments with one-call snapshotting."""

    __slots__ = ("_counters", "_gauges", "_timers")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._gauges, self._timers)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._timers)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            self._check_free(name, self._counters, self._gauges)
            instrument = self._timers[name] = Timer(name)
        return instrument

    @staticmethod
    def _check_free(name: str, *others: Dict) -> None:
        # Snapshot keys are flat, so one name must map to one instrument.
        if any(name in other for other in others):
            raise ValueError(
                f"metric name {name!r} already registered as another type"
            )

    def snapshot(self) -> Dict[str, Union[int, float, Dict[str, float]]]:
        """JSON-ready view of every instrument: counters and gauges map
        to their value, timers to ``{total, count, mean}``."""
        out: Dict[str, Union[int, float, Dict[str, float]]] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, timer in self._timers.items():
            out[name] = {
                "total": timer.total,
                "count": timer.count,
                "mean": timer.total / timer.count if timer.count else 0.0,
            }
        return out

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )
