"""Exporters: JSONL event streams, Chrome traces, and run manifests.

Three durable artifacts per traced run (reproducibility-report practice:
a run that cannot be re-derived from its artifacts is not reproduced):

* ``events.jsonl`` -- the tracer's decision events, one JSON object per
  line, in emission order.  Greppable, diffable, and the format the
  golden-trace tests pin.
* ``chrome_trace.json`` -- the thread-occupancy log in the Chrome
  trace-event format, loadable in ``chrome://tracing`` or Perfetto, so
  the schedules behind Figures 8b/9b/11b can be inspected interactively
  (one timeline row per worker thread, one slice per request, virtual
  time and backlog as counter tracks).
* ``manifest.json`` -- everything needed to re-run: seed, configuration,
  scheduler parameters, package versions, git SHA, plus the counter
  snapshot of the run.

All functions take duck-typed inputs (anything with the right
attributes), so this module depends only on the standard library and
never imports the scheduler or metrics packages.
"""

from __future__ import annotations

import functools
import json
import platform
import subprocess
import sys
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "write_events_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "build_manifest",
    "write_manifest",
]

#: Chrome trace timestamps are microseconds.
_US = 1e6

#: Event kinds rendered as Chrome-trace instant events ("ph": "i").
_INSTANT_KINDS = ("cancel", "fault", "invariant", "audit")

#: Chrome-trace reserved color names used for tenant-colored instants.
#: The assignment is a stable hash of the tenant id, so one tenant keeps
#: one color across runs and exporters.
_TENANT_COLORS = (
    "thread_state_running",
    "thread_state_iowait",
    "rail_response",
    "rail_animation",
    "rail_idle",
    "rail_load",
    "cq_build_running",
    "cq_build_passed",
    "cq_build_failed",
    "vsync_highlight_color",
)

#: Instant events with no tenant (process-wide faults, drift audits).
_NEUTRAL_COLOR = "generic_work"


def _tenant_color(tenant: Optional[str]) -> str:
    if tenant is None:
        return _NEUTRAL_COLOR
    digest = zlib.crc32(str(tenant).encode("utf-8"))
    return _TENANT_COLORS[digest % len(_TENANT_COLORS)]


# -- JSONL event stream ---------------------------------------------------------


def write_events_jsonl(events: Iterable[Any], path: Union[str, Path]) -> Path:
    """Write trace events (or plain dicts) as one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in events:
            record = event.as_dict() if hasattr(event, "as_dict") else event
            fh.write(json.dumps(record) + "\n")
    return path


# -- Chrome trace ----------------------------------------------------------------


def _record_fields(record: Any) -> Dict[str, Any]:
    """Normalize a dispatch-log-like record.

    Accepts :class:`~repro.metrics.collector.DispatchRecord`,
    :class:`~repro.experiments.schedule_examples.ScheduledSlot`, or any
    object/dict with ``thread_id``, ``start``, ``end`` and optionally
    ``tenant_id``/``api``/``cost``/``label``.
    """
    get = record.get if isinstance(record, dict) else (
        lambda key, default=None: getattr(record, key, default)
    )
    tenant = get("tenant_id", "?")
    label = get("label", None)
    api = get("api", None)
    start = float(get("start"))
    end = float(get("end"))
    cost = get("cost", None)
    name = label or (f"{tenant}/{api}" if api else str(tenant))
    return {
        "thread_id": int(get("thread_id")),
        "tenant": tenant,
        "name": name,
        "api": api,
        "start": start,
        "end": end,
        "cost": end - start if cost is None else float(cost),
    }


def chrome_trace_events(
    dispatch_log: Iterable[Any],
    trace_events: Iterable[Any] = (),
    process_name: str = "repro",
) -> List[Dict[str, Any]]:
    """Build the Chrome ``traceEvents`` list.

    ``dispatch_log`` becomes complete (``"ph": "X"``) slices, one
    timeline row per worker thread.  ``trace_events`` (the tracer's
    decision events, optional) contribute ``virtual_time`` and
    ``backlog`` counter tracks sampled at every dispatch, plus
    process-scoped instant events (``"ph": "i"``) for the exceptional
    kinds -- ``cancel``, ``fault``, ``invariant``, ``audit`` -- colored
    by tenant (``cname``, stable hash of the tenant id) with the full
    event payload in ``args``.
    """
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    threads_seen = set()
    slices: List[Dict[str, Any]] = []
    for record in dispatch_log:
        fields = _record_fields(record)
        tid = fields["thread_id"]
        threads_seen.add(tid)
        slices.append(
            {
                "name": fields["name"],
                "cat": "request",
                "ph": "X",
                "ts": fields["start"] * _US,
                "dur": max(0.0, fields["end"] - fields["start"]) * _US,
                "pid": 1,
                "tid": tid,
                "args": {"tenant": fields["tenant"], "cost": fields["cost"]},
            }
        )
    for tid in sorted(threads_seen):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"worker-{tid}"},
            }
        )
        out.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    out.extend(slices)
    for event in trace_events:
        record = event.as_dict() if hasattr(event, "as_dict") else event
        kind = record.get("kind")
        if kind == "dispatch":
            ts = record["t"] * _US
            out.append(
                {
                    "name": "virtual_time",
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "args": {"vt": record.get("vt", 0.0)},
                }
            )
            out.append(
                {
                    "name": "backlog",
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "args": {"queued": record.get("backlog", 0)},
                }
            )
        elif kind in _INSTANT_KINDS:
            tenant = record.get("tenant")
            detail = record.get("fault") or record.get("code") or record.get(
                "monitor"
            )
            args = {
                k: v for k, v in record.items() if k not in ("kind", "t")
            }
            out.append(
                {
                    "name": f"{kind}:{detail}" if detail else kind,
                    "cat": kind,
                    "ph": "i",
                    "s": "p",
                    "ts": record["t"] * _US,
                    "pid": 1,
                    "tid": 0,
                    "cname": _tenant_color(tenant),
                    "args": args,
                }
            )
    return out


def write_chrome_trace(
    dispatch_log: Iterable[Any],
    path: Union[str, Path],
    trace_events: Iterable[Any] = (),
    process_name: str = "repro",
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a Chrome/Perfetto-loadable trace (JSON object format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(
            dispatch_log, trace_events, process_name=process_name
        ),
        "displayTimeUnit": "ms",
        "otherData": metadata or {},
    }
    path.write_text(json.dumps(payload) + "\n")
    return path


# -- manifest ----------------------------------------------------------------------


# Provenance lookups are cached per process: the git SHA and package
# versions cannot change mid-run, and a figure suite writes one manifest
# per scheduler run -- shelling out to git for each would dominate
# export time.  (``functools.cache``-style memoization; the regression
# test in tests/test_obs_exporters.py pins "one subprocess per
# process".)


@functools.lru_cache(maxsize=1)
def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@functools.lru_cache(maxsize=1)
def _cached_package_versions() -> Dict[str, str]:
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        from repro import __version__

        versions["repro"] = __version__
    except ImportError:  # pragma: no cover
        pass
    return versions


def _package_versions() -> Dict[str, str]:
    # Copy so a caller mutating its manifest cannot poison the cache.
    return dict(_cached_package_versions())


def build_manifest(
    *,
    name: str,
    seed: Optional[int] = None,
    config: Optional[Dict[str, Any]] = None,
    scheduler: Optional[Dict[str, Any]] = None,
    counters: Optional[Dict[str, Any]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance record of one run (JSON-ready)."""
    manifest: Dict[str, Any] = {
        "name": name,
        "seed": seed,
        "config": config or {},
        "scheduler": scheduler or {},
        "versions": _package_versions(),
        "platform": {
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "git_sha": _git_sha(),
        "argv": list(sys.argv),
    }
    if counters:
        manifest["counters"] = counters
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Union[str, Path], **kwargs: Any) -> Path:
    """Build and write ``manifest.json`` (kwargs as for
    :func:`build_manifest`)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(**kwargs)
    path.write_text(json.dumps(_jsonable(manifest), indent=2, sort_keys=True) + "\n")
    return path


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
