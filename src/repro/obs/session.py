"""Trace sessions: wire tracing through the experiment harness.

A :class:`TraceSession` owns an output directory and hands out one
:class:`~repro.obs.tracer.Tracer` per run.  The experiment runner
(:func:`repro.experiments.runner.run_single`) and the worked-example
sequencer consult the *active* session -- set with the
:func:`trace_session` context manager, which is what the figures CLI's
``--trace`` flag uses -- so every run they execute while a session is
active automatically lands on disk as::

    <dir>/<run-label>/events.jsonl        decision event stream
    <dir>/<run-label>/chrome_trace.json   thread occupancy (chrome://tracing)
    <dir>/<run-label>/manifest.json       seed / config / versions / git SHA

An *audited* session (``audit=AuditConfig()``, the CLI's ``--audit``)
additionally attaches a :class:`~repro.obs.audit.FairnessAuditor` and a
:class:`~repro.obs.flight.FlightRecorder` to every run, and exports::

    <dir>/<run-label>/audit_report.json   monitor state + trip log
    <dir>/<run-label>/metrics.prom        Prometheus text-format snapshot
    <dir>/<run-label>/flight_recorder.json  (only when a trigger fired)

The session is process-global and experiments are single-threaded (the
simulator is a discrete-event loop), so a plain module global suffices.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import re
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from .audit import AuditConfig, FairnessAuditor
from .exporters import write_chrome_trace, write_events_jsonl, write_manifest
from .flight import FlightRecorder
from .prometheus import write_prometheus
from .tracer import Tracer

__all__ = ["TraceSession", "trace_session", "current_session", "clear_session"]

_ACTIVE: Optional["TraceSession"] = None


def current_session() -> Optional["TraceSession"]:
    """The active trace session, or ``None`` when tracing is off."""
    return _ACTIVE


def clear_session() -> None:
    """Deactivate any active session (tracing off until re-entered).

    Pool workers of :mod:`repro.parallel.engine` call this from their
    initializer: a session inherited through ``fork`` must never write
    artifacts from a worker (DESIGN.md §10), so workers always run with
    tracing disabled.
    """
    global _ACTIVE
    _ACTIVE = None


class TraceSession:
    """Collects the traced runs of one CLI/harness invocation."""

    def __init__(
        self,
        directory: Union[str, Path],
        max_events: Optional[int] = 1_000_000,
        audit: Optional[AuditConfig] = None,
        flight_events: int = 2048,
    ) -> None:
        self.directory = Path(directory)
        self.max_events = max_events
        #: Non-``None`` makes this an audited session: the runner builds
        #: a :class:`FairnessAuditor` per run from this config.
        self.audit = audit
        #: Ring capacity for the per-run flight recorder.
        self.flight_events = flight_events
        self.runs: List[str] = []
        #: Quarantined-cell error records (JSON-ready), in failure order.
        self.errors: List[Dict[str, Any]] = []

    def tracer(self, label: str) -> Tracer:
        """A fresh enabled tracer for one run."""
        return Tracer(self._slug(label), max_events=self.max_events)

    def export_run(
        self,
        tracer: Tracer,
        *,
        dispatch_log: Any = (),
        seed: Optional[int] = None,
        config: Optional[Dict[str, Any]] = None,
        scheduler: Optional[Dict[str, Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
        auditor: Optional[FairnessAuditor] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> Path:
        """Write one run's artifacts; returns the run directory."""
        run_dir = self._unique_dir(tracer.name)
        write_events_jsonl(tracer.events, run_dir / "events.jsonl")
        write_chrome_trace(
            dispatch_log,
            run_dir / "chrome_trace.json",
            trace_events=tracer.events,
            process_name=tracer.name,
            metadata={"run": tracer.name},
        )
        counters = tracer.registry.snapshot()
        counters["trace.events"] = len(tracer.events)
        counters["trace.dropped_events"] = tracer.dropped_events
        if auditor is not None:
            with (run_dir / "audit_report.json").open("w") as fh:
                json.dump(auditor.report(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            write_prometheus(
                tracer.registry,
                run_dir / "metrics.prom",
                labels={"run": tracer.name},
            )
        if flight is not None and flight.dumps:
            flight.write(run_dir / "flight_recorder.json")
        write_manifest(
            run_dir / "manifest.json",
            name=tracer.name,
            seed=seed,
            config=config,
            scheduler=scheduler,
            counters=counters,
            extra=extra,
        )
        self.runs.append(run_dir.name)
        return run_dir

    def export_cached_run(
        self,
        label: str,
        *,
        key: str,
        cell: Any = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Record a run served from the content-addressed cache.

        No simulation executed, so there are no events or occupancy to
        export; honesty demands the provenance record say exactly that.
        The run directory gets a ``manifest.json`` whose ``cache`` block
        carries the hit status and the content key, and (when the cell
        exposes them) the config/seed the cached result corresponds to.
        """
        run_dir = self._unique_dir(self._slug(f"{label}--cached"))
        config = getattr(cell, "config", None)
        manifest_extra: Dict[str, Any] = {
            "cache": {"status": "hit", "key": key}
        }
        if extra:
            manifest_extra.update(extra)
        write_manifest(
            run_dir / "manifest.json",
            name=run_dir.name,
            seed=getattr(config, "seed", None),
            config=dataclasses.asdict(config)
            if dataclasses.is_dataclass(config) and not isinstance(config, type)
            else None,
            extra=manifest_extra,
        )
        self.runs.append(run_dir.name)
        return run_dir

    def export_failed_cell(self, failure: Any, *, cell: Any = None) -> Path:
        """Record a quarantined cell (see :mod:`repro.parallel.engine`).

        The failed run's directory gets a ``manifest.json`` whose
        ``errors`` block carries the failure record -- cell index, label,
        exception type/message, attempts -- so a degraded suite leaves an
        attributable paper trail next to its successful runs.
        """
        record = failure.as_dict() if hasattr(failure, "as_dict") else dict(failure)
        run_dir = self._unique_dir(self._slug(f"{record.get('label', 'cell')}--failed"))
        config = getattr(cell, "config", None)
        write_manifest(
            run_dir / "manifest.json",
            name=run_dir.name,
            seed=getattr(config, "seed", None),
            config=dataclasses.asdict(config)
            if dataclasses.is_dataclass(config) and not isinstance(config, type)
            else None,
            extra={"errors": [record]},
        )
        self.errors.append(record)
        self.runs.append(run_dir.name)
        return run_dir

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _slug(label: str) -> str:
        return re.sub(r"[^A-Za-z0-9._+-]+", "-", label).strip("-") or "run"

    def _unique_dir(self, name: str) -> Path:
        run_dir = self.directory / name
        suffix = 1
        while run_dir.exists():
            suffix += 1
            run_dir = self.directory / f"{name}-{suffix}"
        run_dir.mkdir(parents=True)
        return run_dir


@contextlib.contextmanager
def trace_session(
    directory: Union[str, Path],
    max_events: Optional[int] = 1_000_000,
    audit: Optional[AuditConfig] = None,
    flight_events: int = 2048,
) -> Iterator[TraceSession]:
    """Activate a :class:`TraceSession` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    session = TraceSession(
        directory, max_events=max_events, audit=audit, flight_events=flight_events
    )
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
