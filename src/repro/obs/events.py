"""Typed scheduler-decision trace events.

The paper's argument is about *why* a scheduler dispatches what it
dispatches -- virtual-time tags, eligibility windows, the 2DFQ stagger,
estimate error under 2DFQ^E -- yet service curves and dispatch logs only
record *outcomes*.  A :class:`TraceEvent` records the decision state at
the moment it was used, so a failing fairness or differential test can
be replayed tag by tag.

Event taxonomy (the ``kind`` field; see DESIGN.md §9):

``enqueue``
    A request joined its tenant's queue.  Carries the tenant's start tag
    after any Figure 7 fast-forward, the tenant queue depth, and the
    global backlog.
``select``
    A dequeue decision was made for one worker thread.  Carries the
    chosen tenant's start/finish tags, the eligibility-set size at the
    moment of choice, the thread's stagger offset (2DFQ), whether the
    work-conserving fallback fired, and whether the indexed or the
    linear selection path ran.
``dispatch``
    The chosen request was charged and handed to the thread.  Carries
    the estimate charged (``l_r``) and the tenant's start tag after the
    charge (Figure 7, lines 22-24).
``complete``
    Retroactive charging reconciled a finished request (paper §5).
    Carries charged vs actual cost and the resulting estimate error.
``vt_update``
    The virtual clock's slope or a tenant's start tag moved outside the
    dispatch path: tenant activation/deactivation (weight changes) and
    refresh charging.
``estimate``
    A cost estimator absorbed a completed request's measured cost
    (``observe``); carries the old and new per-(tenant, API) estimates.
``cancel``
    A queued or running request was removed before completion (client
    deadline, worker crash) and its charges refunded.  Carries whether
    the request was running and the backlog after removal.
``fault``
    The fault injector (:mod:`repro.faults`) perturbed the run: worker
    slowdown/stall window edges, crashes and restarts, deadline
    expiries, retries, abandonments.  ``data["fault"]`` names the kind.
``invariant``
    The runtime watchdog (:mod:`repro.validate`) observed a scheduler
    invariant violation.  Carries the invariant code and the event
    context at the moment of the check.
``audit``
    An online fairness monitor (:mod:`repro.obs.audit`) tripped or
    cleared a threshold: per-tenant service lag vs the GPS reference,
    the Fig-5/9 bursty-allocation pattern, or estimator-error drift
    under 2DFQ^E.  ``data["monitor"]`` names the monitor.
``route``
    A fleet router (:mod:`repro.fleet`) placed -- or refused -- a
    request: which server won, under which policy, over how many
    healthy candidates, and whether admission control accepted it.
    Rejections carry ``accepted=False`` plus a ``reason``.

Every event also records the simulated wallclock ``t`` and the system
virtual time ``vt`` at emission, so virtual- and wall-time views line up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "EVENT_KINDS",
    "ENQUEUE",
    "SELECT",
    "DISPATCH",
    "COMPLETE",
    "VT_UPDATE",
    "ESTIMATE",
    "CANCEL",
    "FAULT",
    "INVARIANT",
    "AUDIT",
    "ROUTE",
    "TraceEvent",
]

ENQUEUE = "enqueue"
SELECT = "select"
DISPATCH = "dispatch"
COMPLETE = "complete"
VT_UPDATE = "vt_update"
ESTIMATE = "estimate"
CANCEL = "cancel"
FAULT = "fault"
INVARIANT = "invariant"
AUDIT = "audit"
ROUTE = "route"

#: The closed event taxonomy; exporters and tests validate against it.
EVENT_KINDS: Tuple[str, ...] = (
    ENQUEUE,
    SELECT,
    DISPATCH,
    COMPLETE,
    VT_UPDATE,
    ESTIMATE,
    CANCEL,
    FAULT,
    INVARIANT,
    AUDIT,
    ROUTE,
)


@dataclass
class TraceEvent:
    """One scheduler-decision event.

    ``data`` holds the kind-specific payload (tags, eligibility counts,
    estimates); the four header fields are shared by every kind.
    """

    kind: str
    t: float
    vt: Optional[float]
    tenant: Optional[str]
    data: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to one JSON-ready dict (header fields first)."""
        out: Dict[str, Any] = {"kind": self.kind, "t": self.t}
        if self.vt is not None:
            out["vt"] = self.vt
        if self.tenant is not None:
            out["tenant"] = self.tenant
        out.update(self.data)
        return out
