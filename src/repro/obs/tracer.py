"""Scheduler-decision tracer.

One :class:`Tracer` collects the typed events of one run (see
:mod:`repro.obs.events` for the taxonomy) plus a
:class:`~repro.obs.registry.MetricsRegistry` of named counters shared by
every instrumented component of that run.

Overhead contract
-----------------
Tracing must cost (close to) nothing when off.  Instrumented components
hold a ``_trace`` attribute that is either ``None`` or an *enabled*
tracer, and every instrumentation site is guarded by a single attribute
check::

    trace = self._trace
    if trace is not None:
        trace.select(...)

``attach_tracer`` enforces the invariant: attaching ``None`` or a
disabled tracer stores ``None``, so the disabled mode is exactly one
``is not None`` test per instrumented operation.  The hot-path benchmark
(``benchmarks/test_bench_perf_hotpath.py``) asserts this stays under 5%
of dequeue throughput.

When enabled, emission is one dataclass construction and a list append;
``max_events`` bounds memory for long runs (overflow is counted, not
silently ignored).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from .events import (
    AUDIT,
    CANCEL,
    COMPLETE,
    DISPATCH,
    ENQUEUE,
    ESTIMATE,
    FAULT,
    INVARIANT,
    ROUTE,
    SELECT,
    VT_UPDATE,
    TraceEvent,
)
from .registry import MetricsRegistry

__all__ = ["Tracer"]


class Tracer:
    """Collects the decision events and counters of one traced run.

    Parameters
    ----------
    name:
        Label for the run (used by exporters and manifests).
    enabled:
        A disabled tracer refuses attachment (components keep their
        ``None`` fast path) and drops any direct ``emit`` call.
    max_events:
        Hard cap on retained events; further emissions only increment
        ``dropped_events``.  ``None`` (default) keeps everything.

    Streaming consumers -- the online fairness auditor and the flight
    recorder -- register as *sinks* (:meth:`add_sink`) and see every
    emitted event, including those dropped from the retained list once
    ``max_events`` overflows: bounded consumers must keep working
    precisely on the runs too long to retain in full.
    """

    __slots__ = (
        "name",
        "enabled",
        "events",
        "registry",
        "dropped_events",
        "_max",
        "_sinks",
    )

    def __init__(
        self,
        name: str = "trace",
        enabled: bool = True,
        max_events: Optional[int] = None,
    ) -> None:
        self.name = name
        self.enabled = bool(enabled)
        self.events: List[TraceEvent] = []
        self.registry = MetricsRegistry()
        self.dropped_events = 0
        self._max = max_events
        self._sinks: List[Callable[[TraceEvent], None]] = []

    # -- emission --------------------------------------------------------------

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        """Register a streaming consumer called with every emitted event.

        Sinks run synchronously at emission, before the retained-list
        append, and are *not* subject to ``max_events``.  A sink that
        emits events of its own (the auditor does) re-enters ``emit``;
        sinks must therefore ignore the kinds they produce.
        """
        self._sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        """Append one event (respects ``enabled`` and ``max_events``)."""
        if not self.enabled:
            return
        for sink in self._sinks:
            sink(event)
        if self._max is not None and len(self.events) >= self._max:
            self.dropped_events += 1
            return
        self.events.append(event)

    # Typed emitters: thin wrappers that fix the ``kind`` and name the
    # payload fields, so instrumentation sites read like the taxonomy.

    def enqueue(
        self,
        t: float,
        vt: float,
        tenant: str,
        *,
        seqno: int,
        api: str,
        cost: float,
        start_tag: float,
        queue_depth: int,
        backlog: int,
    ) -> None:
        self.emit(
            TraceEvent(
                ENQUEUE,
                t,
                vt,
                tenant,
                {
                    "seqno": seqno,
                    "api": api,
                    "cost": cost,
                    "start_tag": start_tag,
                    "queue_depth": queue_depth,
                    "backlog": backlog,
                },
            )
        )

    def select(
        self,
        t: float,
        vt: float,
        tenant: str,
        *,
        thread: int,
        policy: str,
        start_tag: float,
        finish_tag: float,
        eligible: int,
        backlogged: int,
        fallback: bool,
        stagger: float,
        indexed: bool,
    ) -> None:
        self.emit(
            TraceEvent(
                SELECT,
                t,
                vt,
                tenant,
                {
                    "thread": thread,
                    "policy": policy,
                    "start_tag": start_tag,
                    "finish_tag": finish_tag,
                    "eligible": eligible,
                    "backlogged": backlogged,
                    "fallback": fallback,
                    "stagger": stagger,
                    "indexed": indexed,
                },
            )
        )

    def dispatch(
        self,
        t: float,
        vt: float,
        tenant: str,
        *,
        seqno: int,
        api: str,
        thread: int,
        estimate: float,
        start_tag_after: float,
        backlog: int,
    ) -> None:
        self.registry.counter("scheduler.dispatches").inc()
        self.emit(
            TraceEvent(
                DISPATCH,
                t,
                vt,
                tenant,
                {
                    "seqno": seqno,
                    "api": api,
                    "thread": thread,
                    "estimate": estimate,
                    "start_tag_after": start_tag_after,
                    "backlog": backlog,
                },
            )
        )

    def complete(
        self,
        t: float,
        vt: float,
        tenant: str,
        *,
        seqno: int,
        api: str,
        actual: float,
        charged: float,
        start_tag_after: float,
        running: int,
    ) -> None:
        self.registry.counter("scheduler.completions").inc()
        self.emit(
            TraceEvent(
                COMPLETE,
                t,
                vt,
                tenant,
                {
                    "seqno": seqno,
                    "api": api,
                    "actual": actual,
                    "charged": charged,
                    "error": charged - actual,
                    "start_tag_after": start_tag_after,
                    "running": running,
                },
            )
        )

    def vt_update(
        self,
        t: float,
        vt: float,
        tenant: Optional[str],
        *,
        reason: str,
        **fields: Any,
    ) -> None:
        data = {"reason": reason}
        data.update(fields)
        self.emit(TraceEvent(VT_UPDATE, t, vt, tenant, data))

    def cancel(
        self,
        t: float,
        vt: Optional[float],
        tenant: str,
        *,
        seqno: int,
        api: str,
        was_running: bool,
        backlog: int,
    ) -> None:
        self.registry.counter("scheduler.cancellations").inc()
        self.emit(
            TraceEvent(
                CANCEL,
                t,
                vt,
                tenant,
                {
                    "seqno": seqno,
                    "api": api,
                    "was_running": was_running,
                    "backlog": backlog,
                },
            )
        )

    def fault(
        self,
        t: float,
        fault: str,
        *,
        tenant: Optional[str] = None,
        **fields: Any,
    ) -> None:
        self.registry.counter(f"faults.{fault}").inc()
        data = {"fault": fault}
        data.update(fields)
        self.emit(TraceEvent(FAULT, t, None, tenant, data))

    def invariant(
        self,
        t: float,
        code: str,
        *,
        vt: Optional[float] = None,
        tenant: Optional[str] = None,
        **fields: Any,
    ) -> None:
        self.registry.counter("validate.violations").inc()
        data = {"code": code}
        data.update(fields)
        self.emit(TraceEvent(INVARIANT, t, vt, tenant, data))

    def estimate(
        self,
        t: float,
        tenant: str,
        *,
        api: str,
        old: Optional[float],
        new: float,
        actual: float,
    ) -> None:
        self.registry.counter("estimator.refreshes").inc()
        self.emit(
            TraceEvent(
                ESTIMATE,
                t,
                None,
                tenant,
                {"api": api, "old": old, "new": new, "actual": actual},
            )
        )

    def route(
        self,
        t: float,
        tenant: str,
        *,
        seqno: int,
        server: Optional[int],
        policy: str,
        healthy: int,
        backlog: int,
        accepted: bool,
        reason: Optional[str] = None,
    ) -> None:
        """One fleet routing decision: request ``seqno`` placed on
        ``server`` (or refused -- ``accepted=False`` with a ``reason``
        and ``server=None``) by router ``policy`` choosing among
        ``healthy`` routable servers with ``backlog`` requests queued
        fleet-wide at decision time."""
        self.registry.counter("fleet.route_decisions").inc()
        if not accepted:
            self.registry.counter("fleet.rejections").inc()
        data = {
            "seqno": seqno,
            "server": server,
            "policy": policy,
            "healthy": healthy,
            "backlog": backlog,
            "accepted": accepted,
        }
        if reason is not None:
            data["reason"] = reason
        self.emit(TraceEvent(ROUTE, t, None, tenant, data))

    def audit(
        self,
        t: float,
        monitor: str,
        *,
        vt: Optional[float] = None,
        tenant: Optional[str] = None,
        **fields: Any,
    ) -> None:
        self.registry.counter(f"audit.{monitor}").inc()
        data = {"monitor": monitor}
        data.update(fields)
        self.emit(TraceEvent(AUDIT, t, vt, tenant, data))

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def __repr__(self) -> str:
        return (
            f"Tracer({self.name!r}, enabled={self.enabled}, "
            f"events={len(self.events)})"
        )
