"""Online fairness auditor: streaming monitors over the event stream.

Where :mod:`repro.obs.spans` explains a run *after the fact*, the
auditor watches it *as it happens*.  A :class:`FairnessAuditor` attaches
to a run twice -- as a tracer sink (every decision event) and as a
:class:`~repro.metrics.collector.MetricsCollector` sample hook (the
periodic per-tenant actual-vs-GPS service totals) -- and keeps three
incremental monitors:

``lag``
    Per-tenant service lag behind the GPS fluid reference, normalised to
    seconds at the tenant's fair rate.  A tenant more than
    ``lag_threshold_seconds`` behind trips the monitor; hysteresis (the
    clear threshold is half the trip threshold) stops flapping.

``bursty``
    The Fig-5/9 oscillation detector.  Per tenant, the service received
    in each sample interval goes into a sliding window, *gated on the
    tenant being continuously backlogged* (an open-loop tenant that
    simply has nothing queued is idle, not mistreated).  A backlogged
    tenant served in on/off bursts shows high window variance; the
    monitor trips when the coefficient of variation (std/mean) exceeds
    ``burst_cov_threshold`` for ``burst_consecutive`` windows in a row.
    Under 2DFQ small requests get smooth allocations and the CoV stays
    low; under WFQ/WF²Q the same workload oscillates (paper Figs 5, 9).

``estimator_drift``
    For 2DFQ^E: an exponentially-weighted mean of the relative charge
    error ``|charged - actual| / actual`` from ``complete`` events.
    Persistent drift above ``drift_threshold`` means the pessimistic
    estimator is systematically mis-charging and the schedule no longer
    reflects real costs.

Each trip/clear emits a structured ``audit`` trace event and updates
``audit.*`` gauges in the run's registry, so the Prometheus exporter and
the flight recorder see monitor state with no extra wiring.  All state
is O(tenants · window): the auditor works unchanged on streaming-mode
runs whose full event list is never retained.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from .events import CANCEL, COMPLETE, DISPATCH, ENQUEUE, TraceEvent
from .tracer import Tracer

__all__ = ["AuditConfig", "FairnessAuditor"]


@dataclass
class AuditConfig:
    """Thresholds for the online monitors.

    ``capacity`` (total service rate, threads x rate) is needed to turn
    GPS service deficits into seconds of lag; leave it ``None`` to have
    the runner fill it from the experiment config at attach time.
    """

    capacity: Optional[float] = None
    # -- lag monitor --
    lag_threshold_seconds: float = 0.25
    # -- bursty monitor --
    burst_window: int = 10
    burst_cov_threshold: float = 1.0
    burst_consecutive: int = 3
    # -- estimator-drift monitor --
    drift_threshold: float = 0.5
    drift_min_observations: int = 50
    drift_alpha: float = 0.05


class _TenantState:
    """Per-tenant incremental monitor state."""

    __slots__ = (
        "queued",
        "backlogged_since",
        "last_actual",
        "window",
        "burst_streak",
        "lag_tripped",
        "bursty_tripped",
    )

    def __init__(self) -> None:
        self.queued = 0
        self.backlogged_since: Optional[float] = None
        self.last_actual = 0.0
        self.window: Deque[float] = deque()
        self.burst_streak = 0
        self.lag_tripped = False
        self.bursty_tripped = False


class FairnessAuditor:
    """Streaming fairness monitors over one run.

    Attach with ``tracer.add_sink(auditor.on_event)`` and
    ``collector.attach_auditor(auditor)``; read :meth:`report` at the
    end of the run.  The auditor never raises into the hot path and
    emits its findings as ``audit`` events through the tracer it was
    built with (it ignores those events when they come back through the
    sink).
    """

    def __init__(
        self, config: Optional[AuditConfig] = None, tracer: Optional[Tracer] = None
    ) -> None:
        self.config = config if config is not None else AuditConfig()
        self._tracer = tracer
        self._tenants: Dict[str, _TenantState] = {}
        self._samples = 0
        self._last_sample_t: Optional[float] = None
        # estimator-drift EWMA over relative charge error
        self._drift_ewma = 0.0
        self._drift_observations = 0
        self._drift_tripped = False
        #: Structured record of every trip/clear, in order.
        self.trips: List[Dict[str, Any]] = []

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Set (or clear) the tracer that receives ``audit`` events and
        ``audit.*`` gauges.  Same convention as the other instrumented
        components: a disabled tracer stores ``None``."""
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    # -- event sink ------------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        """Tracer sink: track backlog membership and charge error."""
        kind = event.kind
        if kind == ENQUEUE:
            state = self._state(event.tenant)
            state.queued += 1
            if state.queued == 1:
                state.backlogged_since = event.t
        elif kind == DISPATCH:
            state = self._state(event.tenant)
            # Dispatch removes the request from the queue but the tenant
            # stays backlogged for burst purposes while work is in
            # flight; only an empty queue with nothing new arriving ends
            # the backlogged period, which the sample hook re-checks.
            if state.queued > 0:
                state.queued -= 1
            if state.queued == 0:
                state.backlogged_since = None
        elif kind == CANCEL:
            if not event.data.get("was_running", False):
                state = self._state(event.tenant)
                if state.queued > 0:
                    state.queued -= 1
                if state.queued == 0:
                    state.backlogged_since = None
        elif kind == COMPLETE:
            actual = event.data.get("actual", 0.0)
            charged = event.data.get("charged", actual)
            if actual > 0.0:
                rel_error = abs(charged - actual) / actual
                alpha = self.config.drift_alpha
                self._drift_ewma += alpha * (rel_error - self._drift_ewma)
                self._drift_observations += 1
                self._check_drift(event.t)
        # audit/fault/invariant/select/vt_update/estimate: not consumed.

    # -- sample hook -----------------------------------------------------------

    def on_sample(
        self, now: float, actual: Dict[str, float], gps: Dict[str, float]
    ) -> None:
        """Collector hook: one per-tenant service sample (both modes)."""
        self._samples += 1
        interval = (
            now - self._last_sample_t if self._last_sample_t is not None else None
        )
        self._last_sample_t = now
        fair_rate = self._fair_rate(len(actual))
        for tenant in sorted(actual):
            state = self._state(tenant)
            served = actual[tenant]
            delta = served - state.last_actual
            state.last_actual = served
            self._check_lag(now, tenant, state, served, gps.get(tenant, 0.0), fair_rate)
            self._update_burst_window(now, tenant, state, delta, interval)
        self._export_gauges()

    # -- monitors --------------------------------------------------------------

    def _check_lag(
        self,
        now: float,
        tenant: str,
        state: _TenantState,
        served: float,
        gps_service: float,
        fair_rate: float,
    ) -> None:
        if fair_rate <= 0.0:
            return
        lag_seconds = max(0.0, gps_service - served) / fair_rate
        threshold = self.config.lag_threshold_seconds
        if not state.lag_tripped and lag_seconds > threshold:
            state.lag_tripped = True
            self._record(
                now,
                "lag",
                tenant,
                tripped=True,
                lag_seconds=lag_seconds,
                threshold=threshold,
            )
        elif state.lag_tripped and lag_seconds < threshold / 2.0:
            state.lag_tripped = False
            self._record(
                now, "lag", tenant, tripped=False, lag_seconds=lag_seconds
            )

    def _update_burst_window(
        self,
        now: float,
        tenant: str,
        state: _TenantState,
        delta: float,
        interval: Optional[float],
    ) -> None:
        cfg = self.config
        # Gate on the tenant having been backlogged for the whole
        # interval: bursty *arrivals* are the workload's business, only
        # bursty *allocations to a continuously backlogged tenant* are
        # the scheduler's (paper Figs 5, 9).
        backlogged_all_interval = (
            interval is not None
            and state.backlogged_since is not None
            and state.backlogged_since <= now - interval + 1e-12
        )
        if not backlogged_all_interval:
            state.window.clear()
            state.burst_streak = 0
            if state.bursty_tripped:
                state.bursty_tripped = False
                self._record(now, "bursty", tenant, tripped=False, cov=0.0)
            return
        state.window.append(delta)
        if len(state.window) > cfg.burst_window:
            state.window.popleft()
        if len(state.window) < cfg.burst_window:
            return
        mean = sum(state.window) / len(state.window)
        if mean <= 0.0:
            return
        variance = sum((x - mean) ** 2 for x in state.window) / len(state.window)
        cov = math.sqrt(variance) / mean
        if cov > cfg.burst_cov_threshold:
            state.burst_streak += 1
        else:
            state.burst_streak = 0
            if state.bursty_tripped:
                state.bursty_tripped = False
                self._record(now, "bursty", tenant, tripped=False, cov=cov)
        if not state.bursty_tripped and state.burst_streak >= cfg.burst_consecutive:
            state.bursty_tripped = True
            self._record(
                now,
                "bursty",
                tenant,
                tripped=True,
                cov=cov,
                threshold=cfg.burst_cov_threshold,
                window=cfg.burst_window,
            )

    def _check_drift(self, now: float) -> None:
        cfg = self.config
        if self._drift_observations < cfg.drift_min_observations:
            return
        if not self._drift_tripped and self._drift_ewma > cfg.drift_threshold:
            self._drift_tripped = True
            self._record(
                now,
                "estimator_drift",
                None,
                tripped=True,
                ewma=self._drift_ewma,
                threshold=cfg.drift_threshold,
            )
        elif self._drift_tripped and self._drift_ewma < cfg.drift_threshold / 2.0:
            self._drift_tripped = False
            self._record(
                now, "estimator_drift", None, tripped=False, ewma=self._drift_ewma
            )

    # -- plumbing --------------------------------------------------------------

    def _state(self, tenant: Optional[str]) -> _TenantState:
        key = tenant if tenant is not None else "?"
        state = self._tenants.get(key)
        if state is None:
            state = self._tenants[key] = _TenantState()
        return state

    def _fair_rate(self, active_tenants: int) -> float:
        capacity = self.config.capacity
        if capacity is None or active_tenants <= 0:
            return 0.0
        return capacity / active_tenants

    def _record(
        self,
        now: float,
        monitor: str,
        tenant: Optional[str],
        *,
        tripped: bool,
        **fields: Any,
    ) -> None:
        entry: Dict[str, Any] = {
            "t": now,
            "monitor": monitor,
            "tenant": tenant,
            "tripped": tripped,
        }
        entry.update(fields)
        self.trips.append(entry)
        if self._tracer is not None:
            self._tracer.audit(now, monitor, tenant=tenant, tripped=tripped, **fields)

    def _export_gauges(self) -> None:
        if self._tracer is None:
            return
        registry = self._tracer.registry
        registry.gauge("audit.samples").set(float(self._samples))
        registry.gauge("audit.tenants_lagging").set(
            float(sum(1 for s in self._tenants.values() if s.lag_tripped))
        )
        registry.gauge("audit.tenants_bursty").set(
            float(sum(1 for s in self._tenants.values() if s.bursty_tripped))
        )
        registry.gauge("audit.estimator_drift_ewma").set(self._drift_ewma)

    # -- reporting -------------------------------------------------------------

    def tripped_tenants(self, monitor: str) -> List[str]:
        """Tenants whose ``monitor`` is currently tripped (sorted)."""
        if monitor == "lag":
            return sorted(
                t for t, s in self._tenants.items() if s.lag_tripped
            )
        if monitor == "bursty":
            return sorted(
                t for t, s in self._tenants.items() if s.bursty_tripped
            )
        raise ValueError(f"unknown per-tenant monitor {monitor!r}")

    def ever_tripped(self, monitor: str) -> List[str]:
        """Tenants that tripped ``monitor`` at any point (sorted)."""
        seen = {
            entry["tenant"]
            for entry in self.trips
            if entry["monitor"] == monitor
            and entry["tripped"]
            and entry["tenant"] is not None
        }
        return sorted(seen)

    def report(self) -> Dict[str, Any]:
        """JSON-ready summary of the whole run's audit state."""
        return {
            "samples": self._samples,
            "monitors": {
                "lag": {
                    "threshold_seconds": self.config.lag_threshold_seconds,
                    "currently_tripped": self.tripped_tenants("lag"),
                    "ever_tripped": self.ever_tripped("lag"),
                },
                "bursty": {
                    "window": self.config.burst_window,
                    "cov_threshold": self.config.burst_cov_threshold,
                    "currently_tripped": self.tripped_tenants("bursty"),
                    "ever_tripped": self.ever_tripped("bursty"),
                },
                "estimator_drift": {
                    "threshold": self.config.drift_threshold,
                    "ewma": self._drift_ewma,
                    "observations": self._drift_observations,
                    "tripped": self._drift_tripped,
                },
            },
            "trips": list(self.trips),
        }
