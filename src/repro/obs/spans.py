"""Request-lifecycle spans derived from the decision-event stream.

The tracer records *decisions* (enqueue, select, dispatch, complete,
cancel); this module folds them into per-request **spans** that answer
the paper's explanatory question directly: *why did this request wait?*
Each span carries its full lifecycle (possibly multiple attempts, when a
worker crash forced a re-dispatch) and a **wait-time decomposition**:
the queueing interval is partitioned at the occupancy boundaries of the
thread the request eventually ran on, attributing every sub-interval to
the specific request that was holding that thread -- head-of-line
blocking attribution ("small request 17 of A waited behind request 4 of
B for 3.0s") -- or to thread idleness (only possible around worker
crashes/stalls).

The decomposition is exact by construction and the property tests pin
it across every scheduler: for each completed request,

    sum(blocking interval durations) == wait        (queueing delay)
    wait + service                   == latency

Spans are pure derivation -- nothing here runs during the simulation;
feed :func:`build_spans` a tracer's events or a parsed ``events.jsonl``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .events import CANCEL, COMPLETE, DISPATCH, ENQUEUE

__all__ = [
    "BlockingInterval",
    "Attempt",
    "RequestSpan",
    "SpanSet",
    "build_spans",
    "spans_from_jsonl",
]


@dataclass(frozen=True)
class BlockingInterval:
    """One attributed sub-interval of a request's queueing delay.

    ``kind`` is ``"running"`` (the thread was executing ``blocker_seqno``
    of ``blocker_tenant``) or ``"idle"`` (the thread had no occupant --
    crash/stall windows; never happens on a healthy work-conserving
    run).
    """

    start: float
    end: float
    kind: str
    thread: Optional[int] = None
    blocker_seqno: Optional[int] = None
    blocker_tenant: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
        }
        if self.thread is not None:
            out["thread"] = self.thread
        if self.blocker_seqno is not None:
            out["blocker_seqno"] = self.blocker_seqno
            out["blocker_tenant"] = self.blocker_tenant
        return out


@dataclass
class Attempt:
    """One enqueue->(dispatch->)end cycle of a request.

    A request normally has exactly one attempt; a worker crash cancels
    the running attempt (charge refunded) and re-enqueues the request,
    opening a new one.
    """

    enqueue_t: float
    dispatch_t: Optional[float] = None
    end_t: Optional[float] = None
    thread: Optional[int] = None
    estimate: Optional[float] = None
    outcome: str = "queued"  # queued | running | completed | cancelled
    blocking: List[BlockingInterval] = field(default_factory=list)

    @property
    def wait(self) -> float:
        """Queueing delay of this attempt (0 while still queued)."""
        if self.dispatch_t is not None:
            return self.dispatch_t - self.enqueue_t
        if self.end_t is not None:  # cancelled while queued
            return self.end_t - self.enqueue_t
        return 0.0

    @property
    def service(self) -> float:
        """Thread time consumed by this attempt (0 if never dispatched)."""
        if self.dispatch_t is None or self.end_t is None:
            return 0.0
        return self.end_t - self.dispatch_t


@dataclass
class RequestSpan:
    """The reconstructed lifecycle of one request (by global seqno)."""

    tenant: str
    seqno: int
    api: str
    cost: float
    attempts: List[Attempt] = field(default_factory=list)

    @property
    def enqueue_t(self) -> float:
        return self.attempts[0].enqueue_t

    @property
    def end_t(self) -> Optional[float]:
        return self.attempts[-1].end_t

    @property
    def outcome(self) -> str:
        return self.attempts[-1].outcome

    @property
    def wait(self) -> float:
        """Total queueing delay across attempts."""
        return sum(attempt.wait for attempt in self.attempts)

    @property
    def service(self) -> float:
        """Total thread time across attempts (crash-lost work included)."""
        return sum(attempt.service for attempt in self.attempts)

    @property
    def latency(self) -> Optional[float]:
        """End-to-end first-enqueue to completion; ``None`` unless the
        span completed."""
        if self.outcome != "completed" or self.end_t is None:
            return None
        return self.end_t - self.enqueue_t

    @property
    def blocking(self) -> List[BlockingInterval]:
        return [b for attempt in self.attempts for b in attempt.blocking]

    def blocked_by_tenant(self) -> Dict[str, float]:
        """Seconds of queueing delay attributed to each blocking tenant
        (the ``"idle"`` remainder under the ``None``-free key ``"-"``)."""
        out: Dict[str, float] = {}
        for interval in self.blocking:
            key = interval.blocker_tenant if interval.kind == "running" else "-"
            out[key] = out.get(key, 0.0) + interval.duration
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "seqno": self.seqno,
            "api": self.api,
            "cost": self.cost,
            "outcome": self.outcome,
            "enqueue_t": self.enqueue_t,
            "end_t": self.end_t,
            "wait": self.wait,
            "service": self.service,
            "latency": self.latency,
            "attempts": len(self.attempts),
            "blocking": [b.as_dict() for b in self.blocking],
        }


class SpanSet:
    """All spans of one run, with head-of-line aggregation helpers."""

    def __init__(self, spans: List[RequestSpan]) -> None:
        self.spans = spans
        self.by_seqno: Dict[int, RequestSpan] = {s.seqno: s for s in spans}

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[RequestSpan]:
        return iter(self.spans)

    def completed(self) -> List[RequestSpan]:
        return [s for s in self.spans if s.outcome == "completed"]

    def hol_report(self, top: int = 10) -> List[Dict[str, Any]]:
        """Aggregate head-of-line blocking: per blocking tenant, the
        total seconds of queueing delay it imposed on *other* tenants
        and how many of their requests it blocked -- the quantitative
        form of the paper's "small requests wait behind expensive ones"
        claim, ranked worst first."""
        blocked_seconds: Dict[str, float] = {}
        victims: Dict[str, Set[int]] = {}
        for span in self.spans:
            for interval in span.blocking:
                blocker = interval.blocker_tenant
                if interval.kind != "running" or blocker is None:
                    continue
                if blocker == span.tenant:
                    continue
                blocked_seconds[blocker] = (
                    blocked_seconds.get(blocker, 0.0) + interval.duration
                )
                victims.setdefault(blocker, set()).add(span.seqno)
        rows = [
            {
                "tenant": tenant,
                "blocked_seconds": seconds,
                "victim_requests": len(victims[tenant]),
            }
            for tenant, seconds in blocked_seconds.items()
        ]
        rows.sort(key=lambda r: (-r["blocked_seconds"], r["tenant"]))
        return rows[:top]

    def summary(self) -> Dict[str, Any]:
        """JSON-ready roll-up for manifests and audit reports."""
        completed = self.completed()
        return {
            "requests": len(self.spans),
            "completed": len(completed),
            "cancelled": sum(1 for s in self.spans if s.outcome == "cancelled"),
            "redispatched": sum(1 for s in self.spans if len(s.attempts) > 1),
            "total_wait": sum(s.wait for s in self.spans),
            "total_service": sum(s.service for s in self.spans),
            "hol_blocking": self.hol_report(),
        }


# -- construction ---------------------------------------------------------------


def _event_fields(event: Any) -> Dict[str, Any]:
    """Flatten a :class:`TraceEvent` or an ``events.jsonl`` dict."""
    if hasattr(event, "as_dict"):
        return event.as_dict()
    return event


@dataclass
class _Occupancy:
    """One request's tenure on one thread (open until end is set)."""

    start: float
    seqno: int
    tenant: str
    end: Optional[float] = None


def build_spans(events: Iterable[Any]) -> SpanSet:
    """Fold a decision-event stream into request spans with exact
    blocking attribution.

    Accepts :class:`~repro.obs.events.TraceEvent` objects or the plain
    dicts of an ``events.jsonl`` stream, in emission order.  Events of
    kinds other than enqueue/dispatch/complete/cancel are ignored, so a
    full mixed stream can be passed as-is.
    """
    spans: Dict[int, RequestSpan] = {}
    order: List[int] = []
    #: Per-thread occupancy history, in dispatch order.
    occupancy: Dict[int, List[_Occupancy]] = {}
    #: seqno -> its currently open occupancy (for close-out).
    open_occupancy: Dict[int, _Occupancy] = {}

    for raw in events:
        record = _event_fields(raw)
        kind = record.get("kind")
        if kind == ENQUEUE:
            seqno = record["seqno"]
            span = spans.get(seqno)
            if span is None:
                span = RequestSpan(
                    tenant=record.get("tenant", "?"),
                    seqno=seqno,
                    api=record.get("api", ""),
                    cost=record.get("cost", 0.0),
                )
                spans[seqno] = span
                order.append(seqno)
            span.attempts.append(Attempt(enqueue_t=record["t"]))
        elif kind == DISPATCH:
            span = spans.get(record["seqno"])
            if span is None or not span.attempts:
                continue  # trace started mid-run; no enqueue seen
            attempt = span.attempts[-1]
            attempt.dispatch_t = record["t"]
            attempt.thread = record.get("thread")
            attempt.estimate = record.get("estimate")
            attempt.outcome = "running"
            if attempt.thread is not None:
                occ = _Occupancy(
                    start=record["t"], seqno=span.seqno, tenant=span.tenant
                )
                occupancy.setdefault(attempt.thread, []).append(occ)
                open_occupancy[span.seqno] = occ
        elif kind == COMPLETE:
            span = spans.get(record["seqno"])
            if span is None or not span.attempts:
                continue
            attempt = span.attempts[-1]
            attempt.end_t = record["t"]
            attempt.outcome = "completed"
            occ = open_occupancy.pop(span.seqno, None)
            if occ is not None:
                occ.end = record["t"]
        elif kind == CANCEL:
            span = spans.get(record["seqno"])
            if span is None or not span.attempts:
                continue
            attempt = span.attempts[-1]
            attempt.end_t = record["t"]
            attempt.outcome = "cancelled"
            occ = open_occupancy.pop(span.seqno, None)
            if occ is not None:
                occ.end = record["t"]

    for seqno in order:
        for attempt in spans[seqno].attempts:
            if attempt.thread is not None and attempt.dispatch_t is not None:
                attempt.blocking = _attribute_wait(
                    attempt.enqueue_t,
                    attempt.dispatch_t,
                    attempt.thread,
                    seqno,
                    occupancy.get(attempt.thread, ()),
                )
    return SpanSet([spans[seqno] for seqno in order])


def _attribute_wait(
    enqueue_t: float,
    dispatch_t: float,
    thread: int,
    seqno: int,
    history: Iterable[_Occupancy],
) -> List[BlockingInterval]:
    """Partition ``[enqueue_t, dispatch_t)`` at the occupancy boundaries
    of ``thread``, yielding one interval per blocking request plus idle
    gaps, in time order.  The partition is contiguous (interval ``i``
    ends where ``i+1`` starts), which is what makes the wait sum exact.
    """
    if dispatch_t <= enqueue_t:
        return []
    out: List[BlockingInterval] = []
    cursor = enqueue_t
    for occ in history:
        if occ.seqno == seqno and occ.start >= dispatch_t - 1e-18:
            continue  # the request's own tenure
        end = occ.end if occ.end is not None else dispatch_t
        if end <= cursor or occ.start >= dispatch_t:
            continue
        start = max(occ.start, cursor)
        if start > cursor:
            out.append(
                BlockingInterval(cursor, start, kind="idle", thread=thread)
            )
        clipped_end = min(end, dispatch_t)
        if clipped_end > start:
            out.append(
                BlockingInterval(
                    start,
                    clipped_end,
                    kind="running",
                    thread=thread,
                    blocker_seqno=occ.seqno,
                    blocker_tenant=occ.tenant,
                )
            )
            cursor = clipped_end
        else:
            cursor = start
        if cursor >= dispatch_t:
            break
    if cursor < dispatch_t:
        out.append(
            BlockingInterval(cursor, dispatch_t, kind="idle", thread=thread)
        )
    return out


def spans_from_jsonl(path: Union[str, Path]) -> SpanSet:
    """Build spans straight from an exported ``events.jsonl``."""
    with Path(path).open() as fh:
        return build_spans(json.loads(line) for line in fh if line.strip())
