"""Prometheus text-format exposition for a :class:`MetricsRegistry`.

Renders the registry's instruments in the Prometheus text exposition
format (v0.0.4): counters as ``<ns>_<name>`` with ``# TYPE ... counter``,
gauges likewise, and timers as the conventional pair
``<name>_seconds_total`` (counter) + ``<name>_count`` (counter).  Dotted
registry names become underscore-separated metric names; output is
sorted so snapshots diff cleanly and tests can pin them byte-for-byte.

This is a *snapshot* exporter -- the simulator has no HTTP server to
scrape -- written alongside the manifest so a run's final counters and
auditor gauges land in a format every metrics toolchain already parses.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .registry import MetricsRegistry

__all__ = ["prometheus_text", "write_prometheus"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")


def _metric_name(name: str, namespace: str) -> str:
    """Sanitise a dotted registry name into a Prometheus metric name."""
    flat = _INVALID_CHARS.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if _INVALID_START.match(flat):
        flat = f"_{flat}"
    return flat


def _label_suffix(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    registry: MetricsRegistry,
    *,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render every instrument in the Prometheus text format.

    ``labels`` (e.g. ``{"run": "fig08--wfq"}``) are attached to every
    sample, letting multiple runs' snapshots be concatenated.
    """
    suffix = _label_suffix(labels)
    samples: List[Tuple[str, str, float]] = []  # (metric, type, value)
    for kind, name, instrument in registry.instruments():
        metric = _metric_name(name, namespace)
        if kind == "counter":
            samples.append((metric, "counter", float(instrument.value)))
        elif kind == "gauge":
            samples.append((metric, "gauge", float(instrument.value)))
        else:  # timer -> total-seconds counter + interval count
            samples.append(
                (f"{metric}_seconds_total", "counter", float(instrument.total))
            )
            samples.append((f"{metric}_count", "counter", float(instrument.count)))
    lines: List[str] = []
    for metric, prom_type, value in sorted(samples):
        lines.append(f"# TYPE {metric} {prom_type}")
        lines.append(f"{metric}{suffix} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry,
    path: Union[str, Path],
    *,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> Path:
    """Write :func:`prometheus_text` to ``path`` and return it."""
    target = Path(path)
    target.write_text(
        prometheus_text(registry, namespace=namespace, labels=labels)
    )
    return target
