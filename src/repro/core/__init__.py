"""Core scheduling framework: the 2DFQ contribution and all baselines.

Public surface:

* :class:`Request` -- the unit of work;
* :class:`Scheduler` / :class:`VirtualTimeScheduler` -- extension points
  for custom policies;
* concrete schedulers (``WFQScheduler`` .. ``TwoDFQEScheduler``);
* :func:`make_scheduler` -- registry-based construction.
"""

from .drr import DRRScheduler
from .fifo import FIFOScheduler
from .msf2q import MSF2QScheduler
from .registry import SCHEDULER_CLASSES, make_scheduler, scheduler_names
from .request import Request, RequestPhase
from .round_robin import RoundRobinScheduler
from .scheduler import MIN_COST, Scheduler, TenantState
from .selection import SelectionIndex
from .sfq import SFQScheduler
from .twodfq import TwoDFQEScheduler, TwoDFQScheduler
from .virtual_time import VirtualClock
from .vt_base import VirtualTimeScheduler
from .wf2q import WF2QScheduler
from .wf2qplus import WF2QPlusScheduler
from .wfq import WFQScheduler

__all__ = [
    "Request",
    "RequestPhase",
    "Scheduler",
    "TenantState",
    "VirtualClock",
    "VirtualTimeScheduler",
    "SelectionIndex",
    "MIN_COST",
    "FIFOScheduler",
    "RoundRobinScheduler",
    "WFQScheduler",
    "WF2QScheduler",
    "MSF2QScheduler",
    "SFQScheduler",
    "WF2QPlusScheduler",
    "DRRScheduler",
    "TwoDFQScheduler",
    "TwoDFQEScheduler",
    "make_scheduler",
    "scheduler_names",
    "SCHEDULER_CLASSES",
]
