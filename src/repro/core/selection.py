"""Indexed tenant selection: O(log N) amortized scheduling decisions.

The selection primitives in :mod:`repro.core.vt_base` -- smallest finish
tag, smallest start tag, and the eligibility-gated variants -- are
written as linear scans over the backlogged set.  They are simple and
serve as the reference semantics, but every ``dequeue`` pays O(N) in the
number of backlogged tenants, which caps simulator throughput exactly
where the paper's production regime needs it (hundreds to thousands of
concurrently backlogged tenants; §4 notes tag-based schedulers admit
O(log N) implementations with ordered structures).

:class:`SelectionIndex` maintains the same orderings in binary heaps
with *lazy invalidation*:

* every heap entry snapshots a tenant's selection key -- ``(finish tag,
  head estimate, head seqno)`` or ``(start tag, head estimate, head
  seqno)`` -- together with the tenant's ``sel_version`` at push time;
* whenever a tenant's key may have changed (new head request, start-tag
  movement, estimator update) the scheduler calls :meth:`touch`, which
  bumps ``sel_version`` and pushes fresh entries; superseded entries
  stay in the heaps and are discarded when they surface at the top;
* when a tenant leaves the backlog the scheduler calls :meth:`drop`,
  which only bumps the version -- O(1), no heap surgery.

Eligibility-gated policies (WF2Q, MSF2Q, 2DFQ) use a classic two-heap
arrangement per *stagger offset*: a ``pending`` heap ordered by the
staggered start tag ``S_f - stagger * l_head`` and a ``ready`` heap
ordered by the finish tag.  Because system virtual time never moves
backwards, the eligibility threshold passed to
:meth:`min_eligible_finish` is non-decreasing per stagger slot, so
entries migrate from pending to ready exactly once.  2DFQ keeps one
pending/ready pair per worker thread (stagger ``i / n``), making its
dequeue O(log N) amortized per thread at the price of O(n) heap pushes
per touch -- a win whenever N >> n, which is the production regime.

Contract with cost estimators
-----------------------------
Keys are snapshotted at :meth:`touch` time, so the index is only
coherent if a queued request's estimate can change *solely* through
``observe()`` calls for the same tenant (estimators key their state on
``(tenant_id, api)``; see :mod:`repro.estimation.base`).  Every
estimator in this library satisfies that; a custom estimator whose
estimates drift spontaneously must run with ``indexed=False``.

The per-tenant entry is also a *head-estimate cache*: the estimate is
computed once per touch and reused for every heap the index maintains,
instead of once per candidate per dequeue as in the linear scans.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple, Union, cast

from ..errors import SchedulerError
from ..estimation.base import CostEstimator
from .scheduler import MIN_COST, TenantState

__all__ = ["SelectionIndex"]

#: One lazy-invalidation heap entry.  The *prefix* is the policy's sort
#: key -- ``(finish, estimate, seqno)`` for the finish heap, ``(start,
#: estimate, seqno)`` for the start heap, ``(staggered start, finish,
#: estimate, seqno)`` for a pending heap -- and every entry ends with
#: the fixed ``(..., sel_version, state)`` suffix the invalidation
#: machinery reads via ``entry[-2]`` / ``entry[-1]``.  Entries are plain
#: tuples (not objects) because heapq compares them lexicographically on
#: the hot path; the suffix accessors below recover the typed fields.
_HeapEntry = Tuple[Union[float, int, "TenantState"], ...]

#: Heaps are compacted (stale entries filtered out, then re-heapified)
#: once they grow past ``max(_COMPACT_MIN, 2 * live_entries)``; amortized
#: O(1) per push, and it bounds memory at O(backlogged tenants) per heap.
_COMPACT_MIN = 128


class SelectionIndex:
    """Lazy-invalidation heap index over the backlogged tenant set.

    Parameters
    ----------
    estimator:
        The scheduler's cost estimator; consulted once per :meth:`touch`
        to snapshot the head estimate.
    finish:
        Maintain a global min-finish-tag heap (WFQ selection and the
        default work-conserving fallback).
    start:
        Maintain a global min-start-tag heap (SFQ selection, MSF2Q
        fallback, and the WF2Q+ virtual-time lower bound).
    staggers:
        One eligibility pending/ready heap pair per entry; entry ``j``
        gates on ``S_f - staggers[j] * l_head <= threshold``.  WF2Q-style
        policies pass ``(0.0,)``; 2DFQ passes ``(i / n for i in
        range(n))``.
    """

    __slots__ = (
        "_estimator",
        "_heaps",
        "_limits",
        "_finish_heap",
        "_start_heap",
        "_pending",
        "_ready",
        "_staggers",
        "stale_pops",
        "rebuilds",
        "pushes",
        "_pushes_per_touch",
    )

    def __init__(
        self,
        estimator: CostEstimator,
        finish: bool = False,
        start: bool = False,
        staggers: Sequence[float] = (),
    ) -> None:
        self._estimator = estimator
        self._heaps: List[List[_HeapEntry]] = []
        self._limits: List[int] = []
        self._finish_heap = self._new_heap() if finish else -1
        self._start_heap = self._new_heap() if start else -1
        self._staggers: Tuple[float, ...] = tuple(staggers)
        self._pending = [self._new_heap() for _ in self._staggers]
        self._ready = [self._new_heap() for _ in self._staggers]
        # Lazy-invalidation churn counters (always on): how many
        # superseded entries surfaced and were discarded, how many
        # compaction rebuilds ran, and how many entries were pushed in
        # total.  Increments are batched -- loops accumulate into locals
        # and ``touch`` adds its per-call push count once -- so the
        # per-operation cost stays a couple of integer adds.
        self.stale_pops = 0
        self.rebuilds = 0
        self.pushes = 0
        self._pushes_per_touch = (
            (1 if finish else 0) + (1 if start else 0) + len(self._staggers)
        )

    # -- maintenance ---------------------------------------------------------

    def set_estimator(self, estimator: CostEstimator) -> None:
        """Swap the estimator consulted for head estimates (fault
        injection).  Entries pushed under the old estimator carry stale
        tags, so the owning scheduler must re-``touch`` every backlogged
        tenant immediately after (see
        :meth:`~repro.core.vt_base.VirtualTimeScheduler.set_estimator`)."""
        self._estimator = estimator

    def _new_heap(self) -> int:
        self._heaps.append([])
        self._limits.append(_COMPACT_MIN)
        return len(self._heaps) - 1

    def touch(self, state: TenantState) -> None:
        """Reindex a backlogged tenant after its head request, start tag,
        or head estimate may have changed.

        Bumps the tenant's ``sel_version`` (invalidating every entry
        pushed earlier) and pushes one fresh entry per maintained heap.
        """
        state.sel_version += 1
        version = state.sel_version
        head = state.queue[0]
        estimate = self._estimator.estimate(head)
        if estimate < MIN_COST:
            estimate = MIN_COST
        start = state.start_tag
        finish = start + estimate / state.weight
        seqno = head.seqno
        if self._finish_heap >= 0:
            self._push(self._finish_heap, (finish, estimate, seqno, version, state))
        if self._start_heap >= 0:
            self._push(self._start_heap, (start, estimate, seqno, version, state))
        for slot, stagger in enumerate(self._staggers):
            self._push(
                self._pending[slot],
                (start - stagger * estimate, finish, estimate, seqno, version, state),
            )
        self.pushes += self._pushes_per_touch

    def drop(self, state: TenantState) -> None:
        """Invalidate every entry of a tenant that left the backlog."""
        state.sel_version += 1

    def _push(self, heap_id: int, entry: _HeapEntry) -> None:
        heap = self._heaps[heap_id]
        heapq.heappush(heap, entry)
        if len(heap) >= self._limits[heap_id]:
            # The suffix layout is fixed: entry[-2] is the sel_version
            # snapshot, entry[-1] the TenantState (see _HeapEntry).
            live = [
                e for e in heap
                if e[-2] == cast(TenantState, e[-1]).sel_version
            ]
            heapq.heapify(live)
            self._heaps[heap_id] = live
            self._limits[heap_id] = max(_COMPACT_MIN, 2 * len(live))
            self.rebuilds += 1

    # -- queries -------------------------------------------------------------

    def _peek(self, heap_id: int) -> Optional[_HeapEntry]:
        """Top fresh entry of a heap, discarding superseded ones."""
        heap = self._heaps[heap_id]
        top: Optional[_HeapEntry] = None
        stale = 0
        while heap:
            entry = heap[0]
            # Hot path: the (version, state) suffix is read positionally
            # rather than through typed accessors to keep this loop free
            # of extra function calls (the <5% bench budget).
            if entry[-2] == entry[-1].sel_version:  # type: ignore[union-attr]
                top = entry
                break
            heapq.heappop(heap)
            stale += 1
        if stale:
            self.stale_pops += stale
        return top

    def min_finish(self) -> Optional[TenantState]:
        """Backlogged tenant with the smallest ``(finish tag, head
        estimate, head seqno)`` key -- the WFQ decision."""
        if self._finish_heap < 0:
            raise SchedulerError("selection index was built without a finish heap")
        entry = self._peek(self._finish_heap)
        return cast(TenantState, entry[-1]) if entry is not None else None

    def min_start(self) -> Optional[TenantState]:
        """Backlogged tenant with the smallest ``(start tag, head
        estimate, head seqno)`` key -- the SFQ decision."""
        if self._start_heap < 0:
            raise SchedulerError("selection index was built without a start heap")
        entry = self._peek(self._start_heap)
        return cast(TenantState, entry[-1]) if entry is not None else None

    def min_start_tag(self) -> Optional[float]:
        """Smallest start tag over backlogged tenants (WF2Q+ virtual-time
        lower bound), or ``None`` when the backlog is empty."""
        if self._start_heap < 0:
            raise SchedulerError("selection index was built without a start heap")
        entry = self._peek(self._start_heap)
        return cast(float, entry[0]) if entry is not None else None

    def min_eligible_finish(
        self, slot: int, threshold: float
    ) -> Optional[TenantState]:
        """Smallest-finish-tag tenant whose staggered start tag is within
        ``threshold`` for stagger slot ``slot``.

        ``threshold`` must be non-decreasing across calls for a given
        slot (system virtual time never moves backwards), which is what
        lets eligible entries migrate to the ready heap exactly once.
        """
        pending = self._heaps[self._pending[slot]]
        ready_id = self._ready[slot]
        stale = 0
        moved = 0
        while pending:
            entry = pending[0]
            # Hot path: positional suffix reads, as in _peek.
            if entry[-2] != entry[-1].sel_version:  # type: ignore[union-attr]
                heapq.heappop(pending)
                stale += 1
                continue
            if entry[0] <= threshold:  # type: ignore[operator]
                heapq.heappop(pending)
                # Re-key from staggered start to finish tag.
                self._push(ready_id, entry[1:])
                moved += 1
                continue
            break
        if stale:
            self.stale_pops += stale
        if moved:
            self.pushes += moved
        top = self._peek(ready_id)
        return cast(TenantState, top[-1]) if top is not None else None

    # -- introspection -------------------------------------------------------

    @property
    def staggers(self) -> Tuple[float, ...]:
        return self._staggers

    def stats(self) -> Dict[str, int]:
        """Lazy-invalidation churn counters plus current live occupancy.

        ``stale_pops`` counts superseded entries discarded at a heap top,
        ``rebuilds`` the compaction passes, ``pushes`` the entries ever
        pushed; ``entries`` is the summed current heap occupancy (live
        plus not-yet-surfaced stale).  Surfaced per benchmark cell in
        ``benchmarks/results/BENCH_schedulers.json`` and in traced-run
        manifests.
        """
        return {
            "stale_pops": self.stale_pops,
            "rebuilds": self.rebuilds,
            "pushes": self.pushes,
            "entries": sum(len(heap) for heap in self._heaps),
        }

    def heap_sizes(self) -> Dict[str, int]:
        """Current heap occupancy (monitoring and tests)."""
        sizes: Dict[str, int] = {}
        if self._finish_heap >= 0:
            sizes["finish"] = len(self._heaps[self._finish_heap])
        if self._start_heap >= 0:
            sizes["start"] = len(self._heaps[self._start_heap])
        for slot in range(len(self._staggers)):
            sizes[f"pending[{slot}]"] = len(self._heaps[self._pending[slot]])
            sizes[f"ready[{slot}]"] = len(self._heaps[self._ready[slot]])
        return sizes

    def __repr__(self) -> str:
        return (
            f"SelectionIndex(finish={self._finish_heap >= 0}, "
            f"start={self._start_heap >= 0}, staggers={len(self._staggers)})"
        )
