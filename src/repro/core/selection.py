"""Indexed tenant selection: O(log N) amortized scheduling decisions.

The selection primitives in :mod:`repro.core.vt_base` -- smallest finish
tag, smallest start tag, and the eligibility-gated variants -- are
written as linear scans over the backlogged set.  They are simple and
serve as the reference semantics, but every ``dequeue`` pays O(N) in the
number of backlogged tenants, which caps simulator throughput exactly
where the paper's production regime needs it (hundreds to thousands of
concurrently backlogged tenants; §4 notes tag-based schedulers admit
O(log N) implementations with ordered structures).

:class:`SelectionIndex` maintains the same orderings in binary heaps
with *lazy invalidation* and *deferred maintenance*:

* every heap entry snapshots a tenant's selection key -- ``(finish tag,
  head estimate, head seqno)`` or ``(start tag, head estimate, head
  seqno)`` -- together with the tenant's ``sel_version`` at push time;
* whenever a tenant's key may have changed (new head request, start-tag
  movement, estimator update) the scheduler calls :meth:`touch`.  A
  touch is O(1): it bumps ``sel_version`` and appends the tenant to a
  shared *dirty log* -- no heap is pushed yet.  Each maintained
  structure keeps a cursor into that log and syncs lazily, at its next
  query; log records superseded by a newer touch of the same tenant are
  skipped entirely, so back-to-back touches in one dispatch cycle
  (dequeue charge + completion reconciliation) coalesce into a single
  heap push per structure;
* superseded entries already in a heap stay there and are discarded
  when they surface at the top (classic lazy invalidation);
* when a tenant leaves the backlog the scheduler calls :meth:`drop`,
  which only bumps the version -- O(1), no heap surgery.

Eligibility-gated policies (WF2Q, MSF2Q, 2DFQ) use pending/ready heap
pairs per *stagger offset*, organised as a **gate chain**: because the
stagger offsets are sorted ascending, the staggered start tag ``e_j(f)
= S_f - staggers[j] * l_head`` is non-increasing in the slot index, so
eligibility is *nested* -- a tenant eligible on slot ``i`` is eligible
on every slot ``j >= i``.  A touched tenant is therefore pushed into
the *top* pending heap only (one push, not one per slot); when a query
for slot ``i`` arrives, gates ``m-1 .. i`` are drained in descending
order with the query threshold, migrating entries into ``ready[j]``
(keyed by finish tag) and cascading them into ``pending[j-1]``.  Any
entry with ``e_i <= threshold`` passes every intermediate gate (its
keys there are ``e_j <= e_i``), so ``ready[i]`` always holds exactly
the slot-``i`` eligibility set -- and in the common regime where a
tenant is re-touched before virtual time reaches its lower slots, the
cascade never runs and the per-touch cost stays at one push.  2DFQ's
per-touch cost drops from ``n + 1`` heap pushes under the PR-1 eager
design to ~1 amortized, which is where the churn reduction in
``BENCH_schedulers.json`` (stale_pops / heap_pushes) comes from.

Because system virtual time never moves backwards, the eligibility
threshold passed to :meth:`min_eligible_finish` is non-decreasing, so
entries migrate through each gate exactly once per version.

Contract with cost estimators
-----------------------------
Keys are snapshotted when a dirty-log record is first synced, so the
index is only coherent if a queued request's estimate can change
*solely* through ``observe()`` calls for the same tenant (estimators
key their state on ``(tenant_id, api)``; see
:mod:`repro.estimation.base`) -- every such change site in
:mod:`repro.core.vt_base` pairs with a :meth:`touch`, which supersedes
the memoized snapshot.  Every estimator in this library satisfies
that; a custom estimator whose estimates drift spontaneously must run
with ``indexed=False``.

The per-record snapshot is also a *head-estimate cache*: the estimate
is computed once per effective touch and reused by every structure
that syncs the record, instead of once per candidate per dequeue as in
the linear scans.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple, Union, cast

from ..errors import SchedulerError
from ..estimation.base import CostEstimator
from ..units import Cost, Scalar, VirtualTime
from .scheduler import MIN_COST, TenantState

__all__ = ["SelectionIndex"]

#: One lazy-invalidation heap entry.  The *prefix* is the policy's sort
#: key -- ``(finish, estimate, seqno)`` for the finish heap, ``(start,
#: estimate, seqno)`` for the start heap, ``(staggered start, start,
#: finish, estimate, seqno)`` for a pending heap -- and every entry ends
#: with the fixed ``(..., sel_version, state)`` suffix the invalidation
#: machinery reads via ``entry[-2]`` / ``entry[-1]``.  Entries are plain
#: tuples (not objects) because heapq compares them lexicographically on
#: the hot path; ``seqno`` (unique per head request) and the version
#: break every tie before the non-comparable ``state`` is reached.
_HeapEntry = Tuple[Union[float, int, "TenantState"], ...]

#: One dirty-log record: ``[state, version, snapshot]`` where
#: ``snapshot`` is ``None`` until the first structure to sync the record
#: memoizes ``(start, finish, estimate, seqno)``.
_LogRecord = List[object]

#: Heaps are compacted (stale entries filtered out, then re-heapified)
#: once they grow past ``max(_COMPACT_MIN, 2 * live_entries)``; amortized
#: O(1) per push, and it bounds memory at O(backlogged tenants) per heap.
_COMPACT_MIN = 128

#: The dirty log is flushed into every structure (and cleared) once it
#: grows past ``max(_LOG_COMPACT_MIN, 4 * records flushed last time)``,
#: bounding its memory at O(backlogged tenants) between rarely-queried
#: structures' syncs.
_LOG_COMPACT_MIN = 256


class SelectionIndex:
    """Lazy-invalidation heap index over the backlogged tenant set.

    Parameters
    ----------
    estimator:
        The scheduler's cost estimator; consulted once per effective
        :meth:`touch` to snapshot the head estimate.
    finish:
        Maintain a global min-finish-tag heap (WFQ selection and the
        default work-conserving fallback).
    start:
        Maintain a global min-start-tag heap (SFQ selection, MSF2Q
        fallback, and the WF2Q+ virtual-time lower bound).
    staggers:
        One eligibility pending/ready heap pair per entry; entry ``j``
        gates on ``S_f - staggers[j] * l_head <= threshold``.  WF2Q-style
        policies pass ``(0.0,)``; 2DFQ passes ``(i / n for i in
        range(n))``.  Must be sorted ascending -- the gate chain relies
        on the nested-eligibility property that implies.
    """

    __slots__ = (
        "_estimator",
        "_heaps",
        "_limits",
        "_finish_heap",
        "_start_heap",
        "_pending",
        "_ready",
        "_staggers",
        "_log",
        "_log_limit",
        "_cursor_finish",
        "_cursor_start",
        "_cursor_ladder",
        "stale_pops",
        "rebuilds",
        "pushes",
        "touches",
    )

    def __init__(
        self,
        estimator: CostEstimator,
        finish: bool = False,
        start: bool = False,
        staggers: Sequence[Scalar] = (),
    ) -> None:
        self._estimator = estimator
        self._heaps: List[List[_HeapEntry]] = []
        self._limits: List[int] = []
        self._finish_heap = self._new_heap() if finish else -1
        self._start_heap = self._new_heap() if start else -1
        self._staggers: Tuple[Scalar, ...] = tuple(staggers)
        if any(
            a > b for a, b in zip(self._staggers, self._staggers[1:])
        ):
            raise SchedulerError(
                "stagger offsets must be sorted ascending (the gate "
                f"chain relies on nested eligibility): {self._staggers}"
            )
        self._pending = [self._new_heap() for _ in self._staggers]
        self._ready = [self._new_heap() for _ in self._staggers]
        #: Shared dirty log of deferred touches plus one cursor per
        #: maintained structure (the ladder counts as one structure: its
        #: single entry point is the top pending heap).
        self._log: List[_LogRecord] = []
        self._log_limit = _LOG_COMPACT_MIN
        self._cursor_finish = 0
        self._cursor_start = 0
        self._cursor_ladder = 0
        # Churn counters (always on): superseded entries discarded at a
        # heap top, compaction rebuilds, entries pushed, and touches
        # received.  pushes/touches is the coalescing ratio the perf
        # benches pin.
        self.stale_pops = 0
        self.rebuilds = 0
        self.pushes = 0
        self.touches = 0

    # -- maintenance ---------------------------------------------------------

    def set_estimator(self, estimator: CostEstimator) -> None:
        """Swap the estimator consulted for head estimates (fault
        injection).  Entries and memoized snapshots created under the old
        estimator carry stale tags, so the owning scheduler must
        re-``touch`` every backlogged tenant immediately after (see
        :meth:`~repro.core.vt_base.VirtualTimeScheduler.set_estimator`)."""
        self._estimator = estimator

    def _new_heap(self) -> int:
        self._heaps.append([])
        self._limits.append(_COMPACT_MIN)
        return len(self._heaps) - 1

    def touch(self, state: TenantState) -> None:
        """Mark a backlogged tenant dirty after its head request, start
        tag, or head estimate may have changed.

        O(1): bumps the tenant's ``sel_version`` (invalidating every
        entry pushed earlier *and* every unsynced log record) and
        appends a dirty-log record.  Heap pushes happen at the next
        query of each structure, where consecutive touches of the same
        tenant coalesce into one push.
        """
        state.sel_version += 1
        self._log.append([state, state.sel_version, None])
        self.touches += 1
        if len(self._log) >= self._log_limit:
            self._flush_log()

    def drop(self, state: TenantState) -> None:
        """Invalidate every entry of a tenant that left the backlog."""
        state.sel_version += 1

    def _snapshot(
        self, record: _LogRecord
    ) -> Tuple[VirtualTime, VirtualTime, Cost, int]:
        """Memoized ``(start, finish, estimate, seqno)`` for a still-fresh
        log record.  Safe to compute at any later sync: every mutation of
        the underlying state pairs with a new touch, which supersedes
        this record before the stale snapshot could be reused."""
        snap = record[2]
        if snap is None:
            state = cast(TenantState, record[0])
            head = state.queue[0]
            estimate = self._estimator.estimate(head)
            if estimate < MIN_COST:
                estimate = MIN_COST
            start = state.start_tag
            snap = (start, start + estimate / state.weight, estimate, head.seqno)
            record[2] = snap
        return cast(Tuple[VirtualTime, VirtualTime, Cost, int], snap)

    def _sync_finish(self) -> None:
        log = self._log
        end = len(log)
        i = self._cursor_finish
        if i == end:
            return
        self._cursor_finish = end
        heap_id = self._finish_heap
        while i < end:
            record = log[i]
            i += 1
            state = cast(TenantState, record[0])
            if record[1] != state.sel_version:
                continue  # superseded by a later touch (or dropped)
            start, finish, estimate, seqno = self._snapshot(record)
            self._push(heap_id, (finish, estimate, seqno, record[1], state))

    def _sync_start(self) -> None:
        log = self._log
        end = len(log)
        i = self._cursor_start
        if i == end:
            return
        self._cursor_start = end
        heap_id = self._start_heap
        while i < end:
            record = log[i]
            i += 1
            state = cast(TenantState, record[0])
            if record[1] != state.sel_version:
                continue
            start, finish, estimate, seqno = self._snapshot(record)
            self._push(heap_id, (start, estimate, seqno, record[1], state))

    def _sync_ladder(self) -> None:
        """Feed fresh dirty records into the gate chain's single entry
        point: the top pending heap (largest stagger offset)."""
        log = self._log
        end = len(log)
        i = self._cursor_ladder
        if i == end:
            return
        self._cursor_ladder = end
        top = len(self._staggers) - 1
        heap_id = self._pending[top]
        stagger = self._staggers[top]
        while i < end:
            record = log[i]
            i += 1
            state = cast(TenantState, record[0])
            if record[1] != state.sel_version:
                continue
            start, finish, estimate, seqno = self._snapshot(record)
            self._push(
                heap_id,
                (
                    start - stagger * estimate,
                    start,
                    finish,
                    estimate,
                    seqno,
                    record[1],
                    state,
                ),
            )

    def _flush_log(self) -> None:
        """Sync every structure to the end of the log, then clear it.

        Bounds log memory; rarely-queried structures (e.g. the finish
        heap of a policy whose fallback never fires) would otherwise pin
        the log forever.  The next limit adapts to the number of records
        a flush interval accumulates."""
        if self._finish_heap >= 0:
            self._sync_finish()
        if self._start_heap >= 0:
            self._sync_start()
        if self._staggers:
            self._sync_ladder()
        live = sum(
            1
            for rec in self._log
            if rec[1] == cast(TenantState, rec[0]).sel_version
        )
        self._log_limit = max(_LOG_COMPACT_MIN, 4 * live)
        self._log.clear()
        self._cursor_finish = 0
        self._cursor_start = 0
        self._cursor_ladder = 0

    def _push(self, heap_id: int, entry: _HeapEntry) -> None:
        heap = self._heaps[heap_id]
        heapq.heappush(heap, entry)
        self.pushes += 1
        if len(heap) >= self._limits[heap_id]:
            # The suffix layout is fixed: entry[-2] is the sel_version
            # snapshot, entry[-1] the TenantState (see _HeapEntry).
            live = [
                e for e in heap
                if e[-2] == cast(TenantState, e[-1]).sel_version
            ]
            heapq.heapify(live)
            self._heaps[heap_id] = live
            self._limits[heap_id] = max(_COMPACT_MIN, 2 * len(live))
            self.rebuilds += 1

    # -- queries -------------------------------------------------------------

    def _peek(self, heap_id: int) -> Optional[_HeapEntry]:
        """Top fresh entry of a heap, discarding superseded ones."""
        heap = self._heaps[heap_id]
        top: Optional[_HeapEntry] = None
        stale = 0
        while heap:
            entry = heap[0]
            # Hot path: the (version, state) suffix is read positionally
            # rather than through typed accessors to keep this loop free
            # of extra function calls (the <5% bench budget).
            if entry[-2] == entry[-1].sel_version:  # type: ignore[union-attr]
                top = entry
                break
            heapq.heappop(heap)
            stale += 1
        if stale:
            self.stale_pops += stale
        return top

    def min_finish(self) -> Optional[TenantState]:
        """Backlogged tenant with the smallest ``(finish tag, head
        estimate, head seqno)`` key -- the WFQ decision."""
        if self._finish_heap < 0:
            raise SchedulerError("selection index was built without a finish heap")
        self._sync_finish()
        entry = self._peek(self._finish_heap)
        return cast(TenantState, entry[-1]) if entry is not None else None

    def min_start(self) -> Optional[TenantState]:
        """Backlogged tenant with the smallest ``(start tag, head
        estimate, head seqno)`` key -- the SFQ decision."""
        if self._start_heap < 0:
            raise SchedulerError("selection index was built without a start heap")
        self._sync_start()
        entry = self._peek(self._start_heap)
        return cast(TenantState, entry[-1]) if entry is not None else None

    def min_start_tag(self) -> Optional[VirtualTime]:
        """Smallest start tag over backlogged tenants (WF2Q+ virtual-time
        lower bound), or ``None`` when the backlog is empty."""
        if self._start_heap < 0:
            raise SchedulerError("selection index was built without a start heap")
        self._sync_start()
        entry = self._peek(self._start_heap)
        return cast(VirtualTime, entry[0]) if entry is not None else None

    def min_eligible_finish(
        self, slot: int, threshold: VirtualTime
    ) -> Optional[TenantState]:
        """Smallest-finish-tag tenant whose staggered start tag is within
        ``threshold`` for stagger slot ``slot``.

        ``threshold`` must be non-decreasing across calls (system virtual
        time never moves backwards), which is what lets entries migrate
        through each gate exactly once.  Gates are drained from the top
        stagger down to ``slot``; an entry with ``e_slot <= threshold``
        has ``e_j <= e_slot <= threshold`` at every intermediate gate
        (staggers ascending, estimates positive), so after the drain
        ``ready[slot]`` holds the full slot eligibility set.
        """
        self._sync_ladder()
        heaps = self._heaps
        staggers = self._staggers
        pending_ids = self._pending
        ready_ids = self._ready
        stale = 0
        for j in range(len(staggers) - 1, slot - 1, -1):
            pending = heaps[pending_ids[j]]
            if not pending:
                continue
            ready_id = ready_ids[j]
            # An entry leaving pending[j] must ALWAYS seed pending[j-1]
            # (not only when the query slot lies below j): a later query
            # for a lower slot drains the lower gates and would never
            # see a tenant this query consumed from gate j.
            cascade = j > 0
            if cascade:
                next_stagger = staggers[j - 1]
                next_id = pending_ids[j - 1]
            while pending:
                entry = pending[0]
                # Key check first: when the top key is beyond the
                # threshold nothing can migrate, fresh or stale (a stale
                # top parked out there is swept up by compaction or once
                # the threshold reaches it).  Hot path: positional
                # suffix reads, as in _peek.
                if entry[0] > threshold:  # type: ignore[operator]
                    break
                if entry[-2] != entry[-1].sel_version:  # type: ignore[union-attr]
                    heapq.heappop(pending)
                    stale += 1
                    continue
                heapq.heappop(pending)
                # Re-key from staggered start to finish tag; the ready
                # entry drops the (staggered start, start) prefix.
                self._push(ready_id, entry[2:])
                if cascade:
                    # entry = (e_j, start, finish, estimate, seqno, v, state)
                    start = cast(float, entry[1])
                    estimate = cast(float, entry[3])
                    self._push(
                        next_id,
                        (start - next_stagger * estimate,) + entry[1:],
                    )
        if stale:
            self.stale_pops += stale
        top = self._peek(ready_ids[slot])
        return cast(TenantState, top[-1]) if top is not None else None

    # -- introspection -------------------------------------------------------

    @property
    def staggers(self) -> Tuple[Scalar, ...]:
        return self._staggers

    def stats(self) -> Dict[str, int]:
        """Churn counters plus current live occupancy.

        ``stale_pops`` counts superseded entries discarded at a heap top,
        ``rebuilds`` the compaction passes, ``pushes`` the entries ever
        pushed, ``touches`` the touch calls received (pushes/touches is
        the deferred-maintenance coalescing ratio); ``entries`` is the
        summed current heap occupancy (live plus not-yet-surfaced stale).
        Surfaced per benchmark cell in
        ``benchmarks/results/BENCH_schedulers.json`` and in traced-run
        manifests.
        """
        return {
            "stale_pops": self.stale_pops,
            "rebuilds": self.rebuilds,
            "pushes": self.pushes,
            "touches": self.touches,
            "entries": sum(len(heap) for heap in self._heaps),
        }

    def heap_sizes(self) -> Dict[str, int]:
        """Current heap occupancy (monitoring and tests); includes the
        dirty log, which is bounded by the flush limit."""
        sizes: Dict[str, int] = {}
        if self._finish_heap >= 0:
            sizes["finish"] = len(self._heaps[self._finish_heap])
        if self._start_heap >= 0:
            sizes["start"] = len(self._heaps[self._start_heap])
        for slot in range(len(self._staggers)):
            sizes[f"pending[{slot}]"] = len(self._heaps[self._pending[slot]])
            sizes[f"ready[{slot}]"] = len(self._heaps[self._ready[slot]])
        sizes["log"] = len(self._log)
        return sizes

    def __repr__(self) -> str:
        return (
            f"SelectionIndex(finish={self._finish_heap >= 0}, "
            f"start={self._start_heap >= 0}, staggers={len(self._staggers)})"
        )
