"""Virtual-time scheduler framework.

Every tag-based fair queue scheduler in this library -- WFQ, WF2Q, MSF2Q,
SFQ, WF2Q+, 2DFQ and their estimated variants -- is a policy on top of
the same bookkeeping machinery, which this module implements once:

* per-tenant virtual start tags ``S_f`` (Figure 7 keeps tags per tenant
  rather than per request; for FIFO per-tenant queues the two
  formulations are equivalent, and the per-tenant form is what makes
  estimated costs and retroactive charging workable);
* a system :class:`~repro.core.virtual_time.VirtualClock` advancing at
  ``capacity / active_weight``;
* cost estimation at dispatch: the tenant is charged the *estimate*
  ``l_r`` up front (``S_f += l_r / phi_f``) and the request remembers the
  remaining credit ``c_f^j``;
* **refresh charging** (paper §5): interim usage measurements consume the
  credit first, then push ``S_f`` forward immediately;
* **retroactive charging** (paper §5): at completion the final increment
  is reconciled against the remaining credit -- overcharged tenants are
  refunded (``S_f`` moves backwards), undercharged tenants pay up -- so
  every tenant is eventually charged exactly what it consumed.

Subclasses implement a single hook, :meth:`VirtualTimeScheduler._select`,
choosing a backlogged tenant given the thread index and current virtual
time, plus optionally :meth:`_fallback` for the work-conserving choice
when no tenant is *eligible* under the policy.

Selection runs in one of three interchangeable modes:

* **linear scan** (``indexed=False``, the reference): `_select` /
  `_fallback` walk the backlogged set, exactly as the policy
  definitions read;
* **indexed** (``indexed=True``): policies that declare an
  :meth:`_index_spec` get a :class:`~repro.core.selection.SelectionIndex`
  -- heaps with lazy invalidation -- and `dequeue` routes through
  :meth:`_select_indexed` / :meth:`_fallback_indexed` instead, dropping
  the per-dequeue cost from O(N) to O(log N) amortized;
* **adaptive** (``indexed="auto"``, the default): the scheduler tracks
  the live backlogged-tenant count and switches between the two modes
  with hysteresis around the benchmarked linear/heap crossover
  (:data:`AUTO_INDEX_HIGH` / :data:`AUTO_INDEX_LOW`; DESIGN.md §15
  records the methodology) -- small backlogs keep the cache-friendly
  linear scan, large backlogs get the index.

All modes are dispatch-for-dispatch identical (the differential tests
assert it); external subclasses that only override `_select` simply
keep the linear path, whatever mode was requested.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:
    from ..obs.registry import Timer

from ..errors import ConfigurationError, SchedulerError
from ..estimation.base import CostEstimator
from ..units import Cost, Rate, SimTime, VirtualTime
from ..estimation.oracle import OracleEstimator
from .request import Request, RequestPhase
from .scheduler import MIN_COST, Scheduler, TenantState
from .selection import SelectionIndex
from .virtual_time import VirtualClock

__all__ = ["VirtualTimeScheduler"]

#: Slack applied to eligibility comparisons to absorb floating-point
#: round-off in virtual-time arithmetic.
_ELIGIBILITY_EPS = 1e-9


class VirtualTimeScheduler(Scheduler):
    """Base class for tag-based fair schedulers over a thread pool.

    Parameters
    ----------
    num_threads, thread_rate:
        Shape of the worker pool; aggregate capacity is their product.
    estimator:
        Cost estimator consulted at dispatch time.  Defaults to the
        oracle (true costs), which yields the paper's "known request
        costs" algorithms; pass an
        :class:`~repro.estimation.ema.EMAEstimator` or
        :class:`~repro.estimation.pessimistic.PessimisticEstimator` for
        the ^E variants.
    indexed:
        Selection mode: ``"auto"`` (the default) switches between the
        linear scan and the heap index from the live backlog size with
        hysteresis; ``True`` forces the index whenever the policy
        provides one; ``False`` forces the reference linear scans.  The
        differential tests run all three modes side by side.
    """

    #: Adaptive-mode hysteresis band, in backlogged tenants: the index
    #: is built when the backlog reaches ``AUTO_INDEX_HIGH`` and torn
    #: down when it falls to ``AUTO_INDEX_LOW``.  The defaults sit above
    #: the measured linear/heap crossover of the slowest policies
    #: (``repro.perf.hotpath.measure_adaptive_crossover``; DESIGN.md
    #: §15), with a 2x band so a backlog oscillating around the
    #: crossover does not thrash index builds.  Class attributes:
    #: subclasses or callers may retune per deployment.
    AUTO_INDEX_HIGH: ClassVar[int] = 32
    AUTO_INDEX_LOW: ClassVar[int] = 16

    def __init__(
        self,
        num_threads: int,
        thread_rate: Rate = 1.0,
        estimator: Optional[CostEstimator] = None,
        indexed: Union[bool, str] = "auto",
    ) -> None:
        super().__init__(num_threads, thread_rate)
        self._estimator = estimator if estimator is not None else OracleEstimator()
        self._clock = VirtualClock(self.capacity)
        # Tenants with at least one queued request, i.e. the candidates
        # for dequeue.  dict preserves insertion order, giving stable
        # iteration for deterministic tie-breaking.
        self._backlogged: dict[str, TenantState] = {}
        self._index: Optional[SelectionIndex] = None
        if indexed is True:
            self._auto = False
            spec = self._index_spec()
            if spec is not None:
                self._index = SelectionIndex(self._estimator, **spec)
        elif indexed is False:
            self._auto = False
        elif indexed == "auto":
            # Auto on a policy without an index spec degenerates to the
            # linear scans: _activate_index() finds no spec and disarms.
            self._auto = self._index_spec() is not None
        else:
            raise ConfigurationError(
                f"indexed must be True, False, or 'auto', got {indexed!r}"
            )

    # -- introspection ---------------------------------------------------------

    @property
    def estimator(self) -> CostEstimator:
        return self._estimator

    @property
    def indexed(self) -> bool:
        """True when dequeues currently run through the O(log N)
        selection index (in adaptive mode this flips with the backlog)."""
        return self._index is not None

    @property
    def selection_mode(self) -> str:
        """The configured selection mode: ``"auto"``, ``"indexed"``, or
        ``"linear"`` (``indexed`` / ``linear`` also cover auto-less
        policies without an index spec)."""
        if self._auto:
            return "auto"
        return "indexed" if self._index is not None else "linear"

    @property
    def selection_index(self) -> Optional[SelectionIndex]:
        return self._index

    @property
    def virtual_clock(self) -> VirtualClock:
        return self._clock

    def virtual_time(self, now: SimTime) -> VirtualTime:
        """Current system virtual time ``v(now)`` (advances the clock)."""
        return self._clock.advance(now)

    def backlogged_tenants(self) -> Iterable[TenantState]:
        return self._backlogged.values()

    def set_estimator(self, estimator: CostEstimator) -> None:
        """Swap the cost estimator at runtime (fault injection).

        The selection index caches finish/start tags computed from head
        estimates, so every backlogged tenant is re-touched to keep the
        index coherent with the new estimator's view.
        """
        self._estimator = estimator
        if self._index is not None:
            self._index.set_estimator(estimator)
            for state in self._backlogged.values():
                self._index.touch(state)

    def reindex_backlogged(self) -> None:
        """Re-touch every backlogged tenant in the selection index.

        Needed when head estimates change outside the ``observe()`` path
        -- e.g. a :class:`~repro.faults.FaultyEstimator` entering or
        leaving an outage/bias window shifts *all* estimates at once.
        """
        if self._index is not None:
            for state in self._backlogged.values():
                self._index.touch(state)

    def _activate_index(self) -> None:
        """Adaptive mode, rising edge: build a fresh selection index and
        seed it with the entire backlog.  O(N) once per activation --
        amortized against the >= AUTO_INDEX_HIGH dequeues the backlog
        implies before the tear-down threshold can be reached."""
        spec = self._index_spec()
        if spec is None:  # pragma: no cover - auto is disarmed in __init__
            self._auto = False
            return
        index = SelectionIndex(self._estimator, **spec)
        for state in self._backlogged.values():
            index.touch(state)
        self._index = index

    # -- scheduler contract ------------------------------------------------------

    def enqueue(self, request: Request, now: SimTime) -> None:
        state = self._state_for(request)
        trace = self._trace
        if not state.active:
            # Newly active tenant: join the virtual clock and fast-forward
            # the start tag (Figure 7, lines 2-5).  ``add_weight`` advances
            # the clock internally so the slope change is exact.
            self._clock.add_weight(state.weight, now)
            state.start_tag = max(state.start_tag, self._clock.value)
            state.active = True
            if trace is not None:
                trace.vt_update(
                    now,
                    self._clock.value,
                    state.tenant_id,
                    reason="tenant_active",
                    active_weight=self._clock.active_weight,
                    start_tag=state.start_tag,
                )
        else:
            self._clock.advance(now)
        state.queue.append(request)
        self._backlogged[state.tenant_id] = state
        self._note_enqueued(request)
        if len(state.queue) == 1:
            # A new head request (and possibly a fast-forwarded start
            # tag); deeper enqueues change neither the head nor the tag.
            index = self._index
            if index is not None:
                index.touch(state)
            elif self._auto and len(self._backlogged) >= self.AUTO_INDEX_HIGH:
                # Adaptive rising edge.  Checked only here: the backlog
                # can only grow when a tenant becomes backlogged, so
                # deeper enqueues never need to re-test the threshold.
                self._activate_index()
        if trace is not None:
            trace.enqueue(
                now,
                self._clock.value,
                state.tenant_id,
                seqno=request.seqno,
                api=request.api,
                cost=request.cost,
                start_tag=state.start_tag,
                queue_depth=len(state.queue),
                backlog=self._size,
            )

    def dequeue(self, thread_id: int, now: SimTime) -> Optional[Request]:
        self._check_thread(thread_id)
        if not self._backlogged:
            return None
        index = self._index
        if (
            index is not None
            and self._auto
            and len(self._backlogged) <= self.AUTO_INDEX_LOW
        ):
            # Adaptive mode, falling edge: below the crossover the
            # linear scan wins; discard the index (a later activation
            # rebuilds from scratch, so no coherence to maintain).
            self._index = index = None
        # Per-phase profiling timers (ISSUE spans tentpole): only fetched
        # while a tracer is attached, so the disabled hot path stays one
        # ``is not None`` check per phase.  The clock behind the timers
        # is injectable -- the runner attaches the sim clock for traced
        # runs, the perf harness keeps the host clock.
        trace = self._trace
        phase_timer: Optional["Timer"] = None
        if trace is not None:
            phase_timer = trace.registry.timer("scheduler.phase.vt_update").start()
        vnow = self._clock.advance(now)
        vnow = self._adjust_virtual_time(vnow)
        if phase_timer is not None and trace is not None:
            phase_timer.stop()
            phase_timer = trace.registry.timer("scheduler.phase.select").start()
        if index is not None:
            state = self._select_indexed(thread_id, vnow)
            if state is None:
                # Work conservation: requests are queued, so pick something.
                fallback = True
                state = self._fallback_indexed(thread_id, vnow)
            else:
                fallback = False
        else:
            state = self._select(thread_id, vnow)
            if state is None:
                fallback = True
                state = self._fallback(thread_id, vnow)
            else:
                fallback = False
        if phase_timer is not None:
            phase_timer.stop()
        if state is None:
            raise SchedulerError(
                f"{type(self).__name__} violated work conservation with "
                f"{self._size} queued requests"
            )
        if trace is not None:
            trace.select(
                now,
                vnow,
                state.tenant_id,
                thread=thread_id,
                policy=self.name,
                start_tag=state.start_tag,
                finish_tag=self._finish_tag(state),
                eligible=self._trace_eligible_count(thread_id, vnow),
                backlogged=len(self._backlogged),
                fallback=fallback,
                stagger=self._trace_stagger(thread_id),
                indexed=index is not None,
            )
        request = state.queue.popleft()
        if not state.queue:
            del self._backlogged[state.tenant_id]
        # Charge the estimate up front (Figure 7, lines 22-24).
        estimate = max(self._estimator.estimate(request), MIN_COST)
        request.charged_cost = estimate
        request.credit = estimate
        state.start_tag += estimate / state.weight
        state.running += 1
        if index is not None:
            if trace is not None:
                phase_timer = trace.registry.timer("scheduler.phase.index").start()
            if state.queue:
                index.touch(state)
            else:
                index.drop(state)
            if phase_timer is not None:
                phase_timer.stop()
        self._note_dispatched(request, thread_id, now)
        if trace is not None:
            trace.dispatch(
                now,
                vnow,
                state.tenant_id,
                seqno=request.seqno,
                api=request.api,
                thread=thread_id,
                estimate=estimate,
                start_tag_after=state.start_tag,
                backlog=self._size,
            )
        return request

    def dequeue_batch(
        self, thread_ids: Sequence[int], now: SimTime
    ) -> List[Request]:
        """Batched :meth:`dequeue`: one dispatch per thread id, in
        order, stopping early when the backlog drains.

        Request-for-request identical to the sequential loop (the batch
        property tests pin requests, order, virtual times, and tracer
        event streams), but the untraced hot path runs one inlined loop
        with the per-dispatch attribute lookups hoisted out -- this is
        what :class:`~repro.simulator.server.ThreadPoolServer` calls
        when several workers free at the same instant.  The traced path
        simply loops :meth:`dequeue` so phase timers and event streams
        stay exactly per-dispatch.
        """
        if self._trace is not None:
            batch: List[Request] = []
            for thread_id in thread_ids:
                request = self.dequeue(thread_id, now)
                if request is None:
                    break
                batch.append(request)
            return batch
        # Untraced fast path: the body below replicates dequeue() minus
        # the tracer branches, with loop-invariant lookups hoisted.
        # Keep the two in lockstep when touching either.
        batch = []
        backlogged = self._backlogged
        clock = self._clock
        estimator = self._estimator
        auto = self._auto
        low = self.AUTO_INDEX_LOW
        for thread_id in thread_ids:
            self._check_thread(thread_id)
            if not backlogged:
                break
            index = self._index
            if index is not None and auto and len(backlogged) <= low:
                self._index = index = None
            vnow = self._adjust_virtual_time(clock.advance(now))
            if index is not None:
                state = self._select_indexed(thread_id, vnow)
                if state is None:
                    state = self._fallback_indexed(thread_id, vnow)
            else:
                state = self._select(thread_id, vnow)
                if state is None:
                    state = self._fallback(thread_id, vnow)
            if state is None:
                raise SchedulerError(
                    f"{type(self).__name__} violated work conservation with "
                    f"{self._size} queued requests"
                )
            request = state.queue.popleft()
            if not state.queue:
                del backlogged[state.tenant_id]
            estimate = max(estimator.estimate(request), MIN_COST)
            request.charged_cost = estimate
            request.credit = estimate
            state.start_tag += estimate / state.weight
            state.running += 1
            if index is not None:
                if state.queue:
                    index.touch(state)
                else:
                    index.drop(state)
            # Inlined Scheduler._note_dispatched (hot path).
            request.phase = RequestPhase.RUNNING
            request.thread_id = thread_id
            request.dispatch_time = now
            self._size -= 1
            self._dispatched += 1
            batch.append(request)
        return batch

    def refresh(self, request: Request, usage: Cost, now: SimTime) -> None:
        """Refresh charging (Figure 7, Refresh): consume pre-paid credit,
        then charge any excess to the tenant's clock immediately."""
        request.reported_usage += usage
        if usage < request.credit:
            request.credit -= usage
        else:
            state = self._tenants[request.tenant_id]
            state.start_tag += (usage - request.credit) / state.weight
            request.credit = 0.0
            if self._index is not None and state.queue:
                self._index.touch(state)
            if self._trace is not None:
                self._trace.vt_update(
                    now,
                    self._clock.value,
                    state.tenant_id,
                    reason="refresh_charge",
                    seqno=request.seqno,
                    usage=usage,
                    start_tag=state.start_tag,
                )

    def complete(self, request: Request, usage: Cost, now: SimTime) -> None:
        """Retroactive charging (Figure 7, Complete): reconcile the final
        usage increment against the remaining credit.  If the request was
        overcharged the adjustment is negative -- a refund.

        The final increment is reconciled against the request's true
        cost rather than taken at face value: interim refresh
        measurements are wallclock-delta products whose float round-off
        would otherwise leave a permanent residual in ``start_tag``.
        After completion the tenant has been charged exactly
        ``cost / weight`` virtual time for the request (up to one
        rounding per charge increment), and the estimator observes the
        exact cost.
        """
        if request.phase == RequestPhase.CANCELLED:
            return  # stale completion racing a cancel: already refunded
        state = self._tenants.get(request.tenant_id)
        if state is None or state.running <= 0:
            raise SchedulerError(
                f"complete() for request of unknown/idle tenant {request.tenant_id}"
            )
        self._clock.advance(now)
        final = request.cost - request.reported_usage
        request.reported_usage = request.cost
        state.start_tag += (final - request.credit) / state.weight
        request.credit = 0.0
        state.running -= 1
        self._estimator.observe(request, request.reported_usage)
        if self._index is not None and state.queue:
            # Both the start tag and (via observe) the tenant's head
            # estimate may have moved.
            self._index.touch(state)
        trace = self._trace
        if trace is not None:
            trace.complete(
                now,
                self._clock.value,
                state.tenant_id,
                seqno=request.seqno,
                api=request.api,
                actual=request.cost,
                charged=request.charged_cost,
                start_tag_after=state.start_tag,
                running=state.running,
            )
        if not state.queue and state.running == 0 and state.active:
            # The tenant goes idle.  Figure 7 removes it from the active
            # set as soon as its queue drains; we additionally wait for
            # running requests to finish so that in-flight work keeps
            # receiving (and paying for) virtual-clock share.
            state.active = False
            self._clock.remove_weight(state.weight, now)
            if trace is not None:
                trace.vt_update(
                    now,
                    self._clock.value,
                    state.tenant_id,
                    reason="tenant_idle",
                    active_weight=self._clock.active_weight,
                )
        super().complete(request, 0.0, now)

    # -- cancellation ---------------------------------------------------------------

    def _cancel_queued(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        """Remove a queued request.  Nothing has been charged for a
        queued request (charges happen at dispatch), so only the backlog
        structures need repair: the tenant queue, the backlogged set,
        the selection index, and -- when the tenant has no other work --
        its active-weight contribution to the virtual clock."""
        try:
            state.queue.remove(request)
        except ValueError:
            return False
        self._clock.advance(now)
        if not state.queue:
            self._backlogged.pop(state.tenant_id, None)
            if self._index is not None:
                self._index.drop(state)
            if state.running == 0 and state.active:
                state.active = False
                self._clock.remove_weight(state.weight, now)
                if self._trace is not None:
                    self._trace.vt_update(
                        now,
                        self._clock.value,
                        state.tenant_id,
                        reason="tenant_idle",
                        active_weight=self._clock.active_weight,
                    )
        elif self._index is not None:
            # The head request may have changed.
            self._index.touch(state)
        return True

    def _cancel_running(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        """Refund the virtual-time charge of an in-flight request.

        The cumulative charge applied to ``start_tag`` for a running
        request is ``(reported_usage + credit) / weight``: the dispatch
        charged ``estimate / weight`` (leaving ``credit = estimate``),
        and each refresh either consumed credit (net charge unchanged)
        or pushed the tag by the overage (growing ``reported_usage``
        past the exhausted credit).  Subtracting it restores the tag to
        its pre-dispatch value, mirroring the ``complete()``
        reconciliation with a final usage of zero.
        """
        if state.running <= 0:
            return False
        self._clock.advance(now)
        state.start_tag -= (request.reported_usage + request.credit) / state.weight
        state.running -= 1
        if self._index is not None and state.queue:
            self._index.touch(state)
        if self._trace is not None:
            self._trace.vt_update(
                now,
                self._clock.value,
                state.tenant_id,
                reason="cancel_refund",
                seqno=request.seqno,
                refund=request.reported_usage + request.credit,
                start_tag=state.start_tag,
            )
        if not state.queue and state.running == 0 and state.active:
            state.active = False
            self._clock.remove_weight(state.weight, now)
            if self._trace is not None:
                self._trace.vt_update(
                    now,
                    self._clock.value,
                    state.tenant_id,
                    reason="tenant_idle",
                    active_weight=self._clock.active_weight,
                )
        return True

    def _trace_virtual_time(self) -> Optional[VirtualTime]:
        return self._clock.value

    # -- policy hooks ---------------------------------------------------------------

    def _adjust_virtual_time(self, vnow: VirtualTime) -> VirtualTime:
        """Hook for policies that reshape virtual time (WF2Q+)."""
        return vnow

    def _select(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        """Choose a backlogged tenant for ``thread_id`` at virtual time
        ``vnow``; return ``None`` if no tenant is eligible under the
        policy (the framework then calls :meth:`_fallback`).

        This is the *reference* linear-scan hook; it stays O(N) and
        readable.  Policies that also provide :meth:`_index_spec` and
        :meth:`_select_indexed` get the O(log N) path in ``dequeue``.
        """
        raise NotImplementedError

    def _fallback(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        """Work-conserving choice when nothing is eligible.  Default:
        smallest finish tag, i.e. the WFQ decision."""
        return self._min_finish(self._backlogged.values())

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        """Describe the ordered structures this policy's indexed
        selection needs, as keyword arguments for
        :class:`~repro.core.selection.SelectionIndex` (``finish``,
        ``start``, ``staggers``).  Return ``None`` (the default) to run
        on the linear scans only -- which is what external subclasses
        that merely override :meth:`_select` get, unchanged.
        """
        return None

    def _select_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        """Indexed counterpart of :meth:`_select`; must make the exact
        same decision.  Only called when :meth:`_index_spec` returned a
        spec and ``indexed=True``."""
        raise NotImplementedError

    def _fallback_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        """Indexed counterpart of :meth:`_fallback` (default: smallest
        finish tag from the index)."""
        index = self._index
        if index is None:  # only reachable if dequeue's routing is broken
            raise SchedulerError("indexed fallback invoked without an index")
        return index.min_finish()

    # -- tracing hooks (only called while a tracer is attached) -----------------

    def _trace_eligible_count(self, thread_id: int, vnow: VirtualTime) -> int:
        """Size of this policy's eligibility set at ``vnow`` -- the
        ``E_now`` of Figure 7, recorded in ``select`` trace events.

        The default (no eligibility gate: WFQ, SFQ) is the whole
        backlogged set; gated policies override.  Runs only under an
        attached tracer, so an O(N) scan is acceptable here even in
        indexed mode.
        """
        return len(self._backlogged)

    def _trace_stagger(self, thread_id: int) -> float:
        """Per-thread eligibility stagger offset recorded in ``select``
        trace events (2DFQ: ``thread_id / n``; everything else: 0)."""
        return 0.0

    # -- selection primitives shared by the policies -----------------------------------

    def _head_estimate(self, state: TenantState) -> Cost:
        """Estimated cost of the tenant's head request."""
        return max(self._estimator.estimate(state.queue[0]), MIN_COST)

    def _finish_tag(self, state: TenantState) -> VirtualTime:
        """Virtual finish time of the head request:
        ``F_f = S_f + l_head / phi_f`` (Figure 7, line 21)."""
        return state.start_tag + self._head_estimate(state) / state.weight

    def _min_finish(
        self, candidates: Iterable[TenantState]
    ) -> Optional[TenantState]:
        """Tenant with the smallest head finish tag.

        Ties are broken toward the *smaller* estimated cost, then by the
        head request's global sequence number.  The size tie-break
        matches the paper's worked example (Figure 5c: at t=3 the F=4
        tie between a4/b4 and c1/d1 resolves to the small requests, so
        WFQ runs four A/B rounds before the C/D block) and is the choice
        that minimizes potential blocking when tags are equal.
        """
        best: Optional[TenantState] = None
        best_key: tuple[float, float, int] = (float("inf"), float("inf"), 0)
        for state in candidates:
            estimate = self._head_estimate(state)
            key = (
                state.start_tag + estimate / state.weight,
                estimate,
                state.queue[0].seqno,
            )
            if key < best_key:
                best, best_key = state, key
        return best

    def _min_start(self, candidates: Iterable[TenantState]) -> Optional[TenantState]:
        """Tenant with the smallest start tag (SFQ decision); same
        size-then-seqno tie-breaking as :meth:`_min_finish`."""
        best: Optional[TenantState] = None
        best_key: tuple[float, float, int] = (float("inf"), float("inf"), 0)
        for state in candidates:
            key = (
                state.start_tag,
                self._head_estimate(state),
                state.queue[0].seqno,
            )
            if key < best_key:
                best, best_key = state, key
        return best

    @staticmethod
    def _eligibility_threshold(vnow: VirtualTime) -> VirtualTime:
        """Upper bound on (staggered) start tags counted as eligible at
        virtual time ``vnow``: the slack absorbs float round-off in
        virtual-time arithmetic.  Shared by the linear scans and the
        selection index so both paths gate on identical values."""
        return vnow + _ELIGIBILITY_EPS * max(1.0, abs(vnow))

    @classmethod
    def _eligible(cls, start_tag: VirtualTime, vnow: VirtualTime) -> bool:
        """Eligibility test with float slack: ``S_f <= v(now)``."""
        return start_tag <= cls._eligibility_threshold(vnow)
