"""Worst-case Fair Weighted Fair Queuing over an aggregated thread pool.

WF2Q (Bennett & Zhang [6]) restricts WFQ to *eligible* requests: a
request may start only once it would have begun service in the reference
GPS system, i.e. ``S(r) <= v(now)``.  Per the paper (§2) we use "WF2Q" to
refer to the naive work-conserving extension to multiple aggregated
links: when worker threads are free and no request is eligible, the
smallest-finish-tag request runs anyway so the pool never idles with
queued work.

Known weakness reproduced here (paper §4, Figure 5d): eligibility is
"all or nothing" -- a request becomes eligible on *every* thread at the
same instant, so when only large requests are eligible they take over
every worker simultaneously and small tenants see no service for periods
proportional to the maximum request size.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SchedulerError
from ..units import VirtualTime
from .scheduler import TenantState
from .vt_base import VirtualTimeScheduler

__all__ = ["WF2QScheduler"]


class WF2QScheduler(VirtualTimeScheduler):
    """Smallest finish tag among tenants whose start tag has arrived."""

    name = "wf2q"

    def _select(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        eligible = (
            state
            for state in self._backlogged.values()
            if self._eligible(state.start_tag, vnow)
        )
        return self._min_finish(eligible)

    # _fallback inherited: min finish tag over everything (work conserving).

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        # One eligibility slot (stagger 0: plain ``S_f <= v(now)``) plus
        # the finish heap backing the work-conserving fallback.
        return {"finish": True, "staggers": (0.0,)}

    def _select_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        index = self._index
        if index is None:  # dequeue routes here only in indexed mode
            raise SchedulerError("indexed selection invoked without an index")
        return index.min_eligible_finish(0, self._eligibility_threshold(vnow))

    def _trace_eligible_count(self, thread_id: int, vnow: VirtualTime) -> int:
        # Tracing only: |{ f in A : S_f <= v(now) }|, the all-or-nothing
        # eligibility set whose emptiness marks fallback dispatches.
        return sum(
            1
            for state in self._backlogged.values()
            if self._eligible(state.start_tag, vnow)
        )
