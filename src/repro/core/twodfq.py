"""Two-Dimensional Fair Queuing -- the paper's contribution (§4, §5).

2DFQ modifies WF2Q's eligibility criterion so that a request becomes
eligible *at different times on different worker threads*, breaking
WF2Q's "all or nothing" behaviour.  In a pool of ``n`` threads, request
``r`` is eligible on thread ``i`` (``0 <= i < n``) at virtual time

    S(r) - (i / n) * l(r)

so eligibility is uniformly staggered across threads in intervals of
``l(r) / n``.  Small requests become eligible on high-index threads
first and tend to be serviced there; low-index threads, seeing no
eligible small requests, end up servicing the large ones.  The practical
effect is a partitioning of requests across threads by size, which keeps
large requests from taking over the whole pool and blocking small ones
(the bursty schedules of Figures 5c/5d become the smooth schedule of
Figure 6b).

2DFQ retains MSF2Q's worst-case fairness bound (Theorem 1): the staggered
eligibility never delays a request past its GPS start time, so adding the
regulator does not change the ``N * Lmax`` bound.

**2DFQ^E** (§5) is the same scheduling logic driven by the
*pessimistic* cost estimator plus the retroactive- and refresh-charging
bookkeeping implemented in :class:`~repro.core.vt_base.VirtualTimeScheduler`.
Figure 7's eligibility test uses the per-tenant/API estimate
``L^f_max`` in place of the true size:

    S_f - (i / n) * L^f_max < v(now)

Unpredictable tenants therefore carry large estimates, are eligible
mostly on low-index threads, and stay away from predictable small
requests -- pessimism turns estimation error into spatial isolation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..errors import SchedulerError
from ..estimation.base import CostEstimator
from ..estimation.pessimistic import PessimisticEstimator
from ..units import Cost, Rate, Scalar, VirtualTime
from .scheduler import MIN_COST, TenantState
from .vt_base import VirtualTimeScheduler

__all__ = ["TwoDFQScheduler", "TwoDFQEScheduler"]


class TwoDFQScheduler(VirtualTimeScheduler):
    """2DFQ: WF2Q with per-thread staggered eligibility.

    With the default oracle estimator this is the known-cost 2DFQ of
    paper §4; with any other estimator the eligibility stagger uses the
    estimated cost, which is exactly Figure 7's formulation.
    """

    name = "2dfq"

    def _select(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        # Figure 7, line 20: E_now = { f in A : S_f - (i/n) L^f_max < v(now) }.
        # The stagger is expressed in virtual-time units; following the
        # paper's formulation the offset is the raw estimated cost (the
        # evaluation uses equal weights, for which this is exact).
        #
        # Single fused pass over the backlogged set: eligibility and the
        # min-finish choice share one estimate per tenant.  Estimates are
        # clamped to the framework-wide MIN_COST and gated on the shared
        # eligibility threshold, so the selection key can never disagree
        # with the amount ``dequeue`` charges.
        stagger = thread_id / self._num_threads
        threshold = self._eligibility_threshold(vnow)
        estimate_fn = self._estimator.estimate
        best: Optional[TenantState] = None
        best_key = (float("inf"), float("inf"), 0)
        for state in self._backlogged.values():
            head = state.queue[0]
            estimate = estimate_fn(head)
            if estimate < MIN_COST:
                estimate = MIN_COST
            if state.start_tag - stagger * estimate <= threshold:
                key = (
                    state.start_tag + estimate / state.weight,
                    estimate,
                    head.seqno,
                )
                if key < best_key:
                    best, best_key = state, key
        return best

    # Work-conserving fallback inherited: smallest finish tag overall.
    # On thread n-1 the stagger is largest, so small requests are usually
    # eligible there and the fallback fires rarely; on thread 0 the
    # eligibility set equals WF2Q's.

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        # One eligibility slot per worker thread: thread ``i`` gates on
        # the staggered start tag ``S_f - (i/n) * l_head``.  Touch cost
        # is O(n log N); dequeue drops to O(log N) amortized per thread,
        # a win whenever backlogged tenants far outnumber threads.
        n = self._num_threads
        return {
            "finish": True,
            "staggers": tuple(i / n for i in range(n)),
        }

    def _select_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        index = self._index
        if index is None:  # dequeue routes here only in indexed mode
            raise SchedulerError("indexed selection invoked without an index")
        return index.min_eligible_finish(
            thread_id, self._eligibility_threshold(vnow)
        )

    # -- tracing hooks ---------------------------------------------------------

    def _trace_stagger(self, thread_id: int) -> float:
        return thread_id / self._num_threads

    def _trace_eligible_count(self, thread_id: int, vnow: VirtualTime) -> int:
        # Tracing only: the staggered eligibility set of Figure 7 line 20
        # for this specific thread, |{ f : S_f - (i/n) L^f_max <= v }|.
        stagger = thread_id / self._num_threads
        threshold = self._eligibility_threshold(vnow)
        estimate_fn = self._estimator.estimate
        count = 0
        for state in self._backlogged.values():
            estimate = estimate_fn(state.queue[0])
            if estimate < MIN_COST:
                estimate = MIN_COST
            if state.start_tag - stagger * estimate <= threshold:
                count += 1
        return count


class TwoDFQEScheduler(TwoDFQScheduler):
    """2DFQ^E: 2DFQ with pessimistic cost estimation (Figure 7).

    Convenience subclass wiring in the
    :class:`~repro.estimation.pessimistic.PessimisticEstimator` with the
    paper's default ``alpha = 0.99``.  Retroactive and refresh charging
    come from the shared virtual-time framework.
    """

    name = "2dfq-e"

    def __init__(
        self,
        num_threads: int,
        thread_rate: Rate = 1.0,
        estimator: Optional[CostEstimator] = None,
        alpha: Scalar = 0.99,
        initial_estimate: Cost = 1.0,
        indexed: Union[bool, str] = "auto",
    ) -> None:
        if estimator is None:
            estimator = PessimisticEstimator(
                alpha=alpha, initial_estimate=initial_estimate
            )
        super().__init__(num_threads, thread_rate, estimator, indexed=indexed)
