"""FIFO scheduling: a single shared admission queue.

This is the status quo the paper motivates against (§1: "requests to the
NameNode wait in an admission queue and are processed in FIFO order by a
set of worker threads").  It provides no isolation whatsoever -- an
aggressive tenant's burst occupies the whole queue -- and serves as the
do-nothing baseline in examples and tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..units import Rate, SimTime
from .request import Request
from .scheduler import Scheduler, TenantState

__all__ = ["FIFOScheduler"]


class FIFOScheduler(Scheduler):
    """Global first-in-first-out queue across all tenants."""

    name = "fifo"

    def __init__(self, num_threads: int, thread_rate: Rate = 1.0) -> None:
        super().__init__(num_threads, thread_rate)
        self._queue: Deque[Request] = deque()

    def enqueue(self, request: Request, now: SimTime) -> None:
        self._state_for(request)  # track tenants for introspection
        self._queue.append(request)
        self._note_enqueued(request)

    def dequeue(self, thread_id: int, now: SimTime) -> Optional[Request]:
        self._check_thread(thread_id)
        if not self._queue:
            return None
        request = self._queue.popleft()
        self._note_dispatched(request, thread_id, now)
        return request

    def _cancel_queued(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        # FIFO keeps one global queue; per-tenant queues are unused.
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        return True
