"""Scheduler registry: build any scheduler (and its paper ^E variant) by name.

The names follow the paper's terminology:

=============  ==============================================================
``fifo``       shared FIFO queue (the unmanaged baseline)
``round-robin`` per-tenant round robin (cost-oblivious)
``wfq``        WFQ / MSFQ with oracle costs
``wf2q``       work-conserving multi-thread WF2Q with oracle costs
``msf2q``      Blanquer & Özden's multi-server WF2Q
``sfq``        start-time fair queuing
``wf2q+``      WF2Q with the WF2Q+ virtual time
``drr``        deficit round robin
``2dfq``       Two-Dimensional Fair Queuing with oracle costs (§4)
``wfq-e``      WFQ with per-tenant/API EMA estimation (§6.2 baseline)
``wf2q-e``     WF2Q with per-tenant/API EMA estimation (§6.2 baseline)
``2dfq-e``     2DFQ with pessimistic estimation -- Figure 7 (§5)
=============  ==============================================================

All ^E variants share the retroactive- and refresh-charging bookkeeping,
matching the paper's methodology ("we applied them to all algorithms, and
our experiment results only reflect the differences between scheduling
logic and estimation strategy", §6.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Type

from ..estimation import CostEstimator, EMAEstimator
from .drr import DRRScheduler
from .fifo import FIFOScheduler
from .msf2q import MSF2QScheduler
from .round_robin import RoundRobinScheduler
from .scheduler import Scheduler
from .sfq import SFQScheduler
from .twodfq import TwoDFQEScheduler, TwoDFQScheduler
from .vt_base import VirtualTimeScheduler
from .wf2q import WF2QScheduler
from .wf2qplus import WF2QPlusScheduler
from .wfq import WFQScheduler

__all__ = ["make_scheduler", "scheduler_names", "SCHEDULER_CLASSES"]

#: Plain (non-estimated) scheduler classes by registry name.
SCHEDULER_CLASSES: Dict[str, Type[Scheduler]] = {
    cls.name: cls
    for cls in (
        FIFOScheduler,
        RoundRobinScheduler,
        WFQScheduler,
        WF2QScheduler,
        MSF2QScheduler,
        SFQScheduler,
        WF2QPlusScheduler,
        DRRScheduler,
        TwoDFQScheduler,
        TwoDFQEScheduler,
    )
}


def _ema_variant(
    base: Type[VirtualTimeScheduler],
) -> Callable[..., Scheduler]:
    """Factory for a scheduler driven by the paper's EMA estimator."""

    def build(
        num_threads: int,
        thread_rate: float = 1.0,
        estimator: Optional[CostEstimator] = None,
        alpha: float = 0.99,
        initial_estimate: float = 1.0,
        **kwargs: Any,
    ) -> Scheduler:
        if estimator is None:
            estimator = EMAEstimator(alpha=alpha, initial_estimate=initial_estimate)
        return base(num_threads, thread_rate, estimator=estimator, **kwargs)

    return build


_FACTORIES: Dict[str, Callable[..., Scheduler]] = {
    name: cls for name, cls in SCHEDULER_CLASSES.items()
}
_FACTORIES["wfq-e"] = _ema_variant(WFQScheduler)
_FACTORIES["wf2q-e"] = _ema_variant(WF2QScheduler)
_FACTORIES["sfq-e"] = _ema_variant(SFQScheduler)
_FACTORIES["msf2q-e"] = _ema_variant(MSF2QScheduler)


def scheduler_names() -> list[str]:
    """All registered scheduler names, sorted."""
    return sorted(_FACTORIES)


def make_scheduler(
    name: str, num_threads: int, thread_rate: float = 1.0, **kwargs: Any
) -> Scheduler:
    """Construct a scheduler by registry name.

    >>> make_scheduler("2dfq", num_threads=16, thread_rate=1000.0).name
    '2dfq'
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise KeyError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory(num_threads, thread_rate, **kwargs)
