"""Request model shared by every scheduler and the simulator.

A :class:`Request` is the unit of work in a multi-tenant shared process:
one API invocation by one tenant, with a *true* resource cost that is in
general unknown to the scheduler at schedule time (paper §1, §3.2).

The object carries three groups of state:

* immutable identity -- tenant, API name, true cost, arrival time;
* scheduling bookkeeping -- the cost the scheduler *charged* when it
  dispatched the request and the remaining pre-paid credit used by
  retroactive/refresh charging (paper §5, Figure 7);
* lifecycle timestamps -- dispatch/completion wallclock times and the
  worker-thread index, filled in by the simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..units import Cost, Duration, SimTime, Weight

__all__ = ["Request", "RequestPhase"]

_SEQUENCE = itertools.count()


class RequestPhase:
    """Lifecycle phases of a request (plain constants, not an Enum, to keep
    comparisons cheap in the simulator's inner loop)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    #: Removed from the scheduler before completion (client timeout or
    #: worker crash).  A cancelled request may be re-submitted -- crash
    #: re-dispatch and deadline retries do -- and then re-enters QUEUED.
    CANCELLED = "cancelled"


@dataclass(eq=False)
class Request:
    """One tenant request flowing through the scheduler.

    Parameters
    ----------
    tenant_id:
        Identifier of the tenant (flow) that issued the request.
    cost:
        True resource cost in abstract cost units.  The scheduler must not
        read this unless it is driven with the oracle estimator; the
        simulator uses it to determine execution time.
    api:
        API name the request invokes (``"A"`` .. ``"K"`` for the
        Azure-like workload model).  Cost estimators key their state on
        ``(tenant_id, api)`` as described in paper §5.
    arrival_time:
        Wallclock arrival time in seconds.  Filled by the server on
        submission when left at the default ``-1.0``.
    weight:
        Weight of the issuing tenant, cached on the request for
        convenience.
    """

    tenant_id: str
    cost: Cost
    api: str = "default"
    arrival_time: SimTime = -1.0
    weight: Weight = 1.0

    #: Monotonically increasing global sequence number; used as the final
    #: deterministic tie-breaker in every scheduler.
    seqno: int = field(default_factory=lambda: next(_SEQUENCE))

    # -- scheduling bookkeeping (owned by the scheduler) ------------------
    #: Cost the scheduler charged the tenant's virtual clock at dispatch
    #: time (``l_r`` in the paper; equals ``cost`` under oracle costs).
    charged_cost: Cost = 0.0
    #: Remaining pre-paid credit ``c_f^j`` from Figure 7 -- how much of the
    #: charged cost has not yet been matched by measured usage.
    credit: Cost = 0.0
    #: Measured resource usage reported to the scheduler so far (through
    #: refresh charging and completion).
    reported_usage: Cost = 0.0

    # -- lifecycle (owned by the simulator) --------------------------------
    phase: str = RequestPhase.QUEUED
    dispatch_time: SimTime = -1.0
    completion_time: SimTime = -1.0
    thread_id: int = -1

    #: Optional back-reference to the workload source that issued the
    #: request; closed-loop sources use it to submit follow-up work.
    source: Optional[Any] = field(default=None, repr=False)

    @property
    def key(self) -> tuple[str, str]:
        """Estimator key: requests are grouped per tenant per API."""
        return (self.tenant_id, self.api)

    @property
    def latency(self) -> Duration:
        """Queueing + service time; only valid once the request is DONE."""
        if self.completion_time < 0 or self.arrival_time < 0:
            raise ValueError("latency undefined before completion")
        return self.completion_time - self.arrival_time

    @property
    def queueing_delay(self) -> Duration:
        """Time spent waiting in the scheduler before dispatch."""
        if self.dispatch_time < 0 or self.arrival_time < 0:
            raise ValueError("queueing delay undefined before dispatch")
        return self.dispatch_time - self.arrival_time

    def __repr__(self) -> str:  # concise: appears in simulator logs
        return (
            f"Request({self.tenant_id}/{self.api}#{self.seqno}"
            f" cost={self.cost:g} phase={self.phase})"
        )
