"""Scheduler interface and shared per-tenant state.

A scheduler in this library is the object sitting between the admission
queue and the worker threads of a shared multi-tenant process (paper §2):
incoming requests are enqueued into logical per-tenant queues, and each
time a worker thread goes idle it asks the scheduler to pick the next
request *for that specific thread* -- the thread index matters, because
2DFQ deliberately makes eligibility thread-dependent.

The contract with the simulator's :class:`~repro.simulator.server.ThreadPoolServer`:

1. ``enqueue(request, now)`` on arrival;
2. ``dequeue(thread_id, now)`` whenever thread ``thread_id`` is idle;
   returns a request to execute or ``None`` if nothing is queued;
3. ``refresh(request, usage, now)`` periodically while the request runs,
   reporting the resource usage measured since the previous report
   (refresh charging, paper §5);
4. ``complete(request, usage, now)`` exactly once at completion with the
   final usage increment (retroactive charging, paper §5);
5. ``cancel(request, now)`` when a queued or running request is removed
   before completion (client deadline, worker crash).  Cancellation
   refunds every charge the scheduler applied, so a cancelled request
   leaves the virtual-time state as if it had never been dispatched,
   and is idempotent: cancelling a DONE or already-CANCELLED request is
   a no-op returning ``False``.

All schedulers are *work conserving*: ``dequeue`` returns a request
whenever any request is queued (paper §2, "Desirable Properties").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, ClassVar, Deque, Dict, List, Optional, Sequence

from ..errors import ConfigurationError, SchedulerError
from ..units import Cost, Rate, SimTime, VirtualTime, Weight
from .request import Request, RequestPhase

if TYPE_CHECKING:  # import cycle: repro.obs is instrumented *by* core
    from ..obs.tracer import Tracer

__all__ = ["Scheduler", "TenantState", "MIN_COST"]

#: Lower bound applied to every cost estimate so zero-cost requests can
#: never produce zero-width virtual-time slots (and divide-by-zero in
#: downstream bookkeeping).
MIN_COST = 1e-9


class TenantState:
    """Mutable per-tenant scheduling state shared by all schedulers.

    Attributes
    ----------
    start_tag:
        The tenant's virtual start time ``S_f`` (Figure 7): the virtual
        time at which its *next* request would begin service under GPS.
    queue:
        FIFO of the tenant's pending requests.  Fair queuing preserves
        arrival order within a flow.
    running:
        Number of the tenant's requests currently executing on workers.
    active:
        Whether the tenant currently contributes weight to the virtual
        clock (has queued or running work).
    deficit:
        Deficit counter; used only by DRR, kept here so the state object
        can be shared by every scheduler implementation.
    sel_version:
        Monotone invalidation counter owned by
        :class:`~repro.core.selection.SelectionIndex`: heap entries
        snapshot it at push time and are discarded once it moves on.
        Schedulers running without an index never touch it.
    """

    __slots__ = (
        "tenant_id",
        "weight",
        "queue",
        "start_tag",
        "running",
        "active",
        "deficit",
        "sel_version",
    )

    def __init__(self, tenant_id: str, weight: Weight) -> None:
        if weight <= 0:
            raise ConfigurationError(f"tenant weight must be positive, got {weight}")
        self.tenant_id = tenant_id
        self.weight: Weight = weight
        self.queue: Deque[Request] = deque()
        self.start_tag: VirtualTime = 0.0
        self.running = 0
        self.active = False
        self.deficit: Cost = 0.0
        self.sel_version = 0

    @property
    def backlogged(self) -> bool:
        """True when the tenant has at least one queued request."""
        return bool(self.queue)

    def __repr__(self) -> str:
        return (
            f"TenantState({self.tenant_id}, S={self.start_tag:.6g}, "
            f"queued={len(self.queue)}, running={self.running})"
        )


class Scheduler(ABC):
    """Abstract base class for multi-thread request schedulers."""

    #: Registry name; subclasses override.
    name: ClassVar[str] = "scheduler"

    def __init__(self, num_threads: int, thread_rate: Rate = 1.0) -> None:
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        if thread_rate <= 0:
            raise ConfigurationError(
                f"thread_rate must be positive, got {thread_rate}"
            )
        self._num_threads = int(num_threads)
        self._thread_rate = float(thread_rate)
        self._tenants: Dict[str, TenantState] = {}
        self._size = 0
        self._dispatched = 0
        self._completed = 0
        self._cancelled = 0
        #: Attached :class:`repro.obs.Tracer`, or ``None`` (the default).
        #: Instrumented subclasses guard every emission site with a single
        #: ``if self._trace is not None`` check -- the whole disabled-mode
        #: overhead contract (see :mod:`repro.obs.tracer`).
        self._trace: Optional["Tracer"] = None

    # -- introspection -------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return self._num_threads

    @property
    def thread_rate(self) -> Rate:
        return self._thread_rate

    @property
    def capacity(self) -> Rate:
        """Aggregate capacity of the pool in cost units per second."""
        return self._num_threads * self._thread_rate

    @property
    def backlog(self) -> int:
        """Number of queued (not yet dispatched) requests."""
        return self._size

    @property
    def dispatched_count(self) -> int:
        return self._dispatched

    @property
    def completed_count(self) -> int:
        return self._completed

    @property
    def cancelled_count(self) -> int:
        return self._cancelled

    def tenant_state(self, tenant_id: str) -> Optional[TenantState]:
        """Expose per-tenant state (monitoring and tests)."""
        return self._tenants.get(tenant_id)

    def tenants(self) -> Dict[str, TenantState]:
        """All tenants ever seen, keyed by id (read-only by convention)."""
        return self._tenants

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The attached tracer, or ``None`` when tracing is off."""
        return self._trace

    def attach_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach a :class:`repro.obs.Tracer` (or detach with ``None``).

        A disabled tracer is stored as ``None`` so the hot path keeps
        its single-attribute-check fast path; only the virtual-time
        schedulers emit events (FIFO/RR/DRR accept the attachment but
        have no instrumented decision points).
        """
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )

    # -- scheduler contract ---------------------------------------------------

    @abstractmethod
    def enqueue(self, request: Request, now: SimTime) -> None:
        """Admit ``request`` at simulated time ``now``."""

    @abstractmethod
    def dequeue(self, thread_id: int, now: SimTime) -> Optional[Request]:
        """Pick the next request for worker ``thread_id``, or ``None``."""

    def dequeue_batch(
        self, thread_ids: Sequence[int], now: SimTime
    ) -> List[Request]:
        """Dispatch one request per thread in ``thread_ids``, in order,
        stopping early when the backlog drains.

        Semantically identical to calling :meth:`dequeue` once per
        thread id at the same ``now`` and collecting the non-``None``
        results (the batch property tests pin this request-for-request,
        including tracer event streams).  Subclasses may override to
        amortize per-dispatch bookkeeping across the batch --
        :class:`~repro.core.vt_base.VirtualTimeScheduler` does -- but
        must preserve the sequential semantics exactly.
        """
        batch: List[Request] = []
        for thread_id in thread_ids:
            request = self.dequeue(thread_id, now)
            if request is None:
                break
            batch.append(request)
        return batch

    def refresh(self, request: Request, usage: Cost, now: SimTime) -> None:
        """Report interim resource usage of a running request (default: ignore)."""
        request.reported_usage += usage

    def complete(self, request: Request, usage: Cost, now: SimTime) -> None:
        """Report completion with the final usage increment."""
        if request.phase == RequestPhase.CANCELLED:
            return  # stale completion racing a cancel: already refunded
        request.reported_usage += usage
        request.phase = RequestPhase.DONE
        self._completed += 1

    def cancel(self, request: Request, now: SimTime) -> bool:
        """Remove a queued or running request, refunding every charge.

        Mirrors the reconciliation ``complete()`` performs, but in the
        other direction: the tenant's virtual-time (or deficit) state is
        restored to what it would be had the request never been
        dispatched.  Returns ``True`` if the request was cancelled and
        ``False`` for a stale cancel (request already DONE or CANCELLED,
        or unknown to this scheduler) -- so cancel/complete races are
        harmless in either order.

        The cancelled request's charging bookkeeping is reset so it can
        be re-submitted (crash re-dispatch, deadline retry) with its
        identity -- seqno, arrival time -- intact.
        """
        phase = request.phase
        if phase != RequestPhase.QUEUED and phase != RequestPhase.RUNNING:
            return False
        state = self._tenants.get(request.tenant_id)
        if state is None:
            return False
        if phase == RequestPhase.QUEUED:
            if not self._cancel_queued(state, request, now):
                return False
            self._size -= 1
        else:
            if not self._cancel_running(state, request, now):
                return False
        request.phase = RequestPhase.CANCELLED
        request.charged_cost = 0.0
        request.credit = 0.0
        request.reported_usage = 0.0
        self._cancelled += 1
        trace = self._trace
        if trace is not None:
            trace.cancel(
                now,
                self._trace_virtual_time(),
                state.tenant_id,
                seqno=request.seqno,
                api=request.api,
                was_running=phase == RequestPhase.RUNNING,
                backlog=self._size,
            )
        return True

    # -- cancellation hooks ----------------------------------------------------

    def _cancel_queued(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        """Remove a queued request from its tenant queue.  Subclasses
        with auxiliary structures (global FIFO queue, round-robin ring,
        selection index) override and clean those up too."""
        try:
            state.queue.remove(request)
        except ValueError:
            return False
        return True

    def _cancel_running(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        """Refund the dispatch-time charge of a running request.  The
        base schedulers (FIFO, round-robin) charge nothing at dispatch,
        so there is nothing to undo."""
        return True

    def _trace_virtual_time(self) -> Optional[VirtualTime]:
        """Virtual time recorded in cancel trace events (``None`` for
        schedulers without a virtual clock)."""
        return None

    # -- shared helpers --------------------------------------------------------

    def _state_for(self, request: Request) -> TenantState:
        """Fetch or create the tenant state for a request's tenant."""
        state = self._tenants.get(request.tenant_id)
        if state is None:
            state = TenantState(request.tenant_id, request.weight)
            self._tenants[request.tenant_id] = state
        return state

    def _check_thread(self, thread_id: int) -> None:
        if not 0 <= thread_id < self._num_threads:
            raise SchedulerError(
                f"thread_id {thread_id} outside pool of {self._num_threads}"
            )

    def _note_enqueued(self, request: Request) -> None:
        request.phase = RequestPhase.QUEUED
        self._size += 1

    def _note_dispatched(self, request: Request, thread_id: int, now: SimTime) -> None:
        request.phase = RequestPhase.RUNNING
        request.thread_id = thread_id
        request.dispatch_time = now
        self._size -= 1
        self._dispatched += 1

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threads={self._num_threads}, "
            f"rate={self._thread_rate:g}, backlog={self._size})"
        )
