"""WF2Q+ over an aggregated thread pool.

WF2Q+ (Bennett & Zhang [5]) keeps WF2Q's eligibility rule but replaces
the GPS-tracking virtual time with the cheaper function

    V(t2) = max(V(t1) + C * (t2 - t1) / Phi,  min_f S_f)

which never lets virtual time fall behind the smallest start tag of a
backlogged flow.  The paper notes such algorithms "improve algorithmic
complexity but do not improve fairness bounds" and behave like WF2Q in
practice (§6); we include it to verify that claim.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..units import SimTime, VirtualTime
from .request import Request
from .scheduler import TenantState
from .wf2q import WF2QScheduler

__all__ = ["WF2QPlusScheduler"]


class WF2QPlusScheduler(WF2QScheduler):
    """WF2Q with the WF2Q+ lower-bounded virtual time function."""

    name = "wf2q+"

    def _min_backlogged_start(self) -> Optional[VirtualTime]:
        if self._index is not None:
            return self._index.min_start_tag()
        if self._backlogged:
            return min(state.start_tag for state in self._backlogged.values())
        return None

    def _adjust_virtual_time(self, vnow: VirtualTime) -> VirtualTime:
        min_start = self._min_backlogged_start()
        if min_start is not None and min_start > vnow:
            self._clock.jump_to(min_start)
            return min_start
        return vnow

    def _cancel_running(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        if not super()._cancel_running(state, request, now):
            return False
        # The cancelled request's start tag may have driven a jump of the
        # lower-bounded virtual-time function; retract any elevation the
        # surviving backlog no longer supports (the next ``jump_to``
        # restores ``V >= min_f S_f``, so this is self-healing).
        min_start = self._min_backlogged_start()
        self._clock.rewind_jump(
            min_start if min_start is not None else float("-inf")
        )
        return True

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        # WF2Q's eligibility slot and fallback, plus the start heap that
        # backs the ``min_f S_f`` term of the virtual-time function.
        return {"finish": True, "start": True, "staggers": (0.0,)}
