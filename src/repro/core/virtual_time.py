"""System virtual time for fair queuing over an aggregated thread pool.

Paper §2 ("Fair Queuing Background"): the system maintains a virtual time
``v(t)`` that advances at the rate at which backlogged tenants receive
service.  For ``k`` active tenants of total weight ``Phi`` sharing a pool
of aggregate capacity ``C`` (``num_threads * rate`` cost-units/second),
virtual time advances at ``C / Phi`` units per wallclock second -- e.g.
four equal tenants on two 100-unit/s threads advance ``v`` at 50 units/s,
exactly the example given in the paper.

The clock is piecewise linear; it is advanced lazily whenever the
scheduler observes an event, and its slope changes whenever the active
set (and hence ``Phi``) changes.  When no tenant is active, virtual time
freezes; newly arriving tenants fast-forward their start tags with
``max(S_f, v(now))`` (Figure 7, line 4), so a frozen clock is harmless.
"""

from __future__ import annotations

from ..errors import ConfigurationError, SchedulerError
from ..units import Rate, SimTime, VirtualTime, Weight

__all__ = ["VirtualClock"]


class VirtualClock:
    """Piecewise-linear virtual time driven by the active tenant weight.

    Parameters
    ----------
    capacity:
        Aggregate service capacity of the thread pool in cost units per
        second (``num_threads * thread_rate``).
    """

    __slots__ = (
        "_capacity",
        "_value",
        "_base",
        "_last_wallclock",
        "_active_weight",
    )

    def __init__(self, capacity: Rate) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self._capacity: Rate = float(capacity)
        self._value: VirtualTime = 0.0
        self._base: VirtualTime = 0.0
        self._last_wallclock: SimTime = 0.0
        self._active_weight: Weight = 0.0

    # -- observation -------------------------------------------------------

    @property
    def capacity(self) -> Rate:
        """Aggregate capacity in cost units per second."""
        return self._capacity

    @property
    def active_weight(self) -> Weight:
        """Sum of weights of currently active tenants."""
        return self._active_weight

    @property
    def value(self) -> VirtualTime:
        """Virtual time at the last :meth:`advance` call."""
        return self._value

    @property
    def rate(self) -> float:
        """Current slope ``dv/dt`` (0 when no tenant is active)."""
        if self._active_weight <= 0.0:
            return 0.0
        return self._capacity / self._active_weight

    # -- mutation -----------------------------------------------------------

    def advance(self, now: SimTime) -> VirtualTime:
        """Advance virtual time to simulated ``now`` and return it.

        ``now`` must be monotonically non-decreasing across calls; the
        discrete-event simulator guarantees this.
        """
        if now < self._last_wallclock - 1e-12:
            raise SchedulerError(
                f"virtual clock moved backwards: {now} < {self._last_wallclock}"
            )
        if now > self._last_wallclock:
            if self._active_weight > 0.0:
                elapsed = now - self._last_wallclock
                increment = elapsed * self._capacity / self._active_weight
                self._value += increment
                self._base += increment
            self._last_wallclock = now
        return self._value

    def add_weight(self, weight: Weight, now: SimTime) -> None:
        """Register an activating tenant.  Call :meth:`advance` first is
        unnecessary -- this method advances internally so the slope change
        takes effect exactly at ``now``."""
        if weight <= 0:
            raise ConfigurationError(f"tenant weight must be positive, got {weight}")
        self.advance(now)
        self._active_weight += weight

    def remove_weight(self, weight: Weight, now: SimTime) -> None:
        """Deregister a deactivating tenant."""
        self.advance(now)
        self._active_weight -= weight
        if self._active_weight < -1e-9:
            raise SchedulerError(
                f"active weight went negative: {self._active_weight}"
            )
        if self._active_weight < 1e-12:
            self._active_weight = 0.0

    def jump_to(self, value: VirtualTime) -> None:
        """Raise virtual time to ``value`` if it is ahead of the clock.

        Used by the WF2Q+ virtual-time function
        ``V(t) = max(V(t-) + dv, min_f S_f)``; never moves time backwards.
        """
        if value > self._value:
            self._value = value

    def rewind_jump(self, floor: VirtualTime) -> None:
        """Retract jump elevation down to ``max(base, floor)``, where the
        base is the wall-driven value had no jump ever happened.

        Used when a cancelled request's start tag drove a ``jump_to``:
        the next ``jump_to`` re-establishes ``V >= min_f S_f`` over the
        surviving backlog, so retracting is self-healing.  Never moves
        below the base, and never moves time forwards.
        """
        target = max(self._base, floor)
        if target < self._value:
            self._value = target

    def __repr__(self) -> str:
        return (
            f"VirtualClock(v={self._value:.6g}, t={self._last_wallclock:.6g}, "
            f"phi={self._active_weight:g}, C={self._capacity:g})"
        )
