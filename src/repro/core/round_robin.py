"""Per-tenant round-robin scheduling.

One request per tenant per turn, ignoring cost entirely.  Round-robin
provides request-count fairness but not resource fairness: a tenant with
4-orders-of-magnitude larger requests (paper §3.1) receives 4 orders of
magnitude more service.  Included as a baseline for examples and to
demonstrate why cost-aware fair queuing is needed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..units import Rate, SimTime
from .request import Request
from .scheduler import Scheduler, TenantState

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Cycles through backlogged tenants, one request each."""

    name = "round-robin"

    def __init__(self, num_threads: int, thread_rate: Rate = 1.0) -> None:
        super().__init__(num_threads, thread_rate)
        # Ring of backlogged tenants; a tenant appears at most once.
        self._ring: Deque[TenantState] = deque()
        self._in_ring: set[str] = set()

    def enqueue(self, request: Request, now: SimTime) -> None:
        state = self._state_for(request)
        state.queue.append(request)
        if state.tenant_id not in self._in_ring:
            self._ring.append(state)
            self._in_ring.add(state.tenant_id)
        self._note_enqueued(request)

    def dequeue(self, thread_id: int, now: SimTime) -> Optional[Request]:
        self._check_thread(thread_id)
        if not self._ring:
            return None
        state = self._ring.popleft()
        request = state.queue.popleft()
        if state.queue:
            self._ring.append(state)  # back of the ring for its next turn
        else:
            self._in_ring.discard(state.tenant_id)
        self._note_dispatched(request, thread_id, now)
        return request

    def _cancel_queued(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        if not super()._cancel_queued(state, request, now):
            return False
        if not state.queue and state.tenant_id in self._in_ring:
            # dequeue pops the ring head unconditionally, so an emptied
            # tenant must leave the ring immediately.
            self._ring.remove(state)
            self._in_ring.discard(state.tenant_id)
        return True
