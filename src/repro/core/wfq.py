"""Weighted Fair Queuing over an aggregated thread pool.

WFQ (Demers et al.; Parekh & Gallager [46]) schedules the pending request
with the lowest *virtual finish time*.  On multiple aggregated links this
is the MSFQ algorithm of Blanquer & Özden [8]; following the paper we
"retain the name WFQ in the interest of familiarity" (§2).

Known weakness reproduced here (paper §4, Figure 5c): because small
requests always carry the earliest finish tags, WFQ services all small
tenants in a burst, then all large tenants together, occupying the whole
pool with expensive requests -- a bursty schedule.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SchedulerError
from ..units import VirtualTime
from .scheduler import TenantState
from .vt_base import VirtualTimeScheduler

__all__ = ["WFQScheduler"]


class WFQScheduler(VirtualTimeScheduler):
    """Smallest-finish-tag-first across all backlogged tenants."""

    name = "wfq"

    def _select(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        # No eligibility criterion: every backlogged tenant is a candidate.
        return self._min_finish(self._backlogged.values())

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        return {"finish": True}

    def _select_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        index = self._index
        if index is None:  # dequeue routes here only in indexed mode
            raise SchedulerError("indexed selection invoked without an index")
        return index.min_finish()
