"""Deficit Round-Robin over an aggregated thread pool.

DRR (Shreedhar & Varghese [50]) visits backlogged flows in a ring; each
visit adds a *quantum* to the flow's deficit counter, and the flow may
dispatch requests while its deficit covers their (estimated) cost.  The
paper implemented DRR and found its behaviour "similar or worse" than
WFQ/WF2Q (§6) -- it improves algorithmic complexity, not burstiness.

Multi-thread adaptation: all worker threads share a single ring and the
visit state machine, so each ``dequeue`` continues the scan where the
previous one left off.  Costs are charged at dispatch using the
estimator; retroactive charging reconciles the deficit with measured
usage at completion, which keeps DRR resistant to the §5 estimate-gaming
attack just like the tag-based schedulers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import ConfigurationError, SchedulerError
from ..units import Cost, Rate, SimTime
from ..estimation.base import CostEstimator
from ..estimation.oracle import OracleEstimator
from .request import Request, RequestPhase
from .scheduler import MIN_COST, Scheduler, TenantState

__all__ = ["DRRScheduler"]


class DRRScheduler(Scheduler):
    """Deficit round-robin with estimator-based costs.

    Parameters
    ----------
    quantum:
        Deficit added per visit.  When ``None`` (default) the quantum
        adapts to the largest cost estimate seen so far, guaranteeing
        that any head-of-line request is coverable within one extra
        round regardless of the 4-orders-of-magnitude cost spread.
    """

    name = "drr"

    def __init__(
        self,
        num_threads: int,
        thread_rate: Rate = 1.0,
        estimator: Optional[CostEstimator] = None,
        quantum: Optional[Cost] = None,
    ) -> None:
        super().__init__(num_threads, thread_rate)
        if quantum is not None and quantum <= 0:
            raise ConfigurationError(f"quantum must be positive, got {quantum}")
        self._estimator = estimator if estimator is not None else OracleEstimator()
        self._configured_quantum = quantum
        self._adaptive_quantum: Cost = 1.0
        self._ring: Deque[TenantState] = deque()
        self._in_ring: set[str] = set()
        # Whether the flow at the ring head has received its quantum for
        # the current visit.  Classic DRR grants the quantum exactly once
        # per visit; the flow then serves while its deficit lasts and the
        # visit ends.
        self._visit_granted = False
        # Deficit-reset epochs: a forfeit (emptied flow) or ring re-join
        # zeroes the deficit, which also voids any refund owed for
        # debits made before the reset.  Cancel consults these so a
        # cancelled request refunds exactly the debits still standing.
        self._epoch: dict[str, int] = {}
        self._debits: dict[int, tuple[int, Cost]] = {}

    @property
    def estimator(self) -> CostEstimator:
        return self._estimator

    @property
    def quantum(self) -> Cost:
        if self._configured_quantum is not None:
            return self._configured_quantum
        return self._adaptive_quantum

    # -- scheduler contract ----------------------------------------------------

    def enqueue(self, request: Request, now: SimTime) -> None:
        state = self._state_for(request)
        state.queue.append(request)
        if state.tenant_id not in self._in_ring:
            state.deficit = 0.0  # flows joining the ring start with no credit
            self._bump_epoch(state.tenant_id)
            self._ring.append(state)
            self._in_ring.add(state.tenant_id)
        self._note_enqueued(request)

    def dequeue(self, thread_id: int, now: SimTime) -> Optional[Request]:
        self._check_thread(thread_id)
        visits = 0
        # Each full pass around the ring grows every deficit by one
        # quantum; with the adaptive quantum at least matching the
        # largest estimate, a handful of passes always suffices.
        max_visits = 16 * (len(self._ring) + 1)
        while self._ring:
            visits += 1
            if visits > max_visits:
                raise SchedulerError("DRR ring failed to converge")
            state = self._ring[0]
            if not state.queue:
                # Drained by another worker mid-round; an emptied flow
                # forfeits its deficit (classic DRR).
                self._end_visit(state, forfeit=True)
                continue
            estimate = max(self._estimator.estimate(state.queue[0]), MIN_COST)
            self._adaptive_quantum = max(self._adaptive_quantum, estimate)
            if state.deficit < estimate:
                if not self._visit_granted:
                    # The quantum is granted exactly once per visit.
                    self._visit_granted = True
                    state.deficit += self.quantum
                    continue
                # Quantum spent and still cannot afford the head: the
                # visit ends, the deficit persists into the next round.
                self._ring.rotate(-1)
                self._visit_granted = False
                continue
            request = state.queue.popleft()
            state.deficit -= estimate
            self._note_debit(request, estimate)
            request.charged_cost = estimate
            request.credit = estimate
            state.running += 1
            if not state.queue:
                self._end_visit(state, forfeit=True)
            self._note_dispatched(request, thread_id, now)
            return request
        return None

    def _end_visit(self, state: TenantState, forfeit: bool) -> None:
        """Remove the ring-head flow and close the current visit."""
        self._ring.popleft()
        self._in_ring.discard(state.tenant_id)
        if forfeit:
            state.deficit = 0.0
            self._bump_epoch(state.tenant_id)
        self._visit_granted = False

    def _bump_epoch(self, tenant_id: str) -> None:
        self._epoch[tenant_id] = self._epoch.get(tenant_id, 0) + 1

    def _note_debit(self, request: Request, amount: Cost) -> None:
        epoch = self._epoch.get(request.tenant_id, 0)
        stored_epoch, standing = self._debits.get(request.seqno, (epoch, 0.0))
        if stored_epoch != epoch:
            standing = 0.0  # older debits were wiped with the deficit
        self._debits[request.seqno] = (epoch, standing + amount)

    def _cancel_running(
        self, state: TenantState, request: Request, now: SimTime
    ) -> bool:
        """Refund the deficit charged for an in-flight request: dispatch
        debited the estimate (leaving ``credit = estimate``) and refresh
        overages debited ``reported_usage - (estimate - credit)`` more.
        Only debits made since the tenant's last deficit reset are
        refunded -- a forfeit or ring re-join already re-zeroed the
        balance, so earlier debits no longer stand."""
        if state.running <= 0:
            return False
        epoch = self._epoch.get(request.tenant_id, 0)
        stored_epoch, standing = self._debits.pop(
            request.seqno, (epoch, request.reported_usage + request.credit)
        )
        if stored_epoch == epoch:
            state.deficit += standing
        state.running -= 1
        return True

    def refresh(self, request: Request, usage: Cost, now: SimTime) -> None:
        request.reported_usage += usage
        if usage < request.credit:
            request.credit -= usage
        else:
            state = self._tenants[request.tenant_id]
            state.deficit -= usage - request.credit
            self._note_debit(request, usage - request.credit)
            request.credit = 0.0

    def complete(self, request: Request, usage: Cost, now: SimTime) -> None:
        if request.phase == RequestPhase.CANCELLED:
            return  # stale completion racing a cancel: already refunded
        state = self._tenants[request.tenant_id]
        request.reported_usage += usage
        # Retroactive charging: excess usage is debited from the deficit
        # (possibly driving it negative, to be repaid in future rounds);
        # unused credit is refunded.
        state.deficit -= usage - request.credit
        request.credit = 0.0
        state.running -= 1
        self._debits.pop(request.seqno, None)
        self._estimator.observe(request, request.reported_usage)
        super().complete(request, 0.0, now)
