"""Start-time Fair Queuing over an aggregated thread pool.

SFQ (Goyal et al. [23]) schedules the request with the smallest *start*
tag.  Its classic appeal is that the size of a packet is not needed
before transmitting it -- the start tag only depends on previously
observed sizes.  In our framework the charge applied at dispatch still
uses the estimator (with oracle costs this matches classic SFQ exactly,
since the size is folded into the *next* start tag).

The paper implemented SFQ and found its schedules "nearly identical" to
WFQ in this setting because the simulated server is not variable-rate
(§6); we keep it for completeness and verify that observation in tests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SchedulerError
from ..units import VirtualTime
from .scheduler import TenantState
from .vt_base import VirtualTimeScheduler

__all__ = ["SFQScheduler"]


class SFQScheduler(VirtualTimeScheduler):
    """Smallest-start-tag-first across all backlogged tenants."""

    name = "sfq"

    def _select(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        return self._min_start(self._backlogged.values())

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        return {"start": True}

    def _select_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        # Always finds a tenant while anything is backlogged, so the
        # fallback path never fires for SFQ.
        index = self._index
        if index is None:  # dequeue routes here only in indexed mode
            raise SchedulerError("indexed selection invoked without an index")
        return index.min_start()
