"""MSF2Q: multi-server worst-case fair weighted fair queuing.

Blanquer & Özden [8] extended WF2Q to multiple aggregated links and
proved the bounds the paper quotes in §1 (a tenant falls behind by at
most ``N * Lmax`` and gets ahead by at most ``N * L^i_max``).  Their
distinguishing feature over the naive work-conserving WF2Q extension
handles flows whose weight is infeasible for a single link; the paper
found the two "produced nearly identical results" in its setting of many
equal-weight tenants (§6) and omits MSF2Q from the plots.

We implement MSF2Q as WF2Q eligibility with a *smallest-start-tag*
work-conserving fallback (rather than smallest finish tag): when nothing
is eligible, the flow least ahead of its GPS share runs first, which is
the spirit of Blanquer & Özden's bounded-unfairness argument.  Tests
verify it is schedule-identical to WF2Q on the paper's workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SchedulerError
from ..units import VirtualTime
from .scheduler import TenantState
from .wf2q import WF2QScheduler

__all__ = ["MSF2QScheduler"]


class MSF2QScheduler(WF2QScheduler):
    """WF2Q eligibility; falls back to the smallest start tag."""

    name = "msf2q"

    def _fallback(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        return self._min_start(self._backlogged.values())

    def _index_spec(self) -> Optional[Dict[str, Any]]:
        # WF2Q eligibility slot, but the fallback orders by start tag.
        return {"start": True, "staggers": (0.0,)}

    def _fallback_indexed(self, thread_id: int, vnow: VirtualTime) -> Optional[TenantState]:
        index = self._index
        if index is None:  # dequeue routes here only in indexed mode
            raise SchedulerError("indexed selection invoked without an index")
        return index.min_start()
