"""Discrete-event simulation substrate.

The paper evaluates all schedulers "in a discrete event simulator where
requests were scheduled across a fixed number of threads" (§6); this
package is that simulator: a deterministic event loop
(:class:`Simulation`), a worker-pool server (:class:`ThreadPoolServer`)
implementing refresh charging, workload sources, an exact fluid GPS
reference (:class:`GPSReference`) for the service-lag metric, and seeded
RNG utilities.
"""

from .clock import Simulation
from .events import EventHandle, EventQueue
from .gps import GPSReference
from .rng import make_rng, stable_hash
from .server import ThreadPoolServer, Worker
from .sources import (
    ArrivalProcessSource,
    BackloggedSource,
    Source,
    TraceSource,
)

__all__ = [
    "Simulation",
    "EventQueue",
    "EventHandle",
    "ThreadPoolServer",
    "Worker",
    "GPSReference",
    "Source",
    "TraceSource",
    "BackloggedSource",
    "ArrivalProcessSource",
    "make_rng",
    "stable_hash",
]
