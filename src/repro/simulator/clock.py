"""The simulation event loop.

A :class:`Simulation` owns the wallclock (``now``, in seconds) and the
event queue, and runs callbacks in timestamp order.  All components --
servers, workload sources, metric samplers -- schedule their activity
through it, which makes every experiment single-threaded, deterministic,
and immune to Python's GIL (see DESIGN.md: the paper itself evaluates in
a discrete-event simulator).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..units import Duration, SimTime
from .events import CalendarEventQueue, EventHandle, EventQueue

__all__ = ["Simulation"]

#: Event-queue implementations selectable per simulation.  Both are
#: pop-order identical (differentially tested); the calendar queue wins
#: once pending events reach the hundreds of thousands, the heap below.
_EVENT_QUEUES = {"heap": EventQueue, "calendar": CalendarEventQueue}


class Simulation:
    """Discrete-event simulation loop.

    Parameters
    ----------
    event_queue:
        ``"heap"`` (the default binary heap) or ``"calendar"`` (the
        bucketed calendar queue for very large pending-event counts);
        see :mod:`repro.simulator.events`.  Results are bit-identical
        either way -- this is purely a throughput knob, surfaced as
        ``ExperimentConfig.event_queue``.
    """

    def __init__(self, event_queue: str = "heap") -> None:
        queue_cls = _EVENT_QUEUES.get(event_queue)
        if queue_cls is None:
            raise SimulationError(
                f"event_queue must be one of {sorted(_EVENT_QUEUES)}, "
                f"got {event_queue!r}"
            )
        self._queue = queue_cls()
        self._now: SimTime = 0.0
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # -- observation ----------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current simulated wallclock time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled-but-unpurged entries in the event heap (the memory
        cost of lazy cancellation; exported as an obs gauge)."""
        return self._queue.cancelled_backlog

    @property
    def event_purges(self) -> int:
        """Compaction passes the event heap has performed."""
        return self._queue.purges

    # -- scheduling -------------------------------------------------------------

    def at(self, time: SimTime, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        return self._queue.push(max(time, self._now), fn, *args)

    def after(self, delay: Duration, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, fn, *args)

    def cancel(self, handle: EventHandle) -> None:
        self._queue.cancel(handle)

    def stop(self) -> None:
        """Stop the loop after the current event returns."""
        self._stopped = True

    # -- execution -----------------------------------------------------------------

    def run(
        self, until: Optional[SimTime] = None, max_events: Optional[int] = None
    ) -> SimTime:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final simulated time.

        When ``until`` is given, time is advanced exactly to ``until`` even
        if the last event fires earlier, so periodic samplers and service
        accounting line up across runs.
        """
        if self._running:
            raise SimulationError("simulation loop re-entered")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    # `while self._queue` guarantees a live event; a None
                    # peek means the queue's live-count drifted from its
                    # heap contents.  Raise (never assert: python -O
                    # would strip the check) -- this is state corruption,
                    # not a schedulable condition.
                    raise SimulationError(
                        "event queue reported pending events but none "
                        "could be peeked (live-count/heap divergence)"
                    )
                if until is not None and next_time > until:
                    break
                if max_events is not None and self._events_processed >= max_events:
                    break
                handle = self._queue.pop()
                self._now = handle.time
                fn, args = handle.fn, handle.args
                handle.cancel()  # mark consumed; frees references
                self._events_processed += 1
                if fn is None:
                    raise SimulationError(
                        f"popped event at t={handle.time} was already "
                        "consumed (callback reference cleared)"
                    )
                fn(*args)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return self._now
