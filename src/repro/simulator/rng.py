"""Deterministic random-number streams for workloads and experiments.

Every stochastic component gets its own :class:`numpy.random.Generator`
derived from a root seed plus a stable string key, so adding a tenant or
reordering construction never perturbs the stream of another component --
a requirement for the paper's controlled comparisons, where the *same*
workload must be replayed against each scheduler.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "stable_hash"]


def stable_hash(*parts: str) -> int:
    """A process-stable 32-bit hash of string parts (CRC32; Python's
    built-in ``hash`` is salted per process and unusable for seeding)."""
    digest = 0
    for part in parts:
        digest = zlib.crc32(part.encode("utf-8"), digest)
    return digest & 0xFFFFFFFF


def make_rng(seed: int, *key: str) -> np.random.Generator:
    """Create an independent generator for (seed, key...).

    >>> a = make_rng(1, "tenant", "T1")
    >>> b = make_rng(1, "tenant", "T1")
    >>> float(a.random()) == float(b.random())
    True
    """
    sequence = np.random.SeedSequence([int(seed) & 0xFFFFFFFF, stable_hash(*key)])
    return np.random.default_rng(sequence)
