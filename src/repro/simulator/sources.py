"""Workload sources: objects that submit requests to a server over time.

Two arrival disciplines cover everything in the paper's evaluation:

* **open loop** -- requests arrive at externally determined times,
  regardless of how the server is doing.  Used for trace replay
  (:class:`TraceSource`) and generative arrivals
  (:class:`ArrivalProcessSource`).
* **closed loop / backlogged** -- the tenant keeps a fixed number of
  requests outstanding and submits a new one the moment one completes
  (:class:`BackloggedSource`).  This realizes the paper's "continuously
  backlogged tenants" (§6.1.1, §6.2.2): the tenant's queue never drains,
  so it is always competing for its fair share.

Sources attach themselves to requests (``request.source``) so the server
can notify them of completions in O(1) without a global fan-out.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Protocol, Tuple

from ..core.request import Request
from ..errors import ConfigurationError
from ..units import Cost, Duration, Scalar, SimTime, Weight
from .clock import Simulation

__all__ = [
    "SubmitTarget",
    "Source",
    "TraceSource",
    "BackloggedSource",
    "ArrivalProcessSource",
]


class SubmitTarget(Protocol):
    """Anything a source can submit requests to.

    :class:`~repro.simulator.server.ThreadPoolServer` is the canonical
    implementation; :class:`repro.fleet.Fleet` satisfies the same
    protocol, so every source in this module drives a single server and
    a routed fleet identically.
    """

    sim: Simulation

    def submit(self, request: Request) -> None: ...

#: A sampler returns (api, cost) for the next request of a tenant.
RequestSampler = Callable[[], Tuple[str, Cost]]
#: An inter-arrival sampler returns the gap to the next arrival (seconds).
GapSampler = Callable[[], Duration]


class Source:
    """Base class wiring a source to its server."""

    def __init__(self, server: SubmitTarget) -> None:
        self.server = server
        self.submitted = 0

    def start(self) -> None:
        """Begin submitting work (schedule initial events)."""
        raise NotImplementedError

    def on_request_complete(self, request: Request) -> None:
        """Completion callback; default: nothing (open-loop sources)."""

    def _submit(
        self, tenant_id: str, api: str, cost: Cost, weight: Weight = 1.0
    ) -> Request:
        request = Request(
            tenant_id=tenant_id, api=api, cost=cost, weight=weight, source=self
        )
        self.server.submit(request)
        self.submitted += 1
        return request


class TraceSource(Source):
    """Open-loop replay of ``(time, tenant, api, cost)`` records.

    Records are consumed lazily (each arrival schedules the next) so a
    multi-million-record trace does not preload the event heap.

    Parameters
    ----------
    records:
        Iterable of ``(time, tenant_id, api, cost)`` tuples sorted by
        time.  Times are in trace seconds.
    speed:
        Replay speed multiplier: 2.0 compresses the trace to half its
        duration (the paper sweeps 0.5x - 4x in §6.2.2).
    weight:
        Scheduler weight stamped on every replayed request.
    """

    def __init__(
        self,
        server: SubmitTarget,
        records: Iterable[Tuple[SimTime, str, str, Cost]],
        speed: Scalar = 1.0,
        weight: Weight = 1.0,
    ) -> None:
        super().__init__(server)
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        self._records: Iterator[Tuple[SimTime, str, str, Cost]] = iter(records)
        self._speed: Scalar = float(speed)
        self._weight: Weight = float(weight)
        self._last_time: Optional[SimTime] = None

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        record = next(self._records, None)
        if record is None:
            return
        time, tenant_id, api, cost = record
        if self._last_time is not None and time < self._last_time:
            raise ConfigurationError("trace records must be sorted by time")
        self._last_time = time
        self.server.sim.at(
            time / self._speed, self._fire, tenant_id, api, cost
        )

    def _fire(self, tenant_id: str, api: str, cost: Cost) -> None:
        self._submit(tenant_id, api, cost, self._weight)
        self._schedule_next()


class BackloggedSource(Source):
    """Closed-loop tenant that always has ``window`` requests in flight.

    On start it submits ``window`` requests; each completion immediately
    triggers the next submission, so the tenant's logical queue never
    drains -- the "continuously backlogged" tenants of the evaluation.

    Parameters
    ----------
    tenant_id:
        Flow identifier.
    sampler:
        Callable returning ``(api, cost)`` for each new request.
    window:
        Number of outstanding requests to maintain (>= 1).  Values above
        1 keep the tenant backlogged even while requests execute.
    limit:
        Optional cap on total submissions (for bounded tests).
    """

    def __init__(
        self,
        server: SubmitTarget,
        tenant_id: str,
        sampler: RequestSampler,
        window: int = 4,
        weight: Weight = 1.0,
        start_time: SimTime = 0.0,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(server)
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.tenant_id = tenant_id
        self._sampler = sampler
        self._window = int(window)
        self._weight: Weight = float(weight)
        self._start_time: SimTime = float(start_time)
        self._limit = limit

    def start(self) -> None:
        self.server.sim.at(self._start_time, self._prime)

    def _prime(self) -> None:
        for _ in range(self._window):
            if not self._submit_next():
                break

    def on_request_complete(self, request: Request) -> None:
        self._submit_next()

    def _submit_next(self) -> bool:
        if self._limit is not None and self.submitted >= self._limit:
            return False
        api, cost = self._sampler()
        self._submit(self.tenant_id, api, cost, self._weight)
        return True


class ArrivalProcessSource(Source):
    """Open-loop generative arrivals (e.g. Poisson) for one tenant.

    Parameters
    ----------
    gap_sampler:
        Callable returning the next inter-arrival gap in seconds (e.g.
        exponential for Poisson arrivals).
    sampler:
        Callable returning ``(api, cost)`` per request.
    until:
        Stop generating arrivals after this simulated time.
    """

    def __init__(
        self,
        server: SubmitTarget,
        tenant_id: str,
        gap_sampler: GapSampler,
        sampler: RequestSampler,
        weight: Weight = 1.0,
        start_time: SimTime = 0.0,
        until: Optional[SimTime] = None,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(server)
        self.tenant_id = tenant_id
        self._gap_sampler = gap_sampler
        self._sampler = sampler
        self._weight: Weight = float(weight)
        self._start_time: SimTime = float(start_time)
        self._until = until
        self._limit = limit

    def start(self) -> None:
        self.server.sim.at(self._start_time + max(0.0, self._gap_sampler()), self._fire)

    def _fire(self) -> None:
        if self._limit is not None and self.submitted >= self._limit:
            return
        api, cost = self._sampler()
        self._submit(self.tenant_id, api, cost, self._weight)
        next_time = self.server.sim.now + max(0.0, self._gap_sampler())
        if self._until is None or next_time <= self._until:
            self.server.sim.at(next_time, self._fire)
