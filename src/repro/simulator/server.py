"""Simulated multi-tenant server: admission queue + worker thread pool.

Models the shared-process setting of the paper: requests of many tenants
arrive at one process and are executed by a fixed pool of ``n`` worker
threads, each processing ``rate`` cost-units per second.  Requests are
not preemptible (paper §1); once dispatched, a request occupies its
worker for ``cost / rate`` seconds.

The server drives the scheduler through the four-call contract described
in :mod:`repro.core.scheduler`, including the periodic **refresh
charging** measurements of paper §5: every ``refresh_interval`` seconds
(the paper uses 10 ms) it reports each running request's usage since the
last report, so the scheduler notices under-estimated expensive requests
while they are still running.

Idle workers are offered work in *descending* thread-index order by
default.  Under 2DFQ high-index threads are where small requests become
eligible first, so offering them first gives small requests the first
shot at their preferred threads; for thread-oblivious schedulers the
order is irrelevant.  The order is configurable for ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Literal, Optional

from ..core.request import Request
from ..core.scheduler import Scheduler
from ..errors import ConfigurationError, SimulationError
from ..units import Cost, Duration, Rate, Scalar, SimTime
from .clock import Simulation

if TYPE_CHECKING:  # import cycle: repro.obs instruments the simulator
    from ..obs.tracer import Tracer

__all__ = ["ThreadPoolServer", "Worker"]

RequestListener = Callable[[Request], None]


class Worker:
    """State of one worker thread."""

    __slots__ = (
        "index",
        "request",
        "started",
        "last_report",
        "completion_event",
        "speed",
        "done_work",
        "work_mark",
        "crashed",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.request: Optional[Request] = None
        self.started: SimTime = 0.0
        #: Time of the last usage report sent to the scheduler (refresh).
        self.last_report: SimTime = 0.0
        self.completion_event = None
        #: Relative processing speed (fault injection): 1.0 = healthy,
        #: 0 < speed < 1 = degraded, 0.0 = stalled.  Multiplying by the
        #: default 1.0 is exact in IEEE754, so a fault-free run's float
        #: arithmetic is bit-identical to the pre-fault formulas.
        self.speed: Scalar = 1.0
        #: Cost units completed on the current request before the last
        #: speed change (progress must be integrated piecewise once the
        #: speed varies mid-request).
        self.done_work: Cost = 0.0
        #: Simulated time ``done_work`` was last folded up.
        self.work_mark: SimTime = 0.0
        #: Crashed workers hold no request and are skipped by dispatch
        #: until restored.
        self.crashed = False

    @property
    def busy(self) -> bool:
        return self.request is not None


class ThreadPoolServer:
    """N worker threads fed by a pluggable request scheduler.

    Parameters
    ----------
    sim:
        The simulation loop this server lives in.
    scheduler:
        Any :class:`~repro.core.scheduler.Scheduler`; its ``num_threads``
        must match this server's.
    num_threads:
        Worker-pool size (the paper evaluates 2..64).
    rate:
        Per-thread processing rate in cost units per second.
    refresh_interval:
        Period of refresh-charging measurements in seconds, or ``None``
        to disable interim reports (usage is then reported only at
        completion).  Paper default: 0.01 (10 ms).
    dispatch_order:
        ``"descending"`` (default) or ``"ascending"`` -- the order in
        which idle workers are offered work.
    """

    def __init__(
        self,
        sim: Simulation,
        scheduler: Scheduler,
        num_threads: int,
        rate: Rate = 1.0,
        refresh_interval: Optional[Duration] = 0.01,
        dispatch_order: Literal["descending", "ascending"] = "descending",
    ) -> None:
        if scheduler.num_threads != num_threads:
            raise ConfigurationError(
                f"scheduler built for {scheduler.num_threads} threads, "
                f"server has {num_threads}"
            )
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if refresh_interval is not None and refresh_interval <= 0:
            raise ConfigurationError(
                f"refresh_interval must be positive or None, got {refresh_interval}"
            )
        if dispatch_order not in ("descending", "ascending"):
            raise ConfigurationError(
                f"dispatch_order must be 'descending' or 'ascending', "
                f"got {dispatch_order!r}"
            )
        self.sim = sim
        self.scheduler = scheduler
        self.rate: Rate = float(rate)
        self.num_threads = int(num_threads)
        self.workers: List[Worker] = [Worker(i) for i in range(num_threads)]
        self._dispatch_order = dispatch_order
        # Workers in the order idle ones are offered work, fixed at
        # construction -- the dispatch cycle must not re-sort per call.
        self._dispatch_cycle: List[Worker] = (
            list(reversed(self.workers))
            if dispatch_order == "descending"
            else list(self.workers)
        )
        self._refresh_interval: Optional[Duration] = refresh_interval
        self._refresh_scheduled = False
        #: Attached :class:`repro.obs.Tracer` or ``None``; same
        #: single-attribute-check overhead contract as the schedulers.
        self._trace: Optional["Tracer"] = None
        self._submit_listeners: List[RequestListener] = []
        self._dispatch_listeners: List[RequestListener] = []
        self._complete_listeners: List[RequestListener] = []
        self._completed_cost: dict[str, Cost] = {}
        self._completed_requests = 0
        self._crashed = False

    # -- listeners --------------------------------------------------------------

    def on_submit(self, fn: RequestListener) -> None:
        """Register a callback fired when a request is admitted."""
        self._submit_listeners.append(fn)

    def on_dispatch(self, fn: RequestListener) -> None:
        """Register a callback fired when a request starts executing."""
        self._dispatch_listeners.append(fn)

    def on_complete(self, fn: RequestListener) -> None:
        """Register a callback fired when a request finishes."""
        self._complete_listeners.append(fn)

    def attach_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach a :class:`repro.obs.Tracer`; the server contributes
        refresh-charging counters and a busy-worker gauge to the
        tracer's registry (the decision *events* come from the
        scheduler).  Disabled tracers are stored as ``None``."""
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )

    # -- ingress ------------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Admit a request at the current simulated time."""
        now = self.sim.now
        request.arrival_time = now
        self.scheduler.enqueue(request, now)
        for fn in self._submit_listeners:
            fn(request)
        self._dispatch_idle()
        self._ensure_refresh_timer()

    # -- observation ---------------------------------------------------------------

    @property
    def busy_workers(self) -> int:
        return sum(1 for w in self.workers if w.busy)

    @property
    def completed_requests(self) -> int:
        return self._completed_requests

    def completed_cost(self, tenant_id: str) -> Cost:
        """Total cost of completed requests for a tenant."""
        return self._completed_cost.get(tenant_id, 0.0)

    def service_received(self, tenant_id: str) -> Cost:
        """Cumulative service (cost units) delivered to a tenant so far,
        counting partial progress of running requests -- the quantity the
        paper's service-rate and service-lag metrics are computed from.

        Progress integrates the worker's speed piecewise:
        ``done_work`` accumulates the segments before the last speed
        change and the current segment runs at the current speed.  On a
        healthy worker (``speed == 1.0``, ``done_work == 0.0``) this
        reduces bit-exactly to ``(now - started) * rate``.
        """
        total = self._completed_cost.get(tenant_id, 0.0)
        now = self.sim.now
        for worker in self.workers:
            request = worker.request
            if request is not None and request.tenant_id == tenant_id:
                progress = (
                    worker.done_work
                    + (now - worker.work_mark) * self.rate * worker.speed
                )
                total += min(progress, request.cost)
        return total

    def running_requests(self) -> List[Request]:
        """Requests currently executing (one per busy worker)."""
        return [w.request for w in self.workers if w.request is not None]

    # -- fault injection ----------------------------------------------------------
    #
    # These hooks are only ever called by repro.faults; a fault-free run
    # never reaches them, so the hot path is untouched (DESIGN.md §11).

    def set_worker_speed(self, index: int, speed: Scalar) -> None:
        """Change a worker's processing speed (1.0 healthy, 0.0 stalled).

        If the worker is mid-request, its usage so far is flushed to the
        scheduler at the *old* speed (refresh charging stays exact
        across the boundary), progress is folded into ``done_work``, and
        the completion event is rescheduled from the remaining cost at
        the new speed -- or removed entirely while stalled.
        """
        if speed < 0:
            raise ConfigurationError(f"worker speed must be >= 0, got {speed}")
        worker = self.workers[index]
        now = self.sim.now
        request = worker.request
        if request is not None:
            usage = (now - worker.last_report) * self.rate * worker.speed
            if usage > 0.0:
                self.scheduler.refresh(request, usage, now)
            worker.last_report = now
            worker.done_work += (now - worker.work_mark) * self.rate * worker.speed
            worker.work_mark = now
            if worker.completion_event is not None:
                self.sim.cancel(worker.completion_event)
                worker.completion_event = None
        worker.speed = float(speed)
        if request is not None and speed > 0.0:
            remaining = max(0.0, request.cost - worker.done_work)
            worker.completion_event = self.sim.at(
                now + remaining / (self.rate * speed),
                self._finish,
                worker,
                request,
            )

    def crash_worker(self, index: int, redispatch: bool = True) -> Optional[Request]:
        """Crash a worker: its in-flight request (if any) loses all
        progress and is cancelled out of the scheduler's accounting; with
        ``redispatch`` (the default) it is immediately re-enqueued -- the
        service-level retry of a request lost to a dead worker -- keeping
        its arrival time and seqno.  The worker accepts no work until
        :meth:`restore_worker`.  Returns the interrupted request."""
        worker = self.workers[index]
        now = self.sim.now
        worker.crashed = True
        request = worker.request
        if request is not None:
            if worker.completion_event is not None:
                self.sim.cancel(worker.completion_event)
                worker.completion_event = None
            worker.request = None
            self.scheduler.cancel(request, now)
            if redispatch:
                self.scheduler.enqueue(request, now)
                self._dispatch_idle()
                self._ensure_refresh_timer()
        return request

    def restore_worker(self, index: int) -> None:
        """Bring a crashed worker back at full speed and offer it work."""
        worker = self.workers[index]
        worker.crashed = False
        worker.speed = 1.0
        self._dispatch_idle()
        self._ensure_refresh_timer()

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and :meth:`restore` -- the whole
        process is down, as opposed to individual crashed workers."""
        return self._crashed

    def crash(self) -> None:
        """Kill the whole server process.

        Every worker freezes where it stands: usage reported so far
        stays charged (flushed at the old speed through the
        ``set_worker_speed`` path), in-flight progress is retained but
        never advances, and dispatch halts until :meth:`restore`.  The
        scheduler's queue is deliberately *not* touched -- whether the
        stranded requests are drained to surviving servers (exact-refund
        ``cancel()`` + re-route) or left stuck is the fleet failover
        policy's decision, not the server's.
        """
        for worker in self.workers:
            self.set_worker_speed(worker.index, 0.0)
            worker.crashed = True
        self._crashed = True

    def restore(self) -> None:
        """Bring a crashed server back at full speed.

        Frozen in-flight requests resume from their retained progress
        (a drained server comes back empty, so there is nothing to
        resume) and idle workers are offered the backlog.
        """
        self._crashed = False
        for worker in self.workers:
            worker.crashed = False
            self.set_worker_speed(worker.index, 1.0)
        self._dispatch_idle()
        self._ensure_refresh_timer()

    def abort(self, request: Request) -> bool:
        """Cancel a submitted request (client-side deadline/cancellation).

        Works in either lifecycle phase: a queued request is removed
        from the scheduler, a running one is torn off its worker (its
        completion event is cancelled and the freed worker is re-offered
        work).  Returns ``False`` for a stale abort (already completed
        or cancelled)."""
        now = self.sim.now
        for worker in self.workers:
            if worker.request is request:
                if worker.completion_event is not None:
                    self.sim.cancel(worker.completion_event)
                    worker.completion_event = None
                worker.request = None
                cancelled = self.scheduler.cancel(request, now)
                self._dispatch_idle()
                return cancelled
        return self.scheduler.cancel(request, now)

    # -- internals --------------------------------------------------------------------

    def _idle_workers(self) -> List[Worker]:
        return [w for w in self._dispatch_cycle if not w.busy]

    def _dispatch_idle(self) -> None:
        """Offer work to every idle, non-crashed worker while the
        scheduler has any.

        All schedulers in this library are work conserving, so a ``None``
        from ``dequeue`` means the backlog is empty and the scan can stop.
        Stalled workers (``speed == 0``) still accept work -- a degraded
        thread holds its request frozen until its speed recovers.
        """
        now = self.sim.now
        scheduler = self.scheduler
        if scheduler.backlog == 0:
            return
        idle = [
            w for w in self._dispatch_cycle if not w.busy and not w.crashed
        ]
        if not idle:
            return
        if len(idle) == 1:
            # Single free worker (the common steady-state case after one
            # completion): a direct dequeue skips the batch plumbing.
            request = scheduler.dequeue(idle[0].index, now)
            if request is not None:
                self._start(idle[0], request)
            return
        # Several workers freed at the same instant (startup, bursts,
        # simultaneous completions): one batched call amortizes index
        # maintenance across the selections.  dequeue_batch stops early
        # when the backlog drains, and is request-for-request identical
        # to sequential dequeues, so _start ordering -- and with it the
        # completion-event seq order -- is unchanged.
        batch = scheduler.dequeue_batch([w.index for w in idle], now)
        for worker, request in zip(idle, batch):
            self._start(worker, request)

    def _start(self, worker: Worker, request: Request) -> None:
        now = self.sim.now
        worker.request = request
        worker.started = now
        worker.last_report = now
        worker.done_work = 0.0
        worker.work_mark = now
        if worker.speed > 0.0:
            duration = request.cost / (self.rate * worker.speed)
            worker.completion_event = self.sim.at(
                now + duration, self._finish, worker, request
            )
        else:
            # Stalled: no completion until set_worker_speed revives it.
            worker.completion_event = None
        for fn in self._dispatch_listeners:
            fn(request)

    def _finish(self, worker: Worker, request: Request) -> None:
        if worker.request is not request:
            raise SimulationError(
                f"completion fired for a stale request on worker "
                f"{worker.index}: expected {request.tenant_id}/"
                f"{request.api}#{request.seqno}, worker is running "
                f"{worker.request!r}"
            )
        now = self.sim.now
        final_usage = (now - worker.last_report) * self.rate * worker.speed
        worker.request = None
        worker.completion_event = None
        request.completion_time = now
        self.scheduler.complete(request, final_usage, now)
        self._completed_cost[request.tenant_id] = (
            self._completed_cost.get(request.tenant_id, 0.0) + request.cost
        )
        self._completed_requests += 1
        source = request.source
        for fn in self._complete_listeners:
            fn(request)
        if source is not None:
            source.on_request_complete(request)
        self._dispatch_idle()

    def _ensure_refresh_timer(self) -> None:
        if self._refresh_interval is None or self._refresh_scheduled:
            return
        self._refresh_scheduled = True
        self.sim.after(self._refresh_interval, self._refresh_tick)

    def _refresh_tick(self) -> None:
        """Periodic refresh charging (paper §5): report each running
        request's usage since the last report to the scheduler."""
        now = self.sim.now
        any_busy = False
        reports = 0
        for worker in self.workers:
            request = worker.request
            if request is None:
                continue
            any_busy = True
            usage = (now - worker.last_report) * self.rate * worker.speed
            if usage > 0.0:
                self.scheduler.refresh(request, usage, now)
                worker.last_report = now
                reports += 1
        trace = self._trace
        if trace is not None:
            registry = trace.registry
            registry.counter("server.refresh_ticks").inc()
            registry.counter("server.refresh_reports").inc(reports)
            registry.gauge("server.busy_workers").set(self.busy_workers)
            registry.gauge("events.cancelled_backlog").set(
                self.sim.cancelled_backlog
            )
            registry.gauge("events.purges").set(self.sim.event_purges)
        self._refresh_scheduled = False
        # Keep ticking while there is work; the timer re-arms on the next
        # submit otherwise, so an idle server costs no events.
        if any_busy or self.scheduler.backlog > 0:
            self._ensure_refresh_timer()
