"""Fluid GPS (Generalized Processor Sharing) reference server.

The paper's service-lag metric compares every scheduler against an ideal
fluid server: "For N threads with r processing rate, we use a reference
GPS system with rate Nr" (§6).  Under GPS, each backlogged flow ``f`` is
served continuously at rate ``C * phi_f / Phi(t)``, where ``Phi(t)`` sums
the weights of flows with backlog.

Implementation: the classic virtual-time formulation.  System virtual
time ``V(t)`` advances at ``C / Phi(t)``; a flow activated at virtual
time ``V`` with backlog ``b`` drains exactly when virtual time reaches
its *virtual emptying time* ``E_f = V + b / phi_f``.  Crucially ``E_f``
is invariant under active-set changes, so flows sit in a lazy min-heap
keyed by ``E_f`` and the whole fluid system advances event-by-event in
``O(log F)`` per arrival/drain.  Cumulative service is then a pure
function of state:

    W_f(t) = arrived_f - backlog_f(t),
    backlog_f(t) = phi_f * (E_f - V(t))   while active, else 0.

This substrate is exact (up to float round-off), not a discretization.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..units import Cost, Rate, SimTime, VirtualTime, Weight
from .events import DEFAULT_PURGE_THRESHOLD

__all__ = ["GPSReference"]


class _Flow:
    __slots__ = ("flow_id", "weight", "arrived", "active", "empty_at", "version")

    def __init__(self, flow_id: str, weight: Weight) -> None:
        self.flow_id = flow_id
        self.weight: Weight = weight
        self.arrived: Cost = 0.0
        self.active = False
        #: Virtual emptying time E_f (valid while active).
        self.empty_at: VirtualTime = 0.0
        #: Heap entry version for lazy invalidation.
        self.version = 0


class GPSReference:
    """Exact fluid weighted processor sharing over the same arrivals.

    Feed it every request arrival (true cost) with :meth:`arrive`, then
    query per-flow cumulative service with :meth:`service` after
    :meth:`advance`-ing to the sample time.
    """

    def __init__(
        self,
        capacity: Rate,
        purge_threshold: int = DEFAULT_PURGE_THRESHOLD,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if purge_threshold < 1:
            raise ConfigurationError(
                f"purge_threshold must be >= 1, got {purge_threshold}"
            )
        self._capacity: Rate = float(capacity)
        self._virtual: VirtualTime = 0.0
        self._wallclock: SimTime = 0.0
        self._active_weight: Weight = 0.0
        self._flows: Dict[str, _Flow] = {}
        # Heap entries carry a globally unique sequence number so ties on
        # (empty_at) never fall through to comparing _Flow objects.
        self._heap: List[Tuple[float, int, int, _Flow]] = []
        self._entry_seq = itertools.count()
        # Lazy-invalidation bookkeeping: every re-arrival of an active
        # flow supersedes its previous heap entry; the stale count is
        # exact, and the same outnumber-the-live + threshold heuristic
        # as the event queue bounds the heap at ~2x the active flows.
        self._stale_entries = 0
        self._purge_threshold = purge_threshold
        self._purges = 0

    # -- observation -----------------------------------------------------------

    @property
    def capacity(self) -> Rate:
        return self._capacity

    @property
    def virtual_time(self) -> VirtualTime:
        return self._virtual

    @property
    def now(self) -> SimTime:
        return self._wallclock

    @property
    def active_weight(self) -> Weight:
        return self._active_weight

    @property
    def stale_entries(self) -> int:
        """Superseded heap entries not yet dropped (lazy invalidation)."""
        return self._stale_entries

    @property
    def heap_size(self) -> int:
        return len(self._heap)

    @property
    def purges(self) -> int:
        """Number of heap compaction passes performed so far."""
        return self._purges

    @property
    def purge_threshold(self) -> int:
        return self._purge_threshold

    def backlog(self, flow_id: str) -> Cost:
        """Remaining fluid backlog of a flow at the current time."""
        flow = self._flows.get(flow_id)
        if flow is None or not flow.active:
            return 0.0
        return max(0.0, flow.weight * (flow.empty_at - self._virtual))

    def service(self, flow_id: str) -> Cost:
        """Cumulative service W_f(0, t) delivered to a flow by GPS."""
        flow = self._flows.get(flow_id)
        if flow is None:
            return 0.0
        return flow.arrived - self.backlog(flow_id)

    # -- driving ------------------------------------------------------------------

    def arrive(
        self, flow_id: str, cost: Cost, now: SimTime, weight: Weight = 1.0
    ) -> None:
        """Register the arrival of ``cost`` units of work for a flow.

        A flow's weight is fixed at its first arrival: re-arriving with
        a different ``weight`` raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        keeping the old weight -- a tenant whose weight changed mid-run
        would otherwise diverge from the fair-share reference with no
        signal.
        """
        if cost < 0:
            raise ConfigurationError(f"cost must be >= 0, got {cost}")
        self.advance(now)
        flow = self._flows.get(flow_id)
        if flow is None:
            flow = _Flow(flow_id, weight)
            self._flows[flow_id] = flow
        elif weight != flow.weight:
            raise ConfigurationError(
                f"flow {flow_id!r} re-arrived with weight {weight}, but its "
                f"weight is {flow.weight}; GPS flow weights are fixed at "
                "first arrival (mid-run weight changes are unsupported)"
            )
        flow.arrived += cost
        if cost == 0:
            return
        if flow.active:
            flow.empty_at += cost / flow.weight
            # The flow's previous heap entry is now superseded.
            self._stale_entries += 1
        else:
            flow.active = True
            self._active_weight += flow.weight
            flow.empty_at = self._virtual + cost / flow.weight
        flow.version += 1
        heapq.heappush(
            self._heap, (flow.empty_at, next(self._entry_seq), flow.version, flow)
        )
        live = len(self._heap) - self._stale_entries
        if self._stale_entries > self._purge_threshold and self._stale_entries > live:
            self._compact()

    def set_capacity(self, capacity: Rate, now: SimTime) -> None:
        """Change the fluid server's rate from wallclock ``now`` on.

        The fleet-wide GPS reference calls this when the healthy
        capacity changes (a server crash is detected, or a crashed
        server comes back).  The system is first advanced to ``now`` at
        the old rate, then the new rate takes over -- exact, because a
        flow's virtual emptying time ``E_f = V + b / phi_f`` does not
        depend on capacity (capacity only sets the wallclock *speed* of
        virtual time, ``dt = dv * Phi / C``), so pending drains keep
        their virtual schedule and simply play out faster or slower.
        """
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.advance(now)
        self._capacity = float(capacity)

    def advance(self, to_time: SimTime) -> None:
        """Evolve the fluid system to wallclock ``to_time``."""
        if to_time < self._wallclock - 1e-12:
            raise SimulationError(
                f"GPS time moved backwards: {to_time} < {self._wallclock}"
            )
        while True:
            flow = self._peek_active()
            if flow is None:
                # Nothing backlogged: virtual time freezes.
                self._wallclock = max(self._wallclock, to_time)
                return
            dv = flow.empty_at - self._virtual
            dt = dv * self._active_weight / self._capacity
            empty_wallclock = self._wallclock + dt
            if empty_wallclock <= to_time + 1e-15:
                # The flow drains before (or at) the target time.
                self._virtual = flow.empty_at
                self._wallclock = empty_wallclock
                heapq.heappop(self._heap)
                flow.active = False
                self._active_weight -= flow.weight
                if self._active_weight < 1e-12:
                    self._active_weight = 0.0
                continue
            # Partial advance up to the target time.
            elapsed = to_time - self._wallclock
            if elapsed > 0:
                self._virtual += elapsed * self._capacity / self._active_weight
                self._wallclock = to_time
            return

    # -- internals ------------------------------------------------------------------

    def _peek_active(self) -> Optional[_Flow]:
        """Earliest-draining active flow, skipping stale heap entries."""
        heap = self._heap
        while heap:
            _, _, version, flow = heap[0]
            if not flow.active or version != flow.version:
                heapq.heappop(heap)
                if self._stale_entries > 0:
                    self._stale_entries -= 1
                continue
            return flow
        return None

    def _compact(self) -> None:
        """Rebuild the heap from the active flows' current entries.

        Unlike the event queue, entry keys are not preserved -- each
        active flow gets a fresh sequence number -- but that cannot
        change results: at most one entry per flow is live, ties on
        ``empty_at`` drain at the same instant, and service is a pure
        function of ``(arrived, empty_at, virtual)``, none of which
        compaction touches.
        """
        self._heap = [
            (flow.empty_at, next(self._entry_seq), flow.version, flow)
            for flow in self._flows.values()
            if flow.active
        ]
        heapq.heapify(self._heap)
        self._stale_entries = 0
        self._purges += 1
