"""Binary-heap event queue for the discrete-event simulator.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number
guarantees FIFO ordering among events scheduled for the same instant,
which keeps every simulation fully deterministic.  Cancellation is lazy:
cancelled events stay in the heap and are skipped on pop, the standard
O(1)-cancel technique for simulation heaps.

Lazy cancellation trades memory for speed, so the backlog of cancelled
entries is (a) observable -- :attr:`EventQueue.cancelled_backlog` feeds
the ``events.cancelled_backlog`` obs gauge -- and (b) bounded by a
purge heuristic: when the dead entries outnumber the live ones *and*
exceed ``purge_threshold``, the heap is compacted in one O(n) pass.
Compaction preserves the exact ``(time, seq)`` keys, so the pop order
(and therefore every simulation result) is unchanged; the heuristic's
two conditions together guarantee amortized O(1) cost per cancel while
capping the heap at twice its live size (plus the threshold floor).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventHandle", "EventQueue", "DEFAULT_PURGE_THRESHOLD"]

#: Minimum cancelled backlog before compaction is considered; keeps tiny
#: queues from compacting constantly when a few timers churn.
DEFAULT_PURGE_THRESHOLD = 64


class EventHandle:
    """Opaque handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it; idempotent."""
        self.cancelled = True
        self.fn = None  # free references early
        self.args = ()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:g}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of timed callbacks with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live", "_purge_threshold", "_purges")

    def __init__(self, purge_threshold: int = DEFAULT_PURGE_THRESHOLD) -> None:
        if purge_threshold < 1:
            raise SimulationError(
                f"purge_threshold must be >= 1, got {purge_threshold}"
            )
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._live = 0
        self._purge_threshold = purge_threshold
        self._purges = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled entries still occupying heap slots (the memory cost
        of lazy cancellation; exported as an obs gauge)."""
        return len(self._heap) - self._live

    @property
    def purges(self) -> int:
        """Number of compaction passes performed so far."""
        return self._purges

    @property
    def purge_threshold(self) -> int:
        return self._purge_threshold

    def push(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time`` and return a handle."""
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously pushed event (no-op if already fired)."""
        if not handle.cancelled:
            handle.cancel()
            self._live -= 1
            # Purge heuristic: compact when dead entries both exceed the
            # threshold and outnumber live ones.  Each compaction removes
            # >= backlog/2 entries that each paid O(1) at cancel time, so
            # the amortized cost stays O(1) per cancellation.
            backlog = len(self._heap) - self._live
            if backlog > self._purge_threshold and backlog > self._live:
                self._compact()

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> EventHandle:
        """Remove and return the earliest pending event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        _, _, handle = heapq.heappop(self._heap)
        self._live -= 1
        return handle

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    def _compact(self) -> None:
        """Drop every cancelled entry in one pass.

        Entries keep their original ``(time, seq)`` keys, so heap pops
        after compaction yield the identical sequence a non-compacted
        queue would -- compaction can never perturb simulation results.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._purges += 1
