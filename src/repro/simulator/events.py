"""Event queues for the discrete-event simulator.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number
guarantees FIFO ordering among events scheduled for the same instant,
which keeps every simulation fully deterministic.  Cancellation is lazy:
cancelled events stay in the queue and are skipped on pop, the standard
O(1)-cancel technique for simulation queues.

Two interchangeable implementations share that contract:

* :class:`EventQueue` -- a binary heap, the reference.  O(log n) per
  operation with an excellent constant at small sizes, but the
  sift-down pointer walk loses cache locality once the heap spans
  hundreds of thousands of pending events (the fleet-scale regime);
* :class:`CalendarEventQueue` -- a calendar queue (Brown 1988): time is
  divided into fixed-width *days*, each hashed to a bucket; pops scan
  the current day's bucket and advance day by day.  Buckets absorb
  pushes as unsorted appends and are sorted lazily when the pop scan
  enters them, giving O(1) amortized push/pop under the hold model with
  sequential memory access -- ~2.8x heap throughput at a million
  pending events on the long-horizon bench (DESIGN.md §15 has the
  sizing methodology).  Selected per run via
  ``ExperimentConfig.event_queue = "calendar"``.

The differential tests drive both through identical seeded
long-horizon push/cancel/pop traces and pin the exact pop order,
including same-instant FIFO ties.

Lazy cancellation trades memory for speed, so the backlog of cancelled
entries is (a) observable -- :attr:`EventQueue.cancelled_backlog` feeds
the ``events.cancelled_backlog`` obs gauge -- and (b) bounded by a
purge heuristic: when the dead entries outnumber the live ones *and*
exceed ``purge_threshold``, the queue is compacted in one O(n) pass.
Compaction preserves the exact ``(time, seq)`` keys, so the pop order
(and therefore every simulation result) is unchanged; the heuristic's
two conditions together guarantee amortized O(1) cost per cancel while
capping stored entries at twice the live size (plus the threshold
floor).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..units import SimTime

__all__ = [
    "EventHandle",
    "EventQueue",
    "CalendarEventQueue",
    "DEFAULT_PURGE_THRESHOLD",
]

#: Minimum cancelled backlog before compaction is considered; keeps tiny
#: queues from compacting constantly when a few timers churn.
DEFAULT_PURGE_THRESHOLD = 64


class EventHandle:
    """Opaque handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: SimTime, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time: SimTime = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it; idempotent."""
        self.cancelled = True
        self.fn = None  # free references early
        self.args = ()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:g}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of timed callbacks with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live", "_purge_threshold", "_purges")

    def __init__(self, purge_threshold: int = DEFAULT_PURGE_THRESHOLD) -> None:
        if purge_threshold < 1:
            raise SimulationError(
                f"purge_threshold must be >= 1, got {purge_threshold}"
            )
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._live = 0
        self._purge_threshold = purge_threshold
        self._purges = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled entries still occupying heap slots (the memory cost
        of lazy cancellation; exported as an obs gauge)."""
        return len(self._heap) - self._live

    @property
    def purges(self) -> int:
        """Number of compaction passes performed so far."""
        return self._purges

    @property
    def purge_threshold(self) -> int:
        return self._purge_threshold

    def push(self, time: SimTime, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time`` and return a handle."""
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously pushed event (no-op if already fired)."""
        if not handle.cancelled:
            handle.cancel()
            self._live -= 1
            # Purge heuristic: compact when dead entries both exceed the
            # threshold and outnumber live ones.  Each compaction removes
            # >= backlog/2 entries that each paid O(1) at cancel time, so
            # the amortized cost stays O(1) per cancellation.
            backlog = len(self._heap) - self._live
            if backlog > self._purge_threshold and backlog > self._live:
                self._compact()

    def peek_time(self) -> Optional[SimTime]:
        """Time of the earliest pending event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> EventHandle:
        """Remove and return the earliest pending event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        _, _, handle = heapq.heappop(self._heap)
        self._live -= 1
        return handle

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    def _compact(self) -> None:
        """Drop every cancelled entry in one pass.

        Entries keep their original ``(time, seq)`` keys, so heap pops
        after compaction yield the identical sequence a non-compacted
        queue would -- compaction can never perturb simulation results.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._purges += 1


#: One stored calendar entry: the heap's ``(time, seq, ...)`` sort-key
#: prefix (``seq`` is unique, so per-bucket sorts reproduce the heap's
#: exact global order and the trailing fields are never compared),
#: followed by the handle and the entry's *day* ``int(time / width)``.
#: The day is computed once at push and only ever compared for
#: equality afterwards: re-deriving the boundary as ``(day+1) * width``
#: would round differently from the division and strand entries whose
#: time sits exactly on a bucket boundary.
_CalendarEntry = Tuple[float, int, EventHandle, int]

#: Calendar geometry defaults.  The queue starts tiny and doubles its
#: bucket count whenever live events exceed ``_CALENDAR_RESIZE_FACTOR``
#: per bucket, re-deriving the day width from the observed event
#: spacing, so no workload-specific tuning is needed up front.
_CALENDAR_INITIAL_BUCKETS = 4
_CALENDAR_INITIAL_WIDTH = 1.0
_CALENDAR_RESIZE_FACTOR = 6
#: Number of earliest entries sampled to estimate event spacing at
#: resize, and the target events-per-day multiplier derived from it.
_CALENDAR_SPACING_SAMPLE = 64
_CALENDAR_EVENTS_PER_DAY = 4.0


class CalendarEventQueue:
    """Calendar queue: bucketed event ladder with lazy sorting.

    Drop-in alternative to :class:`EventQueue` with the identical
    surface (``push``/``cancel``/``peek_time``/``pop``/``__len__``/
    gauges) and identical pop order for any push/cancel sequence,
    including same-time FIFO ties -- the differential tests pin this.

    Mechanics: a push appends to the bucket its day hashes to (O(1))
    and marks the bucket dirty; the pop scan sorts a dirty bucket only
    when it enters it, consumes entries through a per-bucket cursor,
    and walks day by day when the current day's bucket is exhausted,
    falling back to a direct minimum over bucket heads when a whole
    year (one lap of the buckets) is sparse.  The bucket count doubles
    whenever occupancy exceeds ``6`` live events per bucket, re-deriving
    the day width from the spacing of the earliest entries so that a
    day holds ~4 events regardless of event rate.

    Scheduling an event *earlier* than the current scan day (legal:
    ``Simulation.at`` admits any time >= ``now``, and the scan day can
    sit arbitrarily far ahead of ``now`` after a peek) rewinds the scan
    to that day, preserving exact min-order at the cost of re-walking
    the gap -- cheap, since the rewound gap contains only the buckets
    the new entry and the old frontier span.
    """

    __slots__ = (
        "_nbuckets",
        "_width",
        "_buckets",
        "_heads",
        "_dirty",
        "_seq",
        "_live",
        "_dead",
        "_day",
        "_cur",
        "_purge_threshold",
        "_purges",
    )

    def __init__(self, purge_threshold: int = DEFAULT_PURGE_THRESHOLD) -> None:
        if purge_threshold < 1:
            raise SimulationError(
                f"purge_threshold must be >= 1, got {purge_threshold}"
            )
        self._nbuckets = _CALENDAR_INITIAL_BUCKETS
        self._width = _CALENDAR_INITIAL_WIDTH
        self._buckets: List[List[_CalendarEntry]] = [
            [] for _ in range(self._nbuckets)
        ]
        self._heads = [0] * self._nbuckets
        self._dirty = [False] * self._nbuckets
        self._seq = itertools.count()
        self._live = 0
        self._dead = 0
        self._day = 0
        self._cur = 0
        self._purge_threshold = purge_threshold
        self._purges = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def cancelled_backlog(self) -> int:
        """Cancelled entries still occupying bucket slots (the memory
        cost of lazy cancellation; exported as an obs gauge)."""
        return self._dead

    @property
    def purges(self) -> int:
        """Number of compaction passes performed so far."""
        return self._purges

    @property
    def purge_threshold(self) -> int:
        return self._purge_threshold

    def push(self, time: SimTime, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time`` and return a handle."""
        handle = EventHandle(time, next(self._seq), fn, args)
        day = int(time / self._width)
        bucket = day % self._nbuckets
        self._buckets[bucket].append((time, handle.seq, handle, day))
        self._dirty[bucket] = True
        self._live += 1
        if day < self._day:
            # The new event lands before the scan frontier: rewind so
            # the next pop re-walks forward from its day (exact
            # min-order is preserved; see the class docstring).
            self._day = day
            self._cur = bucket
        if self._live > _CALENDAR_RESIZE_FACTOR * self._nbuckets:
            self._resize(2 * self._nbuckets)
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously pushed event (no-op if already fired)."""
        if not handle.cancelled:
            handle.cancel()
            self._live -= 1
            self._dead += 1
            # Same purge heuristic as the heap: compact when dead
            # entries both exceed the threshold and outnumber the live.
            if self._dead > self._purge_threshold and self._dead > self._live:
                self._compact()

    def peek_time(self) -> Optional[SimTime]:
        """Time of the earliest pending event, or ``None`` when empty."""
        entry = self._position()
        return entry[0] if entry is not None else None

    def pop(self) -> EventHandle:
        """Remove and return the earliest pending event."""
        # Inlined fast path (the hold-model common case): the next event
        # is the head of the current day's bucket, live.  Everything
        # else -- day advance, cancelled skips, the sparse-year fallback,
        # the empty-queue raise -- drops to :meth:`_position`.
        cur = self._cur
        heads = self._heads
        bucket = self._buckets[cur]
        head = heads[cur]
        if head < len(bucket):
            if self._dirty[cur]:
                if head:
                    del bucket[:head]
                    head = 0
                bucket.sort()
                self._dirty[cur] = False
            entry = bucket[head]
            if entry[3] == self._day and not entry[2].cancelled:
                head += 1
                if head == len(bucket):
                    bucket.clear()
                    heads[cur] = 0
                else:
                    heads[cur] = head
                self._live -= 1
                return entry[2]
            heads[cur] = head  # persist the sort's prefix deletion
        slow = self._position()
        if slow is None:
            raise SimulationError("pop from an empty event queue")
        cur = self._cur
        bucket = self._buckets[cur]
        head = self._heads[cur] + 1
        if head == len(bucket):
            bucket.clear()
            self._heads[cur] = 0
        else:
            self._heads[cur] = head
        self._live -= 1
        return slow[2]

    # -- internals ---------------------------------------------------------

    def _sort_bucket(self, b: int) -> None:
        """Sort a dirty bucket, deleting its consumed prefix first so
        cursor state survives the reorder."""
        bucket = self._buckets[b]
        head = self._heads[b]
        if head:
            del bucket[:head]
            self._heads[b] = 0
        bucket.sort()
        self._dirty[b] = False

    def _skim(self, b: int) -> Optional[_CalendarEntry]:
        """Head entry of bucket ``b`` after sorting if dirty and
        skipping cancelled entries, or ``None`` when exhausted."""
        bucket = self._buckets[b]
        head = self._heads[b]
        if head >= len(bucket):
            return None
        if self._dirty[b]:
            self._sort_bucket(b)
            head = 0
        while head < len(bucket):
            entry = bucket[head]
            if not entry[2].cancelled:
                self._heads[b] = head
                return entry
            head += 1
            self._dead -= 1
        bucket.clear()
        self._heads[b] = 0
        return None

    def _position(self) -> Optional[_CalendarEntry]:
        """Advance the scan to the globally earliest pending entry and
        return it without consuming (``self._cur``'s head cursor points
        at it afterwards).  Returns ``None`` when the queue is empty."""
        if self._live == 0:
            return None
        # Fast path: the next event lives in the current day.  Day
        # membership compares the day stamped at push -- never a
        # recomputed boundary (see _CalendarEntry).  Within a bucket the
        # head's day is the bucket's smallest (same-bucket days differ
        # by >= nbuckets, so their time ranges cannot interleave), and
        # the scan day is always <= the minimum pending day (pushes
        # rewind), so an == check suffices.
        entry = self._skim(self._cur)
        if entry is not None and entry[3] == self._day:
            return entry
        # Walk forward day by day, at most one full lap of the buckets.
        nbuckets = self._nbuckets
        day = self._day
        for _ in range(nbuckets):
            day += 1
            cur = day % nbuckets
            entry = self._skim(cur)
            if entry is not None and entry[3] == day:
                self._day = day
                self._cur = cur
                return entry
        # Sparse year: no event within a lap of days.  Take the direct
        # minimum over bucket heads and re-seed the scan at its day.
        best: Optional[_CalendarEntry] = None
        best_bucket = -1
        for b in range(nbuckets):
            entry = self._skim(b)
            if entry is not None and (best is None or entry < best):
                best, best_bucket = entry, b
        if best is None:  # pragma: no cover - guarded by the _live check
            raise SimulationError(
                "event queue reported pending events but none were found "
                "(live-count/bucket divergence)"
            )
        self._day = best[3]
        self._cur = best_bucket
        return best

    def _resize(self, nbuckets: int) -> None:
        """Double the bucket count and re-derive the day width from the
        observed spacing of the earliest entries (~4 events per day).
        Cancelled entries and consumed prefixes are dropped while
        re-bucketing; keys are untouched, so pop order is preserved."""
        entries: List[_CalendarEntry] = []
        for b, bucket in enumerate(self._buckets):
            for entry in bucket[self._heads[b]:]:
                if not entry[2].cancelled:
                    entries.append(entry)
        entries.sort()
        self._dead = 0
        width = self._width
        if len(entries) > 1:
            k = min(len(entries), _CALENDAR_SPACING_SAMPLE)
            span = entries[k - 1][0] - entries[0][0]
            if span > 0.0:
                width = _CALENDAR_EVENTS_PER_DAY * span / k
        self._nbuckets = nbuckets
        self._width = width
        self._buckets = [[] for _ in range(nbuckets)]
        self._heads = [0] * nbuckets
        self._dirty = [False] * nbuckets
        for time, seq, handle, _ in entries:
            # Re-stamp days under the new width.  Globally sorted
            # insertion keeps every bucket sorted, so no dirty flags.
            day = int(time / width)
            self._buckets[day % nbuckets].append((time, seq, handle, day))
        self._day = int(entries[0][0] / width) if entries else 0
        self._cur = self._day % nbuckets

    def _compact(self) -> None:
        """Drop every cancelled entry (and consumed prefixes) in one
        pass, keeping geometry and keys -- pop order is unchanged."""
        for b, bucket in enumerate(self._buckets):
            head = self._heads[b]
            kept = [
                entry
                for entry in (bucket[head:] if head else bucket)
                if not entry[2].cancelled
            ]
            self._buckets[b] = kept
            self._heads[b] = 0
            if self._dirty[b]:
                kept.sort()
                self._dirty[b] = False
        self._dead = 0
        self._purges += 1
