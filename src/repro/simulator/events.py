"""Binary-heap event queue for the discrete-event simulator.

Events are ``(time, sequence)``-ordered callbacks.  The sequence number
guarantees FIFO ordering among events scheduled for the same instant,
which keeps every simulation fully deterministic.  Cancellation is lazy:
cancelled events stay in the heap and are skipped on pop, the standard
O(1)-cancel technique for simulation heaps.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventHandle", "EventQueue"]


class EventHandle:
    """Opaque handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it; idempotent."""
        self.cancelled = True
        self.fn = None  # free references early
        self.args = ()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:g}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of timed callbacks with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time`` and return a handle."""
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously pushed event (no-op if already fired)."""
        if not handle.cancelled:
            handle.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> EventHandle:
        """Remove and return the earliest pending event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        _, _, handle = heapq.heappop(self._heap)
        self._live -= 1
        return handle

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
