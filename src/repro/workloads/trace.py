"""Offline traces: generation, persistence, and transformation.

A trace is a time-sorted sequence of :class:`TraceRecord` rows --
``(time, tenant, api, cost)`` -- the same information the paper's
production traces carry.  Traces are produced from open-loop tenant
specs, can be saved/loaded as CSV (optionally gzipped), merged, rescaled,
and *scrambled* into unpredictable variants (paper §6.2.1: unpredictable
tenants are made "by sampling each request pseudo-randomly from across
all production traces disregarding the originating server or account").
"""

from __future__ import annotations

import csv
import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Union

import numpy as np

from ..errors import WorkloadError
from ..simulator.rng import make_rng
from .arrivals import OpenLoopProcess
from .spec import TenantSpec

__all__ = [
    "TraceRecord",
    "generate_trace",
    "merge_traces",
    "scramble_trace",
    "rescale_trace",
    "thin_trace",
    "chunk_trace",
    "save_trace",
    "load_trace",
    "trace_statistics",
]

_HEADER = ("time", "tenant", "api", "cost")


@dataclass(frozen=True)
class TraceRecord:
    """One request arrival in an offline trace."""

    time: float
    tenant: str
    api: str
    cost: float

    def as_tuple(self) -> tuple[float, str, str, float]:
        return (self.time, self.tenant, self.api, self.cost)


def generate_trace(
    specs: Sequence[TenantSpec],
    duration: float,
    seed: int = 0,
) -> List[TraceRecord]:
    """Generate a merged, time-sorted trace from open-loop tenant specs.

    Backlogged (closed-loop) specs cannot be pre-materialized -- their
    arrival times depend on the scheduler -- and raise
    :class:`~repro.errors.WorkloadError`.
    """
    records: List[TraceRecord] = []
    for spec in specs:
        process = spec.arrivals
        if not isinstance(process, OpenLoopProcess):
            raise WorkloadError(
                f"tenant {spec.tenant_id} is closed-loop; traces require "
                "open-loop arrival processes"
            )
        arrival_rng = make_rng(seed, "arrivals", spec.tenant_id)
        cost_rng = make_rng(seed, "costs", spec.tenant_id)
        sampler = spec.request_sampler(cost_rng)
        for time in process.arrival_times(arrival_rng, duration):
            api, cost = sampler()
            records.append(TraceRecord(float(time), spec.tenant_id, api, cost))
    records.sort(key=lambda r: (r.time, r.tenant))
    return records


def merge_traces(*traces: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Merge traces into one time-sorted trace."""
    merged: List[TraceRecord] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=lambda r: (r.time, r.tenant))
    return merged


def scramble_trace(
    trace: Sequence[TraceRecord],
    tenants: Sequence[str],
    seed: int = 0,
) -> List[TraceRecord]:
    """Make the given tenants *unpredictable* (paper §6.2.1).

    Each selected tenant keeps its arrival times but has every request's
    ``(api, cost)`` replaced by a pair sampled uniformly at random from
    the whole trace, "disregarding the originating server or account".
    The result "lack[s] predictability in API type and cost that is
    common to real-world tenants".
    """
    if not trace:
        return []
    pool = [(r.api, r.cost) for r in trace]
    rng = make_rng(seed, "scramble", *sorted(tenants))
    selected = set(tenants)
    out: List[TraceRecord] = []
    indices = rng.integers(0, len(pool), size=len(trace))
    for record, index in zip(trace, indices):
        if record.tenant in selected:
            api, cost = pool[int(index)]
            out.append(TraceRecord(record.time, record.tenant, api, cost))
        else:
            out.append(record)
    return out


def rescale_trace(
    trace: Sequence[TraceRecord], speed: float
) -> List[TraceRecord]:
    """Compress (speed > 1) or stretch (speed < 1) a trace in time."""
    if speed <= 0:
        raise WorkloadError(f"speed must be positive, got {speed}")
    return [
        TraceRecord(r.time / speed, r.tenant, r.api, r.cost) for r in trace
    ]


def thin_trace(
    trace: Sequence[TraceRecord],
    keep_fraction: float,
    seed: int = 0,
) -> List[TraceRecord]:
    """Randomly keep each record with probability ``keep_fraction``.

    Thinning scales a trace's aggregate demand without disturbing its
    cost distributions or arrival shapes; the experiment harness uses it
    to pin open-loop load to a target utilization so queues stay busy
    but bounded (the paper "used ... traces ... to keep the server busy
    throughout the experiments, but also ran experiments at lower
    utilizations", §6).
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise WorkloadError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    if keep_fraction >= 1.0:
        return list(trace)
    rng = make_rng(seed, "thin")
    keep = rng.random(len(trace)) < keep_fraction
    return [record for record, k in zip(trace, keep) if k]


def chunk_trace(
    trace: Sequence[TraceRecord],
    max_cost: float,
    overhead: float = 0.0,
) -> List[TraceRecord]:
    """Split requests larger than ``max_cost`` into chunks (paper §7).

    The paper discusses the alternative to 2DFQ of reducing cost
    variation at the source: "after 100ms of work a request could pause
    and re-enter the scheduler queue" (the approach of Google's web
    search stack).  This transform models it at the workload level: a
    request of cost ``c`` becomes ``ceil(c / max_cost)`` requests of
    cost ``<= max_cost`` arriving at the same instant, each inflated by
    ``overhead`` cost units -- the re-entry/cache-refill penalty the
    paper warns about.  Per-tenant FIFO ordering preserves chunk order.
    """
    if max_cost <= 0:
        raise WorkloadError(f"max_cost must be positive, got {max_cost}")
    if overhead < 0:
        raise WorkloadError(f"overhead must be >= 0, got {overhead}")
    out: List[TraceRecord] = []
    for record in trace:
        remaining = record.cost
        while remaining > 0:
            piece = min(remaining, max_cost)
            out.append(
                TraceRecord(
                    record.time, record.tenant, record.api, piece + overhead
                )
            )
            remaining -= piece
    return out


def save_trace(
    trace: Iterable[TraceRecord], path: Union[str, Path]
) -> None:
    """Write a trace as CSV; ``.gz`` suffix triggers gzip compression."""
    path = Path(path)
    raw = io.StringIO()
    writer = csv.writer(raw)
    writer.writerow(_HEADER)
    for record in trace:
        # repr() round-trips floats exactly (shortest representation).
        writer.writerow(
            (repr(record.time), record.tenant, record.api, repr(record.cost))
        )
    data = raw.getvalue().encode("utf-8")
    if path.suffix == ".gz":
        path.write_bytes(gzip.compress(data))
    else:
        path.write_bytes(data)


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".gz":
        data = gzip.decompress(path.read_bytes()).decode("utf-8")
    else:
        data = path.read_text()
    reader = csv.reader(io.StringIO(data))
    header = next(reader, None)
    if header is None or tuple(header) != _HEADER:
        raise WorkloadError(f"{path}: not a trace file (header {header})")
    records: List[TraceRecord] = []
    for row in reader:
        if len(row) != 4:
            raise WorkloadError(f"{path}: malformed row {row}")
        records.append(
            TraceRecord(float(row[0]), row[1], row[2], float(row[3]))
        )
    return records


def trace_statistics(trace: Sequence[TraceRecord]) -> dict:
    """Aggregate statistics of a trace (used in workload validation)."""
    if not trace:
        return {"requests": 0}
    costs = np.array([r.cost for r in trace])
    return {
        "requests": len(trace),
        "tenants": len({r.tenant for r in trace}),
        "apis": len({r.api for r in trace}),
        "duration": trace[-1].time - trace[0].time,
        "cost_min": float(costs.min()),
        "cost_p50": float(np.percentile(costs, 50)),
        "cost_p99": float(np.percentile(costs, 99)),
        "cost_max": float(costs.max()),
        "total_cost": float(costs.sum()),
    }
