"""Azure-Storage-like generative workload model.

The paper's evaluation replays production traces collected from 50 Azure
Storage servers.  Those traces are proprietary; this module implements
the closest synthetic equivalent (see DESIGN.md, Substitutions): a
generative model whose marginals match everything the paper publishes
about the workload --

* **APIs** ``A .. K`` with cost distributions matching Figure 2a:
  consistently cheap (A), widely varying (K), usually-cheap-sometimes-
  expensive (G), with aggregate costs spanning ~4 orders of magnitude
  (roughly 1e2 .. 1e7 anonymized units);
* **named tenants** ``T1 .. T12`` matching Figure 2b / Figure 4 and the
  §3.2 descriptions: T1 small & predictable, T2 stable rate, T3 tapering
  burst over four APIs, T9 mixed small/large, T10 unstable with bursts
  and lulls spanning >3 decades, T11 large & predictable, T12 large &
  erratic;
* **random tenants** whose per-(tenant, API) cost profiles reproduce the
  Figure 3 scatter: each API has both predictable (low CoV) and
  unpredictable (high CoV) tenants, because a tenant's per-API
  distribution is much narrower than the API's population distribution
  -- except for the unlucky unpredictable minority.

All sampling is seeded; two calls with the same seed yield identical
workloads, which the controlled scheduler comparisons rely on.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..simulator.rng import make_rng
from .arrivals import (
    ArrivalProcess,
    Backlogged,
    DecayingBurstArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from .distributions import (
    CostDistribution,
    LogNormalCost,
    LogUniformCost,
    MixtureCost,
)
from .spec import TenantSpec

__all__ = [
    "API_NAMES",
    "api_population_distribution",
    "named_tenants",
    "named_tenant",
    "random_tenant",
    "random_tenants",
    "backlogged_variant",
    "NAMED_TENANT_IDS",
]

#: The ten anonymized Azure Storage APIs of Figure 2a.
API_NAMES = ("A", "B", "C", "D", "E", "F", "G", "H", "J", "K")

#: Hard bounds of the anonymized cost units: Figure 2 shows ~1e2 at the
#: bottom; the production experiment of §6.1.2 spans "250 to 5 million",
#: which sets the ceiling (a 5e6 request runs 5 s on a 1e6 units/s thread).
COST_FLOOR = 100.0
COST_CEIL = 5.0e6

# Population-level API profiles: (log10 median, log10 sigma across the
# *population* of tenants, tail behaviour).  Tuned to the Figure 2a
# violins: A tight and cheap, G bimodal, H wide, K spanning decades.
_API_PROFILES: Dict[str, dict] = {
    "A": {"median": 3.0e2, "spread": 0.15, "tenant_sigma": (0.05, 0.2)},
    "B": {"median": 6.0e2, "spread": 0.3, "tenant_sigma": (0.05, 0.3)},
    "C": {"median": 2.0e3, "spread": 0.4, "tenant_sigma": (0.1, 0.4)},
    "D": {"median": 5.0e3, "spread": 0.5, "tenant_sigma": (0.1, 0.5)},
    "E": {"median": 8.0e3, "spread": 0.6, "tenant_sigma": (0.1, 0.5)},
    "F": {"median": 1.5e4, "spread": 0.5, "tenant_sigma": (0.1, 0.5)},
    "G": {
        "median": 1.5e3,
        "spread": 0.3,
        "tenant_sigma": (0.05, 0.4),
        # "usually cheap but occasionally very expensive" (Figure 2a):
        # a heavy secondary mode several decades up.
        "tail": {"weight": 0.05, "median": 8.0e5, "spread": 0.35},
    },
    "H": {"median": 8.0e3, "spread": 0.8, "tenant_sigma": (0.15, 0.8)},
    "J": {"median": 1.0e4, "spread": 0.5, "tenant_sigma": (0.1, 0.5)},
    "K": {"median": 2.0e4, "spread": 1.0, "tenant_sigma": (0.2, 1.0)},
}


def api_population_distribution(api: str) -> CostDistribution:
    """Population-level cost distribution of an API (Figure 2a violin):
    what you see aggregating over *all* tenants using the API."""
    profile = _API_PROFILES[api]
    base = LogNormalCost(
        profile["median"], profile["spread"], low=COST_FLOOR, high=COST_CEIL
    )
    tail = profile.get("tail")
    if tail is None:
        return base
    expensive = LogNormalCost(
        tail["median"], tail["spread"], low=COST_FLOOR, high=COST_CEIL
    )
    return MixtureCost([base, expensive], [1.0 - tail["weight"], tail["weight"]])


def _tenant_api_distribution(
    api: str,
    rng: np.random.Generator,
    predictable: bool,
    median_override: Optional[float] = None,
    sigma_override: Optional[float] = None,
) -> CostDistribution:
    """Cost distribution of one (tenant, API) pair.

    Figure 3 (left): conditioning on the tenant collapses most of an
    API's population spread -- each tenant draws its own median from the
    population distribution and keeps a narrow personal sigma, unless it
    is one of the unpredictable tenants, whose personal sigma approaches
    the full population spread.
    """
    profile = _API_PROFILES[api]
    if median_override is not None:
        median = median_override
    else:
        # Tenant's personal median: log-normal around the API median.
        offset = rng.normal(0.0, profile["spread"])
        median = profile["median"] * 10.0**offset
        median = min(max(median, COST_FLOOR), COST_CEIL)
    sigma_low, sigma_high = profile["tenant_sigma"]
    if sigma_override is not None:
        sigma = sigma_override
    elif predictable:
        sigma = rng.uniform(sigma_low, sigma_low + 0.3 * (sigma_high - sigma_low))
    else:
        sigma = rng.uniform(
            sigma_low + 0.6 * (sigma_high - sigma_low), sigma_high
        )
    base = LogNormalCost(median, sigma, low=COST_FLOOR, high=COST_CEIL)
    tail = profile.get("tail")
    if tail is not None and not predictable:
        expensive = LogNormalCost(
            tail["median"], tail["spread"], low=COST_FLOOR, high=COST_CEIL
        )
        return MixtureCost([base, expensive], [1.0 - tail["weight"], tail["weight"]])
    return base


# ---------------------------------------------------------------------------
# Named tenants T1 .. T12 (Figure 2b, Figure 4, §3.2, §6)
# ---------------------------------------------------------------------------

NAMED_TENANT_IDS = tuple(f"T{i}" for i in range(1, 13))


def _t(
    tenant_id: str,
    apis: Dict[str, CostDistribution],
    arrivals: ArrivalProcess,
    api_weights: Optional[Dict[str, float]] = None,
) -> TenantSpec:
    return TenantSpec(
        tenant_id=tenant_id,
        api_costs=apis,
        api_weights=api_weights,
        arrivals=arrivals,
    )


def named_tenant(tenant_id: str, seed: int = 0) -> TenantSpec:
    """Build one of the paper's reference tenants ``T1`` .. ``T12``.

    The profiles encode everything the paper states:

    * **T1** -- "primarily small requests between 250 and 1000 in size"
      (§6.1.2), highly predictable; the poster child for 2DFQ gains.
    * **T2** -- "stable request rate, small requests, and little
      variation in request cost" over APIs A and B (Figure 4a).
    * **T3** -- "a large burst of requests that then tapers off, with
      costs across four APIs [B, H, J, C] that vary by about 1.5 orders
      of magnitude" (Figure 4b).
    * **T4..T8** -- the predictable middle of Figure 2b, with medians
      stepping up from small to large.
    * **T9** -- "a mixture of small and large requests with a lot of
      variation" (§3.1).
    * **T10** -- "the most unpredictable tenant, with bursts and lulls
      of requests, and costs that span more than three orders of
      magnitude" over APIs G and H (Figure 4c).
    * **T11** -- "large requests but also with little variation" (§3.1).
    * **T12** -- large and erratic (the other tenant the paper lists as
      seeing little benefit, §6.2.2).

    Arrival processes are used when the tenant is driven open-loop; the
    production experiments of §6 run T1..T12 continuously backlogged so
    their lag/latency is comparable across experiments, matching the
    role they play in the paper's figures.
    """
    if tenant_id == "T1":
        return _t(
            "T1",
            {"A": LogNormalCost(500.0, 0.08, low=250.0, high=1000.0)},
            PoissonArrivals(rate=100.0),
        )
    if tenant_id == "T2":
        return _t(
            "T2",
            {
                "A": LogNormalCost(400.0, 0.12, low=COST_FLOOR, high=5e3),
                "B": LogNormalCost(1500.0, 0.15, low=COST_FLOOR, high=1e4),
            },
            PoissonArrivals(rate=60.0),
            api_weights={"A": 0.7, "B": 0.3},
        )
    if tenant_id == "T3":
        return _t(
            "T3",
            {
                "B": LogNormalCost(700.0, 0.15, low=COST_FLOOR, high=COST_CEIL),
                "H": LogNormalCost(9000.0, 0.25, low=COST_FLOOR, high=COST_CEIL),
                "J": LogNormalCost(4000.0, 0.2, low=COST_FLOOR, high=COST_CEIL),
                "C": LogNormalCost(1800.0, 0.2, low=COST_FLOOR, high=COST_CEIL),
            },
            DecayingBurstArrivals(peak_rate=120.0, tau=8.0, floor_rate=10.0),
            api_weights={"B": 0.4, "H": 0.2, "J": 0.2, "C": 0.2},
        )
    if tenant_id == "T4":
        return _t(
            "T4",
            {"A": LogNormalCost(350.0, 0.1, low=COST_FLOOR, high=COST_CEIL),
             "C": LogNormalCost(1200.0, 0.15, low=COST_FLOOR, high=COST_CEIL)},
            PoissonArrivals(rate=90.0),
        )
    if tenant_id == "T5":
        return _t(
            "T5",
            {"C": LogNormalCost(2500.0, 0.15, low=COST_FLOOR, high=COST_CEIL)},
            PoissonArrivals(rate=30.0),
        )
    if tenant_id == "T6":
        return _t(
            "T6",
            {"D": LogNormalCost(6000.0, 0.25, low=COST_FLOOR, high=COST_CEIL),
             "E": LogNormalCost(9000.0, 0.3, low=COST_FLOOR, high=COST_CEIL)},
            PoissonArrivals(rate=10.0),
        )
    if tenant_id == "T7":
        return _t(
            "T7",
            {"E": LogNormalCost(1.2e4, 0.3, low=COST_FLOOR, high=COST_CEIL),
             "F": LogNormalCost(2.5e4, 0.3, low=COST_FLOOR, high=COST_CEIL)},
            PoissonArrivals(rate=4.0),
        )
    if tenant_id == "T8":
        return _t(
            "T8",
            {"F": LogNormalCost(4.0e4, 0.2, low=COST_FLOOR, high=COST_CEIL)},
            PoissonArrivals(rate=1.5),
        )
    if tenant_id == "T9":
        return _t(
            "T9",
            {
                "A": LogNormalCost(400.0, 0.15, low=COST_FLOOR, high=COST_CEIL),
                "K": LogNormalCost(1.5e5, 0.8, low=COST_FLOOR, high=COST_CEIL),
            },
            PoissonArrivals(rate=2.0),
            api_weights={"A": 0.6, "K": 0.4},
        )
    if tenant_id == "T10":
        return _t(
            "T10",
            {
                "G": MixtureCost(
                    [
                        LogNormalCost(1.0e3, 0.35, low=COST_FLOOR, high=COST_CEIL),
                        LogNormalCost(2.0e6, 0.4, low=COST_FLOOR, high=COST_CEIL),
                    ],
                    [0.85, 0.15],
                ),
                "H": LogNormalCost(2.0e4, 0.9, low=COST_FLOOR, high=COST_CEIL),
            },
            OnOffArrivals(burst_rate=60.0, mean_on=3.0, mean_off=2.5),
            api_weights={"G": 0.6, "H": 0.4},
        )
    if tenant_id == "T11":
        return _t(
            "T11",
            {"F": LogNormalCost(2.0e5, 0.1, low=COST_FLOOR, high=COST_CEIL)},
            PoissonArrivals(rate=1.5),
        )
    if tenant_id == "T12":
        return _t(
            "T12",
            {"K": LogUniformCost(1.0e4, 5.0e6)},
            OnOffArrivals(burst_rate=3.0, mean_on=4.0, mean_off=3.0),
        )
    raise KeyError(f"unknown named tenant {tenant_id!r}")


def named_tenants(seed: int = 0) -> List[TenantSpec]:
    """All twelve reference tenants ``T1 .. T12``."""
    return [named_tenant(tid, seed) for tid in NAMED_TENANT_IDS]


# ---------------------------------------------------------------------------
# Random tenant population ("250 randomly chosen tenants", §6.1.2)
# ---------------------------------------------------------------------------

def random_tenant(
    index: int,
    seed: int = 0,
    unpredictable_fraction: float = 0.3,
    rate_range: tuple[float, float] = (5.0, 150.0),
) -> TenantSpec:
    """Generate a plausible Azure-like tenant.

    Each tenant uses 1-3 APIs.  With probability ``unpredictable_fraction``
    the tenant is *unpredictable*: its per-API sigma approaches the API's
    full population spread, reproducing the high-CoV points of Figure 3.
    Rates are log-uniform over ``rate_range`` requests/second.
    """
    tenant_id = f"R{index}"
    rng = make_rng(seed, "azure-tenant", tenant_id)
    predictable = bool(rng.random() >= unpredictable_fraction)
    api_count = int(rng.integers(1, 4))
    apis = list(rng.choice(API_NAMES, size=api_count, replace=False))
    api_costs = {
        api: _tenant_api_distribution(api, rng, predictable) for api in apis
    }
    raw_weights = rng.dirichlet(np.ones(api_count))
    api_weights = {api: float(w) for api, w in zip(apis, raw_weights)}
    low, high = rate_range
    rate = float(math.exp(rng.uniform(math.log(low), math.log(high))))
    arrivals: ArrivalProcess
    shape = rng.random()
    if shape < 0.6:
        arrivals = PoissonArrivals(rate=rate)
    elif shape < 0.8:
        arrivals = OnOffArrivals(
            burst_rate=rate * 2.5, mean_on=rng.uniform(1.0, 5.0),
            mean_off=rng.uniform(1.0, 5.0),
        )
    else:
        arrivals = DecayingBurstArrivals(
            peak_rate=rate * 3.0, tau=rng.uniform(3.0, 12.0),
            floor_rate=rate * 0.2,
        )
    return TenantSpec(
        tenant_id=tenant_id,
        api_costs=api_costs,
        api_weights=api_weights,
        arrivals=arrivals,
    )


def random_tenants(
    count: int,
    seed: int = 0,
    unpredictable_fraction: float = 0.3,
    rate_range: tuple[float, float] = (5.0, 150.0),
) -> List[TenantSpec]:
    """A population of ``count`` random Azure-like tenants."""
    return [
        random_tenant(i, seed, unpredictable_fraction, rate_range)
        for i in range(count)
    ]


def backlogged_variant(spec: TenantSpec, window: int = 4) -> TenantSpec:
    """Rebuild a spec as a continuously backlogged (closed-loop) tenant,
    keeping its cost profile -- used when the experiment harness needs
    the tenant always competing (e.g. T1..T12 in §6)."""
    return TenantSpec(
        tenant_id=spec.tenant_id,
        api_costs=spec.api_costs,
        api_weights=spec.api_weights,
        arrivals=Backlogged(window=window),
        weight=spec.weight,
    )
