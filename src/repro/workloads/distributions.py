"""Cost distributions for workload models.

Paper §3.1: request costs in Azure Storage span four orders of magnitude,
with per-API shapes ranging from "consistently cheap" to "usually cheap
but occasionally very expensive".  Log-normal mixtures capture all of the
published shapes; each distribution object owns no RNG -- sampling takes
a generator, so one distribution can be shared across seeded streams.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "CostDistribution",
    "FixedCost",
    "NormalCost",
    "LogNormalCost",
    "LogUniformCost",
    "MixtureCost",
]


class CostDistribution(ABC):
    """A positive cost distribution."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one cost (always > 0)."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic mean, used for utilization planning in experiments."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized convenience used by workload statistics tools."""
        return np.array([self.sample(rng) for _ in range(n)])


class FixedCost(CostDistribution):
    """Degenerate distribution: every request costs the same.

    Used for the paper's fixed-cost probe tenants ``t1 .. t7`` whose
    costs are ``2^8, 2^10, ..., 2^20`` (§6.1.2).
    """

    def __init__(self, cost: float) -> None:
        if cost <= 0:
            raise ConfigurationError(f"cost must be positive, got {cost}")
        self.cost = float(cost)

    def sample(self, rng: np.random.Generator) -> float:
        return self.cost

    def mean(self) -> float:
        return self.cost

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.cost)

    def __repr__(self) -> str:
        return f"FixedCost({self.cost:g})"


class NormalCost(CostDistribution):
    """Normal distribution truncated to stay positive.

    The Figure 8 synthetic workload draws small requests from
    ``N(1, 0.1)`` and expensive requests from ``N(1000, 100)``.
    """

    def __init__(self, mu: float, sigma: float, floor: float = 1e-6) -> None:
        if mu <= 0:
            raise ConfigurationError(f"mu must be positive, got {mu}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.floor = float(floor)

    def sample(self, rng: np.random.Generator) -> float:
        return max(self.floor, rng.normal(self.mu, self.sigma))

    def mean(self) -> float:
        # Truncation is negligible for the mu/sigma ratios used here.
        return self.mu

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.maximum(self.floor, rng.normal(self.mu, self.sigma, size=n))

    def __repr__(self) -> str:
        return f"NormalCost(mu={self.mu:g}, sigma={self.sigma:g})"


class LogNormalCost(CostDistribution):
    """Log-normal parameterized by *median* and *decades of spread*.

    ``sigma_decades`` is the standard deviation of ``log10(cost)``; a
    value of 1.0 means ~two-thirds of samples fall within one decade of
    the median, mirroring how the paper describes spreads ("orders of
    magnitude").  Optional hard bounds clip the tails so a model API
    cannot exceed the published cost range.
    """

    def __init__(
        self,
        median: float,
        sigma_decades: float,
        low: float | None = None,
        high: float | None = None,
    ) -> None:
        if median <= 0:
            raise ConfigurationError(f"median must be positive, got {median}")
        if sigma_decades < 0:
            raise ConfigurationError(
                f"sigma_decades must be >= 0, got {sigma_decades}"
            )
        if low is not None and high is not None and low > high:
            raise ConfigurationError(f"low {low} > high {high}")
        self.median = float(median)
        self.sigma_decades = float(sigma_decades)
        self.low = low
        self.high = high
        self._mu = math.log(self.median)
        self._sigma = self.sigma_decades * math.log(10.0)

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(self._mu, self._sigma))
        return self._clip(value)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = rng.lognormal(self._mu, self._sigma, size=n)
        if self.low is not None:
            values = np.maximum(values, self.low)
        if self.high is not None:
            values = np.minimum(values, self.high)
        return values

    def mean(self) -> float:
        return math.exp(self._mu + self._sigma**2 / 2.0)

    def _clip(self, value: float) -> float:
        if self.low is not None and value < self.low:
            return self.low
        if self.high is not None and value > self.high:
            return self.high
        return value

    def __repr__(self) -> str:
        return (
            f"LogNormalCost(median={self.median:g}, "
            f"sigma_decades={self.sigma_decades:g})"
        )


class LogUniformCost(CostDistribution):
    """Uniform in log space between ``low`` and ``high``.

    Models "varies widely" APIs whose violins in Figure 2a are flat
    across several decades.
    """

    def __init__(self, low: float, high: float) -> None:
        if low <= 0 or high <= low:
            raise ConfigurationError(f"need 0 < low < high, got {low}, {high}")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        )

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.exp(rng.uniform(math.log(self.low), math.log(self.high), size=n))

    def mean(self) -> float:
        span = math.log(self.high) - math.log(self.low)
        return (self.high - self.low) / span

    def __repr__(self) -> str:
        return f"LogUniformCost({self.low:g}, {self.high:g})"


class MixtureCost(CostDistribution):
    """Weighted mixture of component distributions.

    Captures the "usually cheap but occasionally very expensive" APIs
    (paper Figure 2a, API G) as e.g. 93% cheap log-normal + 7% expensive
    log-normal.
    """

    def __init__(
        self,
        components: Sequence[CostDistribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) != len(weights) or not components:
            raise ConfigurationError("components and weights must match, non-empty")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(f"invalid mixture weights {weights}")
        total = float(sum(weights))
        self.components = list(components)
        self.weights = [w / total for w in weights]
        self._cumulative = np.cumsum(self.weights)

    def sample(self, rng: np.random.Generator) -> float:
        index = int(np.searchsorted(self._cumulative, rng.random(), side="right"))
        index = min(index, len(self.components) - 1)
        return self.components[index].sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        picks = np.searchsorted(self._cumulative, rng.random(n), side="right")
        picks = np.minimum(picks, len(self.components) - 1)
        out = np.empty(n)
        for i, component in enumerate(self.components):
            mask = picks == i
            count = int(mask.sum())
            if count:
                out[mask] = component.sample_many(rng, count)
        return out

    def mean(self) -> float:
        return sum(w * c.mean() for w, c in zip(self.weights, self.components))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.2f}*{c!r}" for w, c in zip(self.weights, self.components)
        )
        return f"MixtureCost({parts})"
