"""Workload specification objects.

A :class:`TenantSpec` describes one tenant's behaviour fully:

* which APIs it calls and with what probability;
* the cost distribution of each (tenant, API) pair -- per-tenant,
  because the paper shows each API is used predictably by some tenants
  and unpredictably by others (Figure 3);
* its arrival behaviour: continuously backlogged (closed loop) or an
  open-loop arrival process.

Specs are pure data plus samplers; they are turned into simulator
sources by :mod:`repro.workloads.build` and into offline traces by
:mod:`repro.workloads.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from .arrivals import ArrivalProcess, Backlogged
from .distributions import CostDistribution

__all__ = ["TenantSpec"]


@dataclass
class TenantSpec:
    """Complete description of one tenant's workload.

    Parameters
    ----------
    tenant_id:
        Flow identifier.
    api_costs:
        Mapping of API name to the cost distribution this tenant's calls
        to that API follow.
    api_weights:
        Relative probability of each API; defaults to uniform over
        ``api_costs``.
    arrivals:
        Arrival behaviour; :class:`~repro.workloads.arrivals.Backlogged`
        for closed-loop tenants or any open-loop
        :class:`~repro.workloads.arrivals.ArrivalProcess`.
    weight:
        Fair-share weight (``phi_f``); the paper evaluates equal weights.
    """

    tenant_id: str
    api_costs: Dict[str, CostDistribution]
    api_weights: Optional[Dict[str, float]] = None
    arrivals: ArrivalProcess = field(default_factory=Backlogged)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.api_costs:
            raise WorkloadError(f"tenant {self.tenant_id} has no APIs")
        if self.api_weights is not None:
            missing = set(self.api_weights) - set(self.api_costs)
            if missing:
                raise WorkloadError(
                    f"tenant {self.tenant_id}: weights for unknown APIs {missing}"
                )
        if self.weight <= 0:
            raise WorkloadError(
                f"tenant {self.tenant_id}: weight must be positive, got {self.weight}"
            )

    @property
    def backlogged(self) -> bool:
        return isinstance(self.arrivals, Backlogged)

    def mean_cost(self) -> float:
        """Mean request cost across the tenant's API mix."""
        names, probs = self._api_mix()
        return float(
            sum(p * self.api_costs[name].mean() for name, p in zip(names, probs))
        )

    def request_sampler(
        self, rng: np.random.Generator
    ) -> Callable[[], Tuple[str, float]]:
        """Build a ``() -> (api, cost)`` sampler bound to ``rng``."""
        names, probs = self._api_mix()
        costs = self.api_costs

        if len(names) == 1:
            only = names[0]
            dist = costs[only]

            def sample_single() -> Tuple[str, float]:
                return only, dist.sample(rng)

            return sample_single

        cumulative = np.cumsum(probs)

        def sample() -> Tuple[str, float]:
            index = int(np.searchsorted(cumulative, rng.random(), side="right"))
            index = min(index, len(names) - 1)
            api = names[index]
            return api, costs[api].sample(rng)

        return sample

    def _api_mix(self) -> Tuple[list, np.ndarray]:
        names = sorted(self.api_costs)
        if self.api_weights is None:
            probs = np.full(len(names), 1.0 / len(names))
        else:
            raw = np.array([self.api_weights.get(name, 0.0) for name in names])
            total = raw.sum()
            if total <= 0:
                raise WorkloadError(
                    f"tenant {self.tenant_id}: api_weights sum to {total}"
                )
            probs = raw / total
        return names, probs
