"""Workload models: distributions, tenant specs, traces, and arrivals.

Reproduces the statistical environment of the paper's evaluation:

* :mod:`~repro.workloads.azure` -- the Azure-Storage-like model (APIs
  ``A..K``, reference tenants ``T1..T12``, random tenant populations);
* :mod:`~repro.workloads.synthetic` -- the Figure 8 small/expensive
  mixes and the fixed-cost probe tenants ``t1..t7``;
* :mod:`~repro.workloads.trace` -- trace generation, persistence,
  replay-speed rescaling, and unpredictability scrambling;
* :mod:`~repro.workloads.build` -- wiring specs onto a live server.
"""

from .arrivals import (
    ArrivalProcess,
    Backlogged,
    DecayingBurstArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from .azure import (
    API_NAMES,
    NAMED_TENANT_IDS,
    api_population_distribution,
    backlogged_variant,
    named_tenant,
    named_tenants,
    random_tenant,
    random_tenants,
)
from .build import attach_specs, attach_trace
from .distributions import (
    CostDistribution,
    FixedCost,
    LogNormalCost,
    LogUniformCost,
    MixtureCost,
    NormalCost,
)
from .spec import TenantSpec
from .synthetic import (
    FIXED_COST_IDS,
    FIXED_COSTS,
    expensive_requests_population,
    expensive_tenant,
    fixed_cost_tenants,
    small_tenant,
)
from .trace import (
    TraceRecord,
    chunk_trace,
    generate_trace,
    load_trace,
    merge_traces,
    rescale_trace,
    save_trace,
    scramble_trace,
    thin_trace,
    trace_statistics,
)

__all__ = [
    "ArrivalProcess",
    "Backlogged",
    "PoissonArrivals",
    "DecayingBurstArrivals",
    "OnOffArrivals",
    "CostDistribution",
    "FixedCost",
    "NormalCost",
    "LogNormalCost",
    "LogUniformCost",
    "MixtureCost",
    "TenantSpec",
    "API_NAMES",
    "NAMED_TENANT_IDS",
    "api_population_distribution",
    "named_tenant",
    "named_tenants",
    "random_tenant",
    "random_tenants",
    "backlogged_variant",
    "small_tenant",
    "expensive_tenant",
    "expensive_requests_population",
    "fixed_cost_tenants",
    "FIXED_COST_IDS",
    "FIXED_COSTS",
    "TraceRecord",
    "generate_trace",
    "merge_traces",
    "scramble_trace",
    "rescale_trace",
    "thin_trace",
    "chunk_trace",
    "save_trace",
    "load_trace",
    "trace_statistics",
    "attach_specs",
    "attach_trace",
]
