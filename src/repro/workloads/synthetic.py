"""Synthetic workloads used by the paper's controlled experiments.

Two populations:

* the **expensive-requests** workload of §6.1.1 / Figure 8: 100
  continuously backlogged tenants sharing 16 threads of capacity 1000
  units/s; ``n`` of them are *small* (costs ~ N(1, 0.1)) and ``100 - n``
  are *expensive* (costs ~ N(1000, 100));
* the **fixed-cost probe tenants** ``t1 .. t7`` of §6.1.2: backlogged
  tenants with constant request costs ``2^8, 2^10, ..., 2^20`` (256 to
  ~1 million), spanning the full cost range of the production workload.
"""

from __future__ import annotations

from typing import List

from .arrivals import Backlogged, PoissonArrivals
from .distributions import FixedCost, NormalCost
from .spec import TenantSpec

__all__ = [
    "small_tenant",
    "expensive_tenant",
    "expensive_requests_population",
    "fixed_cost_tenants",
    "FIXED_COST_IDS",
    "FIXED_COSTS",
]

#: Probe tenants t1..t7 and their constant request costs (§6.1.2).
FIXED_COST_IDS = tuple(f"t{i}" for i in range(1, 8))
FIXED_COSTS = tuple(float(2 ** (8 + 2 * i)) for i in range(7))  # 2^8 .. 2^20


def small_tenant(tenant_id: str, window: int = 4) -> TenantSpec:
    """A backlogged tenant with ~unit-cost requests (N(1, 0.1))."""
    return TenantSpec(
        tenant_id=tenant_id,
        api_costs={"small": NormalCost(1.0, 0.1, floor=0.01)},
        arrivals=Backlogged(window=window),
    )


def expensive_tenant(tenant_id: str, window: int = 4) -> TenantSpec:
    """A backlogged tenant with ~1000x requests (N(1000, 100))."""
    return TenantSpec(
        tenant_id=tenant_id,
        api_costs={"large": NormalCost(1000.0, 100.0, floor=1.0)},
        arrivals=Backlogged(window=window),
    )


def expensive_requests_population(
    num_small: int, total: int = 100, window: int = 4
) -> List[TenantSpec]:
    """The Figure 8 population: ``num_small`` small tenants and
    ``total - num_small`` expensive tenants, all backlogged.

    Note the paper's x-axis in Figure 8c is the number of *expensive*
    tenants ``n = total - num_small``.
    """
    if not 0 <= num_small <= total:
        raise ValueError(f"need 0 <= num_small <= {total}, got {num_small}")
    specs = [small_tenant(f"S{i}", window) for i in range(num_small)]
    specs += [
        expensive_tenant(f"E{i}", window) for i in range(total - num_small)
    ]
    return specs


def fixed_cost_tenants(
    window: int = 4,
    mode: str = "backlogged",
    demand_units: float = 6.4e4,
) -> List[TenantSpec]:
    """The probe tenants t1..t7 with fixed costs 2^8 .. 2^20 (§6.1.2).

    ``mode="backlogged"`` keeps each probe continuously busy (closed
    loop); ``mode="open-loop"`` gives each probe Poisson arrivals whose
    aggregate demand is ``demand_units`` cost-units/second -- i.e. rate
    ``demand_units / cost`` -- so every probe consumes the same modest
    slice of capacity and its service lag directly reads how long the
    scheduler makes an under-share tenant wait.
    """
    specs = []
    for tid, cost in zip(FIXED_COST_IDS, FIXED_COSTS):
        if mode == "backlogged":
            arrivals: "Backlogged | PoissonArrivals" = Backlogged(window=window)
        elif mode == "open-loop":
            arrivals = PoissonArrivals(rate=max(demand_units / cost, 0.2))
        else:
            raise ValueError(f"unknown fixed-cost tenant mode {mode!r}")
        specs.append(
            TenantSpec(
                tenant_id=tid,
                api_costs={"fixed": FixedCost(cost)},
                arrivals=arrivals,
            )
        )
    return specs
