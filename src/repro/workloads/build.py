"""Turn tenant specs and traces into live simulator sources.

This is the glue between the declarative workload layer
(:class:`~repro.workloads.spec.TenantSpec`, traces) and the execution
layer (:mod:`repro.simulator.sources`).  Closed-loop specs become
:class:`BackloggedSource`; open-loop specs become either a pre-generated
:class:`TraceSource` (deterministic across schedulers -- the default, so
each scheduler sees the byte-identical arrival sequence) or a live
:class:`ArrivalProcessSource`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import WorkloadError
from ..simulator.rng import make_rng
from ..simulator.sources import BackloggedSource, Source, SubmitTarget, TraceSource
from .arrivals import Backlogged, OpenLoopProcess
from .spec import TenantSpec
from .trace import TraceRecord, generate_trace

__all__ = ["attach_specs", "attach_trace"]


def attach_trace(
    server: SubmitTarget,
    trace: Sequence[TraceRecord],
    speed: float = 1.0,
    weight: float = 1.0,
) -> TraceSource:
    """Attach a pre-generated trace to a submit target and start it."""
    source = TraceSource(
        server,
        (record.as_tuple() for record in trace),
        speed=speed,
        weight=weight,
    )
    source.start()
    return source


def attach_specs(
    server: SubmitTarget,
    specs: Sequence[TenantSpec],
    seed: int = 0,
    duration: Optional[float] = None,
    speed: float = 1.0,
    trace: Optional[Sequence[TraceRecord]] = None,
) -> List[Source]:
    """Attach every spec to the server and start all sources.

    Open-loop specs are materialized into one merged trace (unless a
    pre-built ``trace`` is supplied), guaranteeing that repeated calls
    with the same seed replay the identical arrival sequence no matter
    which scheduler the server runs -- the controlled-comparison
    requirement of the paper's methodology.

    Parameters
    ----------
    duration:
        Trace horizon in seconds; required when any spec is open-loop
        and no pre-built ``trace`` is given.
    speed:
        Replay speed for the open-loop trace (paper sweeps 0.5x-4x).
    """
    sources: List[Source] = []
    open_loop = [spec for spec in specs if isinstance(spec.arrivals, OpenLoopProcess)]
    for spec in specs:
        if isinstance(spec.arrivals, Backlogged):
            sampler = spec.request_sampler(make_rng(seed, "costs", spec.tenant_id))
            source = BackloggedSource(
                server,
                spec.tenant_id,
                sampler,
                window=spec.arrivals.window,
                weight=spec.weight,
                start_time=spec.arrivals.start_time,
            )
            source.start()
            sources.append(source)
        elif not isinstance(spec.arrivals, OpenLoopProcess):
            raise WorkloadError(
                f"tenant {spec.tenant_id}: unsupported arrival process "
                f"{type(spec.arrivals).__name__}"
            )
    if trace is None and open_loop:
        if duration is None:
            raise WorkloadError("duration required to materialize open-loop specs")
        trace = generate_trace(open_loop, duration * speed, seed=seed)
    if trace:
        sources.append(attach_trace(server, trace, speed=speed))
    return sources
