"""Arrival processes: when a tenant's requests reach the server.

The paper's tenants show three arrival shapes (Figure 4): stable rates,
bursts that taper off, and on/off bursts with lulls; plus the
"continuously backlogged" closed-loop tenants used throughout §6.  Each
open-loop process can generate a full arrival-time sequence (for offline
traces) and can report its mean rate (for utilization planning).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "ArrivalProcess",
    "Backlogged",
    "PoissonArrivals",
    "DecayingBurstArrivals",
    "OnOffArrivals",
]


class ArrivalProcess(ABC):
    """Base class for arrival behaviours."""

    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run arrivals per second (``inf`` for backlogged)."""


@dataclass
class Backlogged(ArrivalProcess):
    """Closed loop: keep ``window`` requests outstanding at all times.

    This realizes the paper's "continuously backlogged" tenants; the
    tenant submits a new request the instant one completes.
    """

    window: int = 4
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise WorkloadError(f"window must be >= 1, got {self.window}")

    def mean_rate(self) -> float:
        return math.inf


class OpenLoopProcess(ArrivalProcess):
    """Open-loop base: generates explicit arrival times."""

    @abstractmethod
    def arrival_times(
        self, rng: np.random.Generator, duration: float
    ) -> np.ndarray:
        """Sorted arrival times in ``[0, duration)``."""


@dataclass
class PoissonArrivals(OpenLoopProcess):
    """Homogeneous Poisson arrivals at ``rate`` requests/second.

    Models the stable tenants (Figure 4a: T2's steady ~400 req/s).
    """

    rate: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise WorkloadError(f"rate must be positive, got {self.rate}")

    def mean_rate(self) -> float:
        return self.rate

    def arrival_times(
        self, rng: np.random.Generator, duration: float
    ) -> np.ndarray:
        span = duration - self.start_time
        if span <= 0:
            return np.empty(0)
        expected = self.rate * span
        # Draw gaps in slabs until the horizon is covered.
        times = []
        t = self.start_time
        batch = max(16, int(expected * 1.2))
        while t < duration:
            gaps = rng.exponential(1.0 / self.rate, size=batch)
            for gap in gaps:
                t += gap
                if t >= duration:
                    break
                times.append(t)
        return np.array(times)


@dataclass
class DecayingBurstArrivals(OpenLoopProcess):
    """A burst whose rate decays exponentially: ``rate(t) = r0 * exp(-t/tau)``.

    Models Figure 4b: T3 "submits a large burst of requests that then
    tapers off".  Implemented as an inhomogeneous Poisson process via
    thinning.
    """

    peak_rate: float
    tau: float
    start_time: float = 0.0
    floor_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_rate <= 0 or self.tau <= 0:
            raise WorkloadError("peak_rate and tau must be positive")
        if self.floor_rate < 0 or self.floor_rate > self.peak_rate:
            raise WorkloadError("need 0 <= floor_rate <= peak_rate")

    def mean_rate(self) -> float:
        # Long-run rate tends to the floor; report peak-weighted average
        # over one tau for planning purposes.
        return self.floor_rate + (self.peak_rate - self.floor_rate) * 0.63

    def _rate_at(self, t: float) -> float:
        decayed = self.peak_rate * math.exp(-(t - self.start_time) / self.tau)
        return max(self.floor_rate, decayed)

    def arrival_times(
        self, rng: np.random.Generator, duration: float
    ) -> np.ndarray:
        times = []
        t = self.start_time
        lam_max = self.peak_rate
        while t < duration:
            t += rng.exponential(1.0 / lam_max)
            if t >= duration:
                break
            if rng.random() <= self._rate_at(t) / lam_max:
                times.append(t)
        return np.array(times)


@dataclass
class OnOffArrivals(OpenLoopProcess):
    """Alternating bursts and lulls (Figure 4c: T10's "bursts and lulls").

    Exponentially distributed ON and OFF period lengths; Poisson arrivals
    at ``burst_rate`` during ON periods, silence during OFF periods.
    """

    burst_rate: float
    mean_on: float
    mean_off: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if min(self.burst_rate, self.mean_on, self.mean_off) <= 0:
            raise WorkloadError("burst_rate, mean_on, mean_off must be positive")

    def mean_rate(self) -> float:
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.burst_rate * duty

    def arrival_times(
        self, rng: np.random.Generator, duration: float
    ) -> np.ndarray:
        times = []
        t = self.start_time
        # Start in a burst: short observation windows then always contain
        # ON activity (T10's Figure 4c window opens mid-burst).
        on = True
        while t < duration:
            period = rng.exponential(self.mean_on if on else self.mean_off)
            end = min(t + period, duration)
            if on:
                tick = t
                while True:
                    tick += rng.exponential(1.0 / self.burst_rate)
                    if tick >= end:
                        break
                    times.append(tick)
            t = end
            on = not on
        return np.array(times)
