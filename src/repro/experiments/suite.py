"""Figure 13: the randomized experiment suite with unknown costs.

Paper §6.2.2: "we run a suite of 150 experiments derived from production
workloads ... as we randomly vary several parameters: the number of
worker threads (2 to 64); the number of tenants to replay (0 to 400);
the replay speed (0.5-4x); the number of continuously backlogged tenants
(0 to 100); the number of artificially expensive tenants (0 to 100); and
the number of unpredictable tenants (0 to 100).  To compare between
experiments, we also include T1..T12."  For every experiment the 99th
percentile latency of each reference tenant is measured under WFQ^E,
WF2Q^E, and 2DFQ^E, and 2DFQ^E's speedup over each baseline computed.

The parameter ranges are configurable so CI-scale suites (fewer, shorter
experiments) keep the paper's *shape*: strong median speedups for small
predictable tenants (T1-like), little or negative speedup for expensive
or unpredictable ones (T10, T12, t7).  EXPERIMENTS.md records the scale
used for the committed results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:
    from ..parallel.cache import RunCache

from ..metrics.latency import speedup
from ..simulator.rng import make_rng
from ..workloads.arrivals import Backlogged
from ..workloads.azure import NAMED_TENANT_IDS, backlogged_variant, named_tenants, random_tenants
from ..workloads.distributions import NormalCost
from ..workloads.spec import TenantSpec
from .config import ExperimentConfig
from .unpredictable import _scrambled_trace

__all__ = [
    "SuiteParameters",
    "SuiteExperiment",
    "SuiteCell",
    "SuiteResult",
    "sample_experiment",
    "run_suite",
]

SUITE_SCHEDULERS: Tuple[str, ...] = ("wfq-e", "wf2q-e", "2dfq-e")


@dataclass(frozen=True)
class SuiteParameters:
    """Randomization ranges of the §6.2.2 suite (paper-scale defaults)."""

    num_experiments: int = 150
    threads: Tuple[int, int] = (2, 64)
    replay_tenants: Tuple[int, int] = (0, 400)
    replay_speed: Tuple[float, float] = (0.5, 4.0)
    backlogged_tenants: Tuple[int, int] = (0, 100)
    expensive_tenants: Tuple[int, int] = (0, 100)
    unpredictable_tenants: Tuple[int, int] = (0, 100)
    duration: float = 15.0
    thread_rate: float = 1.0e6
    open_loop_utilization: float = 0.5
    seed: int = 0


@dataclass(frozen=True)
class SuiteExperiment:
    """One sampled experiment of the suite."""

    index: int
    num_threads: int
    num_replay: int
    replay_speed: float
    num_backlogged: int
    num_expensive: int
    num_unpredictable: int


def sample_experiment(index: int, params: SuiteParameters) -> SuiteExperiment:
    """Sample the randomized knobs of experiment ``index`` (seeded)."""
    rng = make_rng(params.seed, "suite-experiment", str(index))
    lo, hi = params.threads
    num_threads = int(rng.integers(lo, hi + 1))
    num_replay = int(rng.integers(params.replay_tenants[0],
                                  params.replay_tenants[1] + 1))
    speed = float(rng.uniform(*params.replay_speed))
    num_backlogged = int(rng.integers(params.backlogged_tenants[0],
                                      params.backlogged_tenants[1] + 1))
    num_expensive = int(rng.integers(params.expensive_tenants[0],
                                     params.expensive_tenants[1] + 1))
    num_unpredictable = int(rng.integers(params.unpredictable_tenants[0],
                                         params.unpredictable_tenants[1] + 1))
    num_unpredictable = min(num_unpredictable, num_replay)
    return SuiteExperiment(
        index=index,
        num_threads=num_threads,
        num_replay=num_replay,
        replay_speed=speed,
        num_backlogged=num_backlogged,
        num_expensive=num_expensive,
        num_unpredictable=num_unpredictable,
    )


def _experiment_specs(
    experiment: SuiteExperiment, seed: int
) -> List[TenantSpec]:
    """Build the tenant population of one suite experiment."""
    specs: List[TenantSpec] = [
        backlogged_variant(spec, window=8) for spec in named_tenants(seed)
    ]
    # Extra continuously backlogged tenants reuse random Azure profiles.
    extra = random_tenants(
        experiment.num_backlogged, seed=seed + 1000 + experiment.index
    )
    specs += [backlogged_variant(spec, window=4) for spec in extra]
    # Artificially expensive tenants (paper: "the number of artificially
    # expensive tenants"): backlogged senders of large requests.
    for i in range(experiment.num_expensive):
        specs.append(
            TenantSpec(
                tenant_id=f"X{i}",
                api_costs={"huge": NormalCost(5.0e5, 5.0e4, floor=1.0)},
                arrivals=Backlogged(window=4),
            )
        )
    # Open-loop replay tenants.
    specs += random_tenants(
        experiment.num_replay, seed=seed + 2000 + experiment.index
    )
    return specs


@dataclass
class SuiteResult:
    """Per-tenant 99th-percentile latencies and speedups over the suite."""

    params: SuiteParameters
    experiments: List[SuiteExperiment] = field(default_factory=list)
    #: experiment index -> scheduler -> tenant -> p99 latency (seconds).
    p99: List[Dict[str, Dict[str, float]]] = field(default_factory=list)
    #: Quarantined-cell failure records (``CellFailure.as_dict()``);
    #: empty when every cell succeeded.
    errors: List[Dict[str, object]] = field(default_factory=list)

    def speedups(
        self, baseline: str, improved: str = "2dfq-e",
        tenants: Sequence[str] = NAMED_TENANT_IDS,
    ) -> Dict[str, List[float]]:
        """Figure 13 data: per tenant, the distribution across
        experiments of ``improved``'s p99 speedup over ``baseline``."""
        out: Dict[str, List[float]] = {t: [] for t in tenants}
        for record in self.p99:
            for tenant in tenants:
                base = record.get(baseline, {}).get(tenant, float("nan"))
                better = record.get(improved, {}).get(tenant, float("nan"))
                value = speedup(base, better)
                if not np.isnan(value):
                    out[tenant].append(value)
        return out

    def ratios(
        self, baseline: str, improved: str = "2dfq-e",
        tenants: Sequence[str] = NAMED_TENANT_IDS,
    ) -> Dict[str, List[float]]:
        """Raw p99 ratios ``baseline / improved`` per tenant (>1 means
        the improved scheduler is faster).  Use these for medians --
        aggregating the signed speedup convention directly can average
        across the sign discontinuity."""
        out: Dict[str, List[float]] = {t: [] for t in tenants}
        for record in self.p99:
            for tenant in tenants:
                base = record.get(baseline, {}).get(tenant, float("nan"))
                better = record.get(improved, {}).get(tenant, float("nan"))
                if base > 0 and better > 0 and not (
                    np.isnan(base) or np.isnan(better)
                ):
                    out[tenant].append(base / better)
        return out

    def median_speedup(
        self, baseline: str, tenant: str, improved: str = "2dfq-e"
    ) -> float:
        """Median p99 speedup in the paper's signed convention, computed
        on the raw ratios."""
        ratios = self.ratios(baseline, improved, [tenant])[tenant]
        if not ratios:
            return float("nan")
        median = float(np.median(ratios))
        return median if median >= 1.0 else -1.0 / median


def _suite_config(
    experiment: SuiteExperiment,
    params: SuiteParameters,
    schedulers: Sequence[str],
    initial_estimate: float,
    metrics_mode: str = "exact",
) -> ExperimentConfig:
    """The shared per-experiment configuration of one suite cell."""
    return ExperimentConfig(
        name=f"suite-{experiment.index}",
        schedulers=tuple(schedulers),
        num_threads=experiment.num_threads,
        thread_rate=params.thread_rate,
        duration=params.duration,
        sample_interval=0.1,
        refresh_interval=0.01,
        seed=params.seed + experiment.index,
        initial_estimate=initial_estimate,
        record_dispatches=False,
        metrics_mode=metrics_mode,
    )


def _suite_trace(
    experiment: SuiteExperiment,
    params: SuiteParameters,
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
):
    """Materialize the (seeded, hence reproducible) cell trace."""
    fraction = (
        experiment.num_unpredictable / experiment.num_replay
        if experiment.num_replay
        else 0.0
    )
    return _scrambled_trace(
        specs,
        config,
        unpredictable_fraction=fraction,
        open_loop_utilization=params.open_loop_utilization,
        speed=experiment.replay_speed,
    )


@dataclass(frozen=True)
class SuiteCell:
    """One (experiment x scheduler) cell of the Figure 13 suite.

    The cell carries only the suite parameters and its coordinates --
    the tenant population and trace are regenerated *inside*
    :meth:`execute` from the same seeded streams the serial path uses,
    so a pool worker needs a few hundred bytes of pickle rather than
    the materialized trace, and the cache key stays small and stable.
    """

    index: int
    params: SuiteParameters
    scheduler: str
    tenants: Tuple[str, ...]
    initial_estimate: float
    metrics_mode: str = "exact"

    def label(self) -> str:
        return f"suite-{self.index}--{self.scheduler}"

    def execute(self) -> Dict[str, float]:
        """Run the cell; returns tenant -> p99 latency (seconds)."""
        from .runner import run_single

        experiment = sample_experiment(self.index, self.params)
        config = _suite_config(
            experiment,
            self.params,
            (self.scheduler,),
            self.initial_estimate,
            metrics_mode=self.metrics_mode,
        )
        specs = _experiment_specs(experiment, config.seed)
        trace = _suite_trace(experiment, self.params, specs, config)
        metrics = run_single(
            self.scheduler,
            specs,
            config,
            trace=trace,
            speed=experiment.replay_speed,
        )
        return {t: metrics.latency_p99(t) for t in self.tenants}


def run_suite(
    params: Optional[SuiteParameters] = None,
    schedulers: Sequence[str] = SUITE_SCHEDULERS,
    tenants: Sequence[str] = NAMED_TENANT_IDS,
    initial_estimate: float = 1000.0,
    jobs: Optional[int] = None,
    cache: Optional["RunCache"] = None,
    metrics_mode: str = "exact",
) -> SuiteResult:
    """Run the randomized suite and collect per-tenant p99 latencies.

    Pass a scaled-down :class:`SuiteParameters` for quick runs -- shape
    is preserved at far smaller scale than the paper's 150x15s.

    ``metrics_mode="streaming"`` runs every cell with the bounded-memory
    sketch collector (DESIGN.md §13): per-cell memory stays flat however
    long the experiments run, at <1% p99 error (the suite only consumes
    p99 latencies, so the result shape is unchanged).

    The suite is embarrassingly parallel: every (experiment, scheduler)
    pair is an independent :class:`SuiteCell` fanned out through
    :func:`repro.parallel.run_cells`.  Results merge by cell index, so
    ``jobs=N`` produces numerically identical :attr:`SuiteResult.p99`
    to ``jobs=1`` for any ``N``; with a cache, re-running the suite (or
    widening it) only executes cells whose keys are new.

    A crashing cell does not sink the suite: failures are quarantined
    (``on_error="quarantine"``), recorded in :attr:`SuiteResult.errors`,
    and their per-tenant latencies read as NaN downstream -- every other
    cell's results are returned.
    """
    from ..parallel.engine import CellFailure, run_cells

    if params is None:
        params = SuiteParameters()
    schedulers = tuple(schedulers)
    result = SuiteResult(params=params)
    cells = [
        SuiteCell(
            index=index,
            params=params,
            scheduler=name,
            tenants=tuple(tenants),
            initial_estimate=initial_estimate,
            metrics_mode=metrics_mode,
        )
        for index in range(params.num_experiments)
        for name in schedulers
    ]
    outputs = run_cells(cells, jobs=jobs, cache=cache, on_error="quarantine")
    per_cell = iter(outputs)
    for index in range(params.num_experiments):
        result.experiments.append(sample_experiment(index, params))
        record: Dict[str, Dict[str, float]] = {}
        for name in schedulers:
            output = next(per_cell)
            if isinstance(output, CellFailure):
                # Quarantined cell: its latencies read as NaN through
                # SuiteResult's .get(..., nan) accessors.
                result.errors.append(output.as_dict())
                output = {}
            record[name] = output
        result.p99.append(record)
    return result
