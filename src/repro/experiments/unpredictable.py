"""Figures 11 and 12: unknown request costs with unpredictable tenants.

Paper §6.2.1: 300 randomly selected tenants plus T1..T12; the experiment
is repeated with 0%, 33% and 66% of the random tenants made explicitly
*unpredictable* by re-sampling each of their requests "pseudo-randomly
from across all production traces disregarding the originating server or
account".  Schedulers estimate costs: WFQ^E and WF2Q^E with per-tenant
per-API EMAs (alpha = 0.99), 2DFQ^E with pessimistic estimation
(alpha = 0.99); all use retroactive and refresh charging.

Reproduced series:

* **Figure 11a** -- T1's service received over time under each scheduler
  at each unpredictability level (WFQ^E/WF2Q^E develop large-scale
  oscillations; 2DFQ^E stays smooth with occasional spikes);
* **Figure 11b** -- 2DFQ^E thread occupancy at each level (partitioning
  degrades gracefully from crisp to coarse);
* **Figure 12 (top)** -- latency distributions for T1..T12 (p1/p50/p99);
* **Figure 12 (bottom left)** -- CDFs of per-tenant sigma(lag);
* **Figure 12 (bottom right)** -- latency distributions for t1..t7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.latency import LatencyStats
from ..simulator.rng import make_rng
from ..workloads.arrivals import OpenLoopProcess
from ..workloads.spec import TenantSpec
from ..workloads.trace import TraceRecord, scramble_trace
from .config import ExperimentConfig
from .production import production_specs, production_trace
from .runner import ComparisonResult, run_comparison

__all__ = [
    "unpredictable_config",
    "run_unpredictable",
    "run_unpredictable_sweep",
    "UnpredictableSweep",
]

DEFAULT_SCHEDULERS: Tuple[str, ...] = ("wfq-e", "wf2q-e", "2dfq-e")


def unpredictable_config(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    num_threads: int = 32,
    thread_rate: float = 1.0e6,
    duration: float = 15.0,
    seed: int = 0,
    alpha: float = 0.99,
    initial_estimate: float = 1000.0,
) -> ExperimentConfig:
    """§6.2.1 configuration: estimated costs, refresh charging at 10 ms,
    alpha = 0.99 for both the EMA and pessimistic estimators."""
    return ExperimentConfig(
        name="fig11-unpredictable",
        schedulers=tuple(schedulers),
        num_threads=num_threads,
        thread_rate=thread_rate,
        duration=duration,
        sample_interval=0.1,
        refresh_interval=0.01,
        seed=seed,
        initial_estimate=initial_estimate,
        scheduler_kwargs={name: {"alpha": alpha} for name in schedulers
                          if name.endswith("-e")},
    )


def _scrambled_trace(
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
    unpredictable_fraction: float,
    open_loop_utilization: float,
    speed: float,
) -> List[TraceRecord]:
    """Materialize the open-loop trace, then scramble the requested
    fraction of the random tenants into unpredictable variants."""
    trace = production_trace(
        specs, config, open_loop_utilization=open_loop_utilization, speed=speed
    )
    if unpredictable_fraction <= 0.0 or not trace:
        return trace
    # Only the random replay tenants are scrambled (paper §6.2.1 makes
    # "33% and 66% of these tenants" -- the randomly selected ones --
    # unpredictable; T1..T12 keep their identities).
    candidate_ids = sorted(
        s.tenant_id
        for s in specs
        if isinstance(s.arrivals, OpenLoopProcess) and s.tenant_id.startswith("R")
    )
    rng = make_rng(config.seed, "unpredictable-selection")
    count = int(round(unpredictable_fraction * len(candidate_ids)))
    chosen = list(rng.choice(candidate_ids, size=count, replace=False))
    return scramble_trace(trace, chosen, seed=config.seed)


def run_unpredictable(
    unpredictable_fraction: float,
    num_random: int = 300,
    include_fixed: bool = False,
    config: Optional[ExperimentConfig] = None,
    open_loop_utilization: float = 1.2,
    speed: float = 1.0,
    named_mode: str = "backlogged",
    jobs: Optional[int] = None,
    cache=None,
) -> ComparisonResult:
    """Run one unpredictability level of the §6.2.1 experiment.

    T1..T12 (and the probes, when included) default to continuously
    backlogged yardsticks: their service then reflects scheduling
    quality under sustained competition, which is the regime where the
    paper's Figure 11/12 effects appear.
    """
    if config is None:
        config = unpredictable_config()
    specs = production_specs(
        num_random=num_random,
        include_fixed=include_fixed,
        seed=config.seed,
        named_mode=named_mode,
    )
    trace = _scrambled_trace(
        specs, config, unpredictable_fraction, open_loop_utilization, speed
    )
    return run_comparison(
        specs, config, trace=trace, speed=speed, jobs=jobs, cache=cache
    )


@dataclass
class UnpredictableSweep:
    """Results across unpredictability levels (paper: 0%, 33%, 66%)."""

    fractions: List[float]
    results: List[ComparisonResult] = field(default_factory=list)

    def result_at(self, fraction: float) -> ComparisonResult:
        return self.results[self.fractions.index(fraction)]

    def latency_table(
        self, tenants: Sequence[str]
    ) -> Dict[float, Dict[str, Dict[str, LatencyStats]]]:
        """Figure 12 data: fraction -> scheduler -> tenant -> stats."""
        table: Dict[float, Dict[str, Dict[str, LatencyStats]]] = {}
        for fraction, result in zip(self.fractions, self.results):
            per_sched: Dict[str, Dict[str, LatencyStats]] = {}
            for name, run in result.runs.items():
                per_sched[name] = {t: run.latency_stats(t) for t in tenants}
            table[fraction] = per_sched
        return table


def run_unpredictable_sweep(
    fractions: Sequence[float] = (0.0, 0.33, 0.66),
    num_random: int = 300,
    include_fixed: bool = False,
    config: Optional[ExperimentConfig] = None,
    open_loop_utilization: float = 1.2,
    speed: float = 1.0,
    named_mode: str = "backlogged",
    jobs: Optional[int] = None,
    cache=None,
) -> UnpredictableSweep:
    """The full Figure 11/12 sweep over unpredictability levels."""
    sweep = UnpredictableSweep(fractions=list(fractions))
    for fraction in fractions:
        sweep.results.append(
            run_unpredictable(
                fraction,
                num_random=num_random,
                include_fixed=include_fixed,
                config=config,
                open_loop_utilization=open_loop_utilization,
                speed=speed,
                named_mode=named_mode,
                jobs=jobs,
                cache=cache,
            )
        )
    return sweep
