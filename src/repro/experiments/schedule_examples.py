"""The paper's worked scheduling examples (Figures 1, 5 and 6).

Four backlogged tenants share two worker threads: A and B send unit-cost
requests, C and D send large requests (cost 4 in Figures 5/6, cost 10 in
Figure 1).  The deterministic sequencer below drives a scheduler exactly
as the paper's tables do -- all tenants enqueue their initial requests
before the first dispatch, and threads are offered work in ascending
index order (W0 first) -- so the resulting schedules can be compared
entry-for-entry with Figures 5c, 5d and 6b:

* WFQ:   W0 = a1 a2 a3 a4 c1 ...  W1 = b1 b2 b3 b4 d1 ...  (bursty)
* WF2Q:  W0 = a1 c1 a2 ...        W1 = b1 d1 b2 ...        (bursty)
* 2DFQ:  W0 = a1 c1 d1 c2 ...     W1 = b1 a2 b2 a3 b3 ...  (smooth)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.registry import make_scheduler
from ..core.request import Request
from ..errors import SchedulerError
from ..obs.session import current_session

__all__ = ["ScheduledSlot", "worked_example", "render_schedule", "gap_statistics"]


@dataclass(frozen=True)
class ScheduledSlot:
    """One executed request in the example schedule."""

    thread_id: int
    tenant_id: str
    index: int  # 1-based per-tenant request index (a1, a2, ...)
    start: float
    end: float

    @property
    def label(self) -> str:
        return f"{self.tenant_id.lower()}{self.index}"


def worked_example(
    scheduler_name: str,
    horizon: float = 16.0,
    num_threads: int = 2,
    small_cost: float = 1.0,
    large_cost: float = 4.0,
    small_tenants: Tuple[str, ...] = ("A", "B"),
    large_tenants: Tuple[str, ...] = ("C", "D"),
    **scheduler_kwargs,
) -> List[ScheduledSlot]:
    """Run the Figure 5/6 example (or the Figure 1 variant with
    ``large_cost=10``) under the named scheduler.

    The sequencer keeps every tenant backlogged: each tenant always has
    a queued request, new ones being enqueued as old ones dispatch.
    Returns the executed slots sorted by (start, thread).
    """
    scheduler = make_scheduler(
        scheduler_name, num_threads=num_threads, thread_rate=1.0,
        **scheduler_kwargs,
    )
    # Under an active --trace session, record the decision events of the
    # worked example too: fig06's trace is the paper's own 2DFQ table.
    session = current_session()
    tracer = None
    if session is not None:
        tracer = session.tracer(f"example--{scheduler_name}")
        scheduler.attach_tracer(tracer)
        estimator = getattr(scheduler, "estimator", None)
        if estimator is not None:
            estimator.attach_tracer(tracer)
    costs = {t: small_cost for t in small_tenants}
    costs.update({t: large_cost for t in large_tenants})
    tenants = list(small_tenants) + list(large_tenants)
    counters = {t: itertools.count(1) for t in tenants}
    indices: Dict[int, int] = {}

    def enqueue(tenant: str, now: float) -> None:
        request = Request(tenant_id=tenant, cost=costs[tenant], api="example")
        indices[request.seqno] = next(counters[tenant])
        request.arrival_time = now
        scheduler.enqueue(request, now)

    # All tenants enqueue their first requests before any dispatch, in
    # A, B, C, D order -- the premise of the paper's tables.
    for tenant in tenants:
        enqueue(tenant, 0.0)

    # Event loop over thread availability; ties resolved by thread index
    # ascending (W0 dequeues first, as in the paper's figures).
    # Completions are deferred onto a heap and delivered in time order so
    # the scheduler's virtual clock only ever moves forward.
    free_heap = [(0.0, i) for i in range(num_threads)]
    heapq.heapify(free_heap)
    completions: List[Tuple[float, int, Request]] = []
    slots: List[ScheduledSlot] = []
    while free_heap:
        now, thread_id = heapq.heappop(free_heap)
        if now >= horizon:
            continue
        while completions and completions[0][0] <= now:
            end_time, _, done = heapq.heappop(completions)
            scheduler.complete(done, done.cost, end_time)
        request = scheduler.dequeue(thread_id, now)
        if request is None:
            # The sequencer re-enqueues each tenant on dispatch, so every
            # tenant stays backlogged; a None dequeue means the scheduler
            # under test broke work conservation.  Raise instead of
            # asserting -- python -O strips asserts.
            raise SchedulerError(
                f"{scheduler.name} returned no request with all tenants "
                "backlogged (work-conservation violation)"
            )
        end = now + request.cost  # thread rate is 1 unit/second
        slots.append(
            ScheduledSlot(
                thread_id=thread_id,
                tenant_id=request.tenant_id,
                index=indices[request.seqno],
                start=now,
                end=end,
            )
        )
        # Keep the tenant backlogged and finish the request at `end`.
        enqueue(request.tenant_id, now)
        heapq.heappush(completions, (end, request.seqno, request))
        heapq.heappush(free_heap, (end, thread_id))
    slots.sort(key=lambda s: (s.start, s.thread_id))
    if session is not None:
        session.export_run(
            tracer,
            dispatch_log=slots,
            config={
                "horizon": horizon,
                "num_threads": num_threads,
                "small_cost": small_cost,
                "large_cost": large_cost,
                "small_tenants": list(small_tenants),
                "large_tenants": list(large_tenants),
            },
            scheduler={
                "name": scheduler.name,
                "class": type(scheduler).__name__,
                "num_threads": num_threads,
            },
        )
    return slots


def render_schedule(
    slots: List[ScheduledSlot], num_threads: int = 2, horizon: float = 16.0
) -> List[str]:
    """ASCII rendering, one line per thread, matching the paper's layout:

    ``W0 | a1 c1   d1   c2 ...``
    """
    lines = []
    for thread in range(num_threads):
        entries = [s.label for s in slots if s.thread_id == thread and s.start < horizon]
        lines.append(f"W{thread} | " + " ".join(entries))
    return lines


def gap_statistics(
    slots: List[ScheduledSlot], tenant_id: str
) -> Tuple[float, float]:
    """(mean, max) gap between consecutive request starts of one tenant
    -- the smooth-vs-bursty criterion of Figure 1: the smooth schedule
    has a max gap of ~1 s for tenant A, the bursty one ~10 s."""
    starts = sorted(s.start for s in slots if s.tenant_id == tenant_id)
    if len(starts) < 2:
        return (0.0, 0.0)
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    return (sum(gaps) / len(gaps), max(gaps))
