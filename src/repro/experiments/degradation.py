"""Fairness under faults: do the paper's guarantees survive degradation?

The evaluation figures all assume a healthy worker pool.  This
experiment re-runs the Figure 8 premise -- backlogged small tenants
sharing a pool with expensive tenants -- while the pool degrades
mid-run: one worker slows to a crawl, one stalls outright, and one
crashes (losing its in-flight request to re-dispatch) before coming
back.  Each scheduler sees the identical workload twice, healthy and
faulted, and the figure reports the small probe tenant's service-lag
sigma and the mean Gini index side by side.

The interesting comparison is *relative*: 2DFQ/2DFQ^E should hold their
order-of-magnitude lag advantage over WFQ/WF2Q while capacity comes and
goes -- the cancellation refunds and re-dispatch keep the virtual-time
accounting honest, so degraded capacity is shared as fairly as healthy
capacity.

CLI: ``python -m repro.figures figfault [--faults PLAN.json]``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan, WorkerCrash, WorkerSlowdown
from ..workloads.synthetic import expensive_requests_population
from .config import ExperimentConfig
from .expensive_requests import SMALL_PROBE
from .runner import ComparisonResult, run_comparison

__all__ = [
    "degradation_config",
    "degradation_plan",
    "run_degradation",
    "DegradationResult",
]

DEFAULT_SCHEDULERS: Tuple[str, ...] = ("wfq", "wf2q", "2dfq", "2dfq-e")


def degradation_config(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    num_threads: int = 16,
    thread_rate: float = 1000.0,
    duration: float = 15.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The fairness-under-faults configuration.

    Same pool shape as Figure 8, but refresh charging stays on (a
    stalled worker's request is exactly the long-running occupier
    refresh charging exists for) and the estimated 2DFQ^E variant runs
    alongside the known-cost schedulers.
    """
    return ExperimentConfig(
        name="figfault-degradation",
        schedulers=tuple(schedulers),
        num_threads=num_threads,
        thread_rate=thread_rate,
        duration=duration,
        sample_interval=0.1,
        refresh_interval=0.01,
        seed=seed,
        initial_estimate=1000.0,
    )


def degradation_plan(config: ExperimentConfig) -> FaultPlan:
    """The canned mid-run degradation, scaled to the config's duration:
    worker 0 runs at quarter speed through the middle half of the run,
    worker 1 stalls outright for the middle third, and worker 2 crashes
    at 40% (its in-flight request re-dispatched) and restarts at 70%.
    Workers beyond the pool size are skipped by the injector, so the
    same plan works for any pool of >= 1 workers.
    """
    d = config.duration
    return FaultPlan(
        slowdowns=(
            WorkerSlowdown(worker=0, start=0.25 * d, end=0.75 * d, factor=0.25),
            WorkerSlowdown(worker=1, start=0.30 * d, end=0.60 * d, factor=0.0),
        ),
        crashes=(WorkerCrash(worker=2, at=0.40 * d, restart_at=0.70 * d),),
        seed=config.seed,
    )


@dataclass
class DegradationResult:
    """Healthy and faulted runs of the identical workload, per scheduler."""

    healthy: ComparisonResult
    faulted: ComparisonResult
    plan: FaultPlan

    @property
    def scheduler_names(self) -> List[str]:
        return self.healthy.scheduler_names

    def rows(self, probe: str = SMALL_PROBE) -> List[tuple]:
        """Figure rows: per scheduler, the probe tenant's service-lag
        sigma and the mean Gini index, healthy vs faulted."""
        fair = self.healthy.fair_rate()
        out = []
        for name in self.scheduler_names:
            healthy = self.healthy[name]
            faulted = self.faulted[name]
            out.append(
                (
                    name,
                    healthy.lag_sigma(probe, reference_rate=fair),
                    faulted.lag_sigma(probe, reference_rate=fair),
                    float(healthy.gini_values.mean()),
                    float(faulted.gini_values.mean()),
                )
            )
        return out


def run_degradation(
    num_expensive: int = 50,
    total_tenants: int = 100,
    config: Optional[ExperimentConfig] = None,
    plan: Optional[FaultPlan] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> DegradationResult:
    """Run the fairness-under-faults comparison.

    Every scheduler sees the identical workload twice: once healthy
    (``fault_plan=None``) and once under ``plan`` (default: the canned
    :func:`degradation_plan`).  Each of the ``2 x len(schedulers)`` runs
    is an independent cell, so jobs/cache parallelize and memoize them
    like any other figure.
    """
    if config is None:
        config = degradation_config()
    if plan is None:
        plan = (
            config.fault_plan
            if config.fault_plan is not None and not config.fault_plan.is_empty
            else degradation_plan(config)
        )
    specs = expensive_requests_population(
        num_small=total_tenants - num_expensive, total=total_tenants
    )
    healthy_config = dataclasses.replace(
        config, name=f"{config.name}-healthy", fault_plan=None
    )
    faulted_config = dataclasses.replace(
        config, name=f"{config.name}-faulted", fault_plan=plan
    )
    healthy = run_comparison(specs, healthy_config, jobs=jobs, cache=cache)
    faulted = run_comparison(specs, faulted_config, jobs=jobs, cache=cache)
    return DegradationResult(healthy=healthy, faulted=faulted, plan=plan)
