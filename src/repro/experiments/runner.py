"""Run workloads against schedulers and collect metrics.

The runner realizes the paper's methodology: generate the workload once
(seeded), then run the byte-identical arrival sequence through each
scheduler, measuring service lag against a GPS reference, latencies,
Gini index, and the dispatch log.

When a :mod:`repro.obs` trace session is active (the figures CLI's
``--trace`` flag, or :func:`repro.obs.trace_session` directly), every
run additionally emits its decision-event stream, a Chrome trace of the
thread occupancy, and a ``manifest.json`` provenance record -- the
run-telemetry contract of DESIGN.md §9.  An explicit ``tracer`` can be
passed instead for programmatic use (the caller then owns the export).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from ..parallel.cache import RunCache

from ..core.registry import make_scheduler
from ..core.scheduler import Scheduler
from ..faults.injector import FaultInjector
from ..metrics.collector import MetricsCollector, RunMetrics
from ..obs.audit import FairnessAuditor
from ..obs.flight import FlightRecorder
from ..obs.session import current_session
from ..obs.tracer import Tracer
from ..validate import ValidatingScheduler, env_validate
from ..simulator.clock import Simulation
from ..simulator.server import ThreadPoolServer
from ..workloads.arrivals import OpenLoopProcess
from ..workloads.build import attach_specs
from ..workloads.spec import TenantSpec
from ..workloads.trace import TraceRecord, generate_trace
from .config import ExperimentConfig

__all__ = ["run_single", "run_comparison", "ComparisonResult"]


def _scheduler_manifest(scheduler: Scheduler) -> Dict[str, Any]:
    """Scheduler parameters for the run manifest (JSON-ready)."""
    info: Dict[str, Any] = {
        "name": scheduler.name,
        "class": type(scheduler).__name__,
        "num_threads": scheduler.num_threads,
        "thread_rate": scheduler.thread_rate,
    }
    estimator = getattr(scheduler, "estimator", None)
    if estimator is not None:
        info["estimator"] = repr(estimator)
    index = getattr(scheduler, "selection_index", None)
    info["indexed"] = index is not None
    mode = getattr(scheduler, "selection_mode", None)
    if mode is not None:
        info["selection_mode"] = mode
    if index is not None:
        info["selection_index"] = index.stats()
    return info


def run_single(
    scheduler_name: str,
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
    trace: Optional[Sequence[TraceRecord]] = None,
    speed: float = 1.0,
    tracer: Optional[Tracer] = None,
    auditor: Optional[FairnessAuditor] = None,
) -> RunMetrics:
    """Run one scheduler over the workload and return its metrics.

    With ``config.validate`` (or ``REPRO_VALIDATE=1``) the scheduler is
    wrapped in the :class:`~repro.validate.ValidatingScheduler` invariant
    watchdog; with a non-empty ``config.fault_plan`` a
    :class:`~repro.faults.injector.FaultInjector` schedules the plan's
    faults into the run.  Both are strictly additive: left off, the run
    executes exactly the unfaulted, unwatched code paths.

    Observability: an attached tracer gets the simulation clock for its
    registry timers (phase profiling in deterministic sim-time).  An
    explicit ``auditor`` is wired as a tracer sink and collector sample
    hook; an *audited session* (``TraceSession(audit=...)``, the CLI's
    ``--audit``) builds one per run automatically, plus a flight
    recorder whose dumps are exported even when a strict-mode watchdog
    raise aborts the run.
    """
    sim = Simulation(event_queue=config.event_queue)
    inner_scheduler = make_scheduler(
        scheduler_name,
        num_threads=config.num_threads,
        thread_rate=config.thread_rate,
        **config.kwargs_for(scheduler_name),
    )
    scheduler: Scheduler = inner_scheduler
    watchdog: Optional[ValidatingScheduler] = None
    if config.validate or env_validate():
        watchdog = ValidatingScheduler(inner_scheduler)
        scheduler = watchdog  # type: ignore[assignment] -- transparent proxy
    server = ThreadPoolServer(
        sim,
        scheduler,
        num_threads=config.num_threads,
        rate=config.thread_rate,
        refresh_interval=config.refresh_interval,
    )
    injector: Optional[FaultInjector] = None
    if config.fault_plan is not None and not config.fault_plan.is_empty:
        injector = FaultInjector(server, config.fault_plan)
        injector.install()
        injector.wire_estimator(scheduler)
    collector = MetricsCollector(
        server,
        sample_interval=config.sample_interval,
        record_dispatches=config.record_dispatches,
        warmup=config.warmup,
        mode=config.metrics_mode,
        seed=config.seed,
    )
    session = current_session() if tracer is None else None
    if session is not None:
        tracer = session.tracer(f"{config.name}--{scheduler_name}")
    flight: Optional[FlightRecorder] = None
    if tracer is not None and tracer.enabled:
        # Registry timers report in deterministic sim-time while attached
        # to a run (ISSUE satellite: injectable clock).
        tracer.registry.set_clock(lambda: sim.now)
        scheduler.attach_tracer(tracer)
        estimator = getattr(scheduler, "estimator", None)
        if estimator is not None:
            estimator.attach_tracer(tracer)
        server.attach_tracer(tracer)
        collector.attach_tracer(tracer)
        if session is not None:
            flight = FlightRecorder(capacity=session.flight_events)
            tracer.add_sink(flight.on_event)
            if auditor is None and session.audit is not None:
                audit_config = session.audit
                if audit_config.capacity is None:
                    audit_config = dataclasses.replace(
                        audit_config, capacity=config.capacity
                    )
                auditor = FairnessAuditor(audit_config, tracer)
        if auditor is not None:
            auditor.attach_tracer(tracer)
            tracer.add_sink(auditor.on_event)
            collector.attach_auditor(auditor)
    else:
        auditor = None  # nothing feeds a sink without an enabled tracer
    attach_specs(
        server,
        specs,
        seed=config.seed,
        duration=config.duration,
        speed=speed,
        trace=trace,
    )

    def _session_extra() -> Dict[str, Any]:
        extra: Dict[str, Any] = {}
        if injector is not None:
            extra["faults"] = injector.counts
        if watchdog is not None:
            extra["validation"] = watchdog.summary()
        if auditor is not None:
            extra["audit"] = {
                "trips": len(auditor.trips),
                "lag": auditor.ever_tripped("lag"),
                "bursty": auditor.ever_tripped("bursty"),
            }
        return extra

    try:
        sim.run(until=config.duration)
    except Exception as exc:
        if session is not None:
            # Export what the run produced before it died -- most
            # importantly the flight-recorder dump triggered by the
            # watchdog's invariant event (emitted before the raise).
            extra = _session_extra()
            extra["aborted"] = {"type": type(exc).__name__, "message": str(exc)}
            session.export_run(
                tracer,
                seed=config.seed,
                config=dataclasses.asdict(config),
                scheduler=_scheduler_manifest(inner_scheduler),
                extra=extra,
                auditor=auditor,
                flight=flight,
            )
        raise
    metrics = collector.result()
    if session is not None:
        extra = _session_extra()
        session.export_run(
            tracer,
            dispatch_log=metrics.dispatch_log,
            seed=config.seed,
            config=dataclasses.asdict(config),
            scheduler=_scheduler_manifest(inner_scheduler),
            extra=extra or None,
            auditor=auditor,
            flight=flight,
        )
    return metrics


class ComparisonResult:
    """Metrics of every scheduler over the same workload."""

    def __init__(
        self,
        config: ExperimentConfig,
        runs: Dict[str, RunMetrics],
        specs: Sequence[TenantSpec],
    ) -> None:
        self.config = config
        self.runs = runs
        self.specs = list(specs)

    def __getitem__(self, scheduler_name: str) -> RunMetrics:
        return self.runs[scheduler_name]

    @property
    def scheduler_names(self) -> List[str]:
        return list(self.runs)

    def fair_rate(self, population: Optional[int] = None) -> float:
        """Nominal per-tenant fair-share rate (cost units/second) used to
        express service lag in seconds: aggregate capacity divided by the
        steady tenant population."""
        count = population if population is not None else max(1, len(self.specs))
        return self.config.capacity / count


def run_comparison(
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
    trace: Optional[Sequence[TraceRecord]] = None,
    speed: float = 1.0,
    jobs: Optional[int] = None,
    cache: Optional["RunCache"] = None,
) -> ComparisonResult:
    """Run every configured scheduler over the identical workload.

    Open-loop specs are materialized into a single trace up front so all
    schedulers see the same arrivals; closed-loop (backlogged) specs are
    re-seeded identically per run, so their cost sequences match too.

    Each scheduler run is one independent :class:`~repro.parallel.RunSpec`
    cell handed to :func:`repro.parallel.run_cells`: with ``jobs > 1``
    the runs fan out over pool workers (results merge in scheduler
    order, bit-identical to serial), and with a
    :class:`~repro.parallel.RunCache` repeated invocations deserialize
    instead of re-simulating.  Both default to the active
    :func:`~repro.parallel.execution_context` (serial, uncached).
    """
    from ..parallel.engine import run_cells
    from ..parallel.spec import RunSpec

    open_loop = [s for s in specs if isinstance(s.arrivals, OpenLoopProcess)]
    if trace is None and open_loop:
        trace = generate_trace(open_loop, config.duration * speed, seed=config.seed)
    cells = [
        RunSpec(
            scheduler=name,
            specs=tuple(specs),
            config=config,
            trace=tuple(trace) if trace is not None else None,
            speed=speed,
        )
        for name in config.schedulers
    ]
    metrics = run_cells(cells, jobs=jobs, cache=cache)
    runs: Dict[str, RunMetrics] = dict(zip(config.schedulers, metrics))
    return ComparisonResult(config, runs, specs)
