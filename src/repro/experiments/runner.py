"""Run workloads against schedulers and collect metrics.

The runner realizes the paper's methodology: generate the workload once
(seeded), then run the byte-identical arrival sequence through each
scheduler, measuring service lag against a GPS reference, latencies,
Gini index, and the dispatch log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.registry import make_scheduler
from ..metrics.collector import MetricsCollector, RunMetrics
from ..simulator.clock import Simulation
from ..simulator.server import ThreadPoolServer
from ..workloads.arrivals import OpenLoopProcess
from ..workloads.build import attach_specs
from ..workloads.spec import TenantSpec
from ..workloads.trace import TraceRecord, generate_trace
from .config import ExperimentConfig

__all__ = ["run_single", "run_comparison", "ComparisonResult"]


def run_single(
    scheduler_name: str,
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
    trace: Optional[Sequence[TraceRecord]] = None,
    speed: float = 1.0,
) -> RunMetrics:
    """Run one scheduler over the workload and return its metrics."""
    sim = Simulation()
    scheduler = make_scheduler(
        scheduler_name,
        num_threads=config.num_threads,
        thread_rate=config.thread_rate,
        **config.kwargs_for(scheduler_name),
    )
    server = ThreadPoolServer(
        sim,
        scheduler,
        num_threads=config.num_threads,
        rate=config.thread_rate,
        refresh_interval=config.refresh_interval,
    )
    collector = MetricsCollector(
        server,
        sample_interval=config.sample_interval,
        record_dispatches=config.record_dispatches,
        warmup=config.warmup,
    )
    attach_specs(
        server,
        specs,
        seed=config.seed,
        duration=config.duration,
        speed=speed,
        trace=trace,
    )
    sim.run(until=config.duration)
    return collector.result()


class ComparisonResult:
    """Metrics of every scheduler over the same workload."""

    def __init__(
        self,
        config: ExperimentConfig,
        runs: Dict[str, RunMetrics],
        specs: Sequence[TenantSpec],
    ) -> None:
        self.config = config
        self.runs = runs
        self.specs = list(specs)

    def __getitem__(self, scheduler_name: str) -> RunMetrics:
        return self.runs[scheduler_name]

    @property
    def scheduler_names(self) -> List[str]:
        return list(self.runs)

    def fair_rate(self, population: Optional[int] = None) -> float:
        """Nominal per-tenant fair-share rate (cost units/second) used to
        express service lag in seconds: aggregate capacity divided by the
        steady tenant population."""
        count = population if population is not None else max(1, len(self.specs))
        return self.config.capacity / count


def run_comparison(
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
    trace: Optional[Sequence[TraceRecord]] = None,
    speed: float = 1.0,
) -> ComparisonResult:
    """Run every configured scheduler over the identical workload.

    Open-loop specs are materialized into a single trace up front so all
    schedulers see the same arrivals; closed-loop (backlogged) specs are
    re-seeded identically per run, so their cost sequences match too.
    """
    open_loop = [s for s in specs if isinstance(s.arrivals, OpenLoopProcess)]
    if trace is None and open_loop:
        trace = generate_trace(open_loop, config.duration * speed, seed=config.seed)
    runs: Dict[str, RunMetrics] = {}
    for name in config.schedulers:
        runs[name] = run_single(name, specs, config, trace=trace, speed=speed)
    return ComparisonResult(config, runs, specs)
