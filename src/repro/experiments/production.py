"""Figures 9 and 10: known costs on the production-like workload.

Paper §6.1.2: 250 randomly chosen tenants replayed from Azure Storage
traces plus the reference tenants T1..T12, on a server of 32 worker
threads of capacity 1e6 units/second; aggregate request costs span 250
to 5 million.  Optionally adds the fixed-cost probe tenants t1..t7
(costs 2^8 .. 2^20).

Reproduced series:

* **Figure 9a** -- T1's service received and service lag over time under
  WFQ / WF2Q / 2DFQ, plus the Gini fairness index across all tenants;
* **Figure 9b** -- per-thread request-size occupancy (2DFQ partitions
  requests by size across the pool);
* **Figure 10 (left)** -- CDF across tenants of sigma(service lag);
* **Figure 10 (right)** -- distribution of service lag for t1..t7.

Our substitution for the proprietary traces is the generative model in
:mod:`repro.workloads.azure`; open-loop load is thinned to a target
utilization so the backlogged reference tenants keep the server
saturated without unbounded queue growth (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.azure import backlogged_variant, named_tenants, random_tenants
from ..workloads.spec import TenantSpec
from ..workloads.synthetic import FIXED_COST_IDS, fixed_cost_tenants
from ..workloads.trace import TraceRecord, generate_trace, thin_trace
from ..workloads.arrivals import OpenLoopProcess
from .config import ExperimentConfig
from .runner import ComparisonResult, run_comparison

__all__ = [
    "production_config",
    "production_specs",
    "production_trace",
    "run_production",
    "lag_sigma_cdfs",
    "fixed_cost_lag_ranges",
]

DEFAULT_SCHEDULERS: Tuple[str, ...] = ("wfq", "wf2q", "2dfq")


def production_config(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    num_threads: int = 32,
    thread_rate: float = 1.0e6,
    duration: float = 15.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The §6.1.2 configuration (32 threads, 1e6 units/s each)."""
    return ExperimentConfig(
        name="fig9-production-known-costs",
        schedulers=tuple(schedulers),
        num_threads=num_threads,
        thread_rate=thread_rate,
        duration=duration,
        sample_interval=0.1,
        refresh_interval=None,
        seed=seed,
    )


def production_specs(
    num_random: int = 250,
    include_fixed: bool = False,
    seed: int = 0,
    backlogged_window: int = 8,
    named_mode: str = "open-loop",
    random_unpredictable_fraction: float = 0.3,
) -> List[TenantSpec]:
    """The production tenant population.

    T1..T12 are replayed open-loop like every trace tenant in the paper
    (``named_mode="open-loop"``, the default); their arrival rates are
    calibrated so the predictable small tenants sit below an equal fair
    share of the reference 32-thread server while the heavy tenants
    (T9..T12) exceed theirs, matching their latency roles in Figure 12.
    ``named_mode="backlogged"`` runs them closed-loop instead (useful for
    service-lag-focused analyses).  The ``num_random`` generated tenants
    replay open-loop; the fixed-cost probes t1..t7 are backlogged, as
    their role is a constant-cost yardstick.
    """
    named = named_tenants(seed)
    if named_mode == "backlogged":
        specs: List[TenantSpec] = [
            backlogged_variant(spec, window=backlogged_window) for spec in named
        ]
    elif named_mode == "open-loop":
        specs = list(named)
    else:
        raise ValueError(f"unknown named_mode {named_mode!r}")
    if include_fixed:
        fixed_mode = "backlogged" if named_mode == "backlogged" else "open-loop"
        specs += fixed_cost_tenants(window=backlogged_window, mode=fixed_mode)
    specs += random_tenants(
        num_random,
        seed=seed,
        unpredictable_fraction=random_unpredictable_fraction,
    )
    return specs


def production_trace(
    specs: Sequence[TenantSpec],
    config: ExperimentConfig,
    open_loop_utilization: float = 1.2,
    speed: float = 1.0,
) -> List[TraceRecord]:
    """Materialize the open-loop workload at a controlled load level.

    The *random* tenants (ids ``R*``) are thinned so that total open-loop
    demand lands at ``open_loop_utilization`` of server capacity; the
    reference tenants T1..T12 are never thinned (their rates are part of
    their identity).  The paper keeps the server busy throughout its
    experiments; the default of 1.2 runs it mildly overloaded, so queues
    of over-share tenants are always populated -- the regime where
    scheduling decisions matter.
    """
    open_loop = [s for s in specs if isinstance(s.arrivals, OpenLoopProcess)]
    if not open_loop:
        return []
    trace = generate_trace(open_loop, config.duration * speed, seed=config.seed)
    budget = open_loop_utilization * config.capacity * config.duration * speed
    random_cost = sum(r.cost for r in trace if r.tenant.startswith("R"))
    fixed_cost = sum(r.cost for r in trace if not r.tenant.startswith("R"))
    random_budget = budget - fixed_cost
    if 0 < random_budget < random_cost:
        keep = random_budget / random_cost
        random_part = thin_trace(
            [r for r in trace if r.tenant.startswith("R")], keep, seed=config.seed
        )
        fixed_part = [r for r in trace if not r.tenant.startswith("R")]
        trace = sorted(random_part + fixed_part, key=lambda r: (r.time, r.tenant))
    return trace


def run_production(
    num_random: int = 250,
    include_fixed: bool = False,
    config: Optional[ExperimentConfig] = None,
    open_loop_utilization: float = 1.2,
    speed: float = 1.0,
    named_mode: str = "open-loop",
    jobs: Optional[int] = None,
    cache=None,
) -> ComparisonResult:
    """Run the Figure 9/10 experiment.

    ``jobs``/``cache`` forward to the parallel engine behind
    :func:`run_comparison` (default: the active execution context).
    """
    if config is None:
        config = production_config()
    specs = production_specs(
        num_random=num_random,
        include_fixed=include_fixed,
        seed=config.seed,
        named_mode=named_mode,
    )
    trace = production_trace(
        specs, config, open_loop_utilization=open_loop_utilization, speed=speed
    )
    return run_comparison(
        specs, config, trace=trace, speed=speed, jobs=jobs, cache=cache
    )


# ---------------------------------------------------------------------------
# Figure 10 reductions
# ---------------------------------------------------------------------------

@dataclass
class LagCDF:
    """Empirical CDF of per-tenant sigma(service lag) for one scheduler."""

    scheduler: str
    values: np.ndarray  # sorted sigma(lag), seconds
    freq: np.ndarray

    def quantile(self, q: float) -> float:
        if self.values.size == 0:
            return float("nan")
        return float(np.quantile(self.values, q))


def lag_sigma_cdfs(
    result: ComparisonResult, reference_rate: Optional[float] = None
) -> Dict[str, LagCDF]:
    """Figure 10 (left): CDFs of sigma(lag) across all tenants."""
    if reference_rate is None:
        reference_rate = result.fair_rate()
    out: Dict[str, LagCDF] = {}
    for name, run in result.runs.items():
        sigmas = run.lag_sigmas(reference_rate=reference_rate)
        values = np.sort(
            np.array([v for v in sigmas.values() if not np.isnan(v)])
        )
        freq = (
            np.arange(1, values.size + 1) / values.size
            if values.size
            else np.empty(0)
        )
        out[name] = LagCDF(scheduler=name, values=values, freq=freq)
    return out


def fixed_cost_lag_ranges(
    result: ComparisonResult, reference_rate: Optional[float] = None
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Figure 10 (right): per-scheduler, per-probe-tenant (t1..t7) the
    (p1, p99) range of service lag in seconds.  The paper's shape: the
    range shrinks with request size, and shrinks dramatically more under
    2DFQ (t1 range ~0.01 s vs ~0.5-0.8 s under the baselines)."""
    if reference_rate is None:
        reference_rate = result.fair_rate()
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for name, run in result.runs.items():
        ranges: Dict[str, Tuple[float, float]] = {}
        for tenant in FIXED_COST_IDS:
            if tenant not in run.tenants():
                continue
            lag = run.service_series(tenant).lag_seconds(reference_rate)
            if lag.size == 0:
                continue
            p1, p99 = np.percentile(lag, [1, 99])
            ranges[tenant] = (float(p1), float(p99))
        out[name] = ranges
    return out
