"""ASCII rendering of experiment results.

The benchmark harness prints the same rows and series the paper's
figures show; these helpers keep that output consistent and readable in
terminals and in the committed ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_named_series", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], precision: int = 4
) -> str:
    """Fixed-width table with auto-sized columns."""

    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line shape summary of a series (for time-series figures)."""
    values = list(values)
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_CHARS[0] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (high - low)
    return "".join(_SPARK_CHARS[int((v - low) * scale)] for v in values)


def format_named_series(
    title: str, series: Dict[str, Sequence[float]], width: int = 60
) -> str:
    """Render several series as labelled sparklines with min/max."""
    lines: List[str] = [title]
    for name, values in series.items():
        values = list(values)
        if len(values) > width:
            stride = len(values) / width
            values = [values[int(i * stride)] for i in range(width)]
        if values:
            lines.append(
                f"  {name:>8} [{min(values):10.4g}, {max(values):10.4g}] "
                f"{sparkline(values)}"
            )
        else:
            lines.append(f"  {name:>8} (no data)")
    return "\n".join(lines)
