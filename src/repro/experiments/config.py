"""Experiment configuration.

An :class:`ExperimentConfig` pins down everything needed to run one
workload against several schedulers under identical conditions: pool
shape, duration, sampling, refresh charging, seeding, and per-scheduler
construction arguments.  The same workload trace is materialized once
and replayed against every scheduler (the paper's controlled-comparison
methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..faults.plan import FaultPlan

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Shared parameters of one experiment.

    Parameters
    ----------
    schedulers:
        Registry names to compare (see :mod:`repro.core.registry`).
    num_threads, thread_rate:
        Worker pool shape; aggregate capacity is the product.
    duration:
        Simulated seconds per run.
    sample_interval:
        Metric sampling period; the paper uses 100 ms.
    refresh_interval:
        Refresh-charging period (paper: 10 ms); ``None`` disables it.
    warmup:
        Initial seconds excluded from metrics (estimators settling).
    scheduler_kwargs:
        Extra constructor arguments per scheduler name (e.g.
        ``{"2dfq-e": {"alpha": 0.95}}``).
    initial_estimate:
        Cold-start cost estimate applied to every ^E scheduler unless
        overridden in ``scheduler_kwargs``.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into
        every run of this experiment (a plain dict is coerced, so
        JSON-loaded configs work).  Faults change results, so the plan
        is part of the config -- and therefore of run-cache keys.
    validate:
        Wrap every run's scheduler in the
        :class:`~repro.validate.ValidatingScheduler` invariant watchdog
        (also switchable process-wide via ``REPRO_VALIDATE=1``).
    metrics_mode:
        ``"exact"`` (default: every sample kept, bit-identical to the
        historical collector) or ``"streaming"`` (bounded-memory
        sketches for long runs -- DESIGN.md §13).  Part of the config,
        hence of run-cache keys: the two modes produce different result
        objects.
    event_queue:
        ``"heap"`` (default) or ``"calendar"`` -- the simulator's event
        queue implementation (:mod:`repro.simulator.events`).  Pop-order
        identical, so results do not change; the calendar queue is the
        throughput choice once pending events reach the hundreds of
        thousands (DESIGN.md §15).
    """

    name: str
    schedulers: Tuple[str, ...]
    num_threads: int
    thread_rate: float
    duration: float
    sample_interval: float = 0.1
    refresh_interval: Optional[float] = 0.01
    warmup: float = 0.0
    seed: int = 0
    scheduler_kwargs: Dict[str, dict] = field(default_factory=dict)
    initial_estimate: Optional[float] = None
    record_dispatches: bool = True
    fault_plan: Optional[FaultPlan] = None
    validate: bool = False
    metrics_mode: str = "exact"
    event_queue: str = "heap"

    def __post_init__(self) -> None:
        if isinstance(self.fault_plan, dict):
            self.fault_plan = FaultPlan.from_dict(self.fault_plan)
        if self.num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {self.num_threads}")
        if self.thread_rate <= 0:
            raise ConfigurationError(
                f"thread_rate must be positive, got {self.thread_rate}"
            )
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if not self.schedulers:
            raise ConfigurationError("at least one scheduler required")
        if self.warmup < 0 or self.warmup >= self.duration:
            raise ConfigurationError(
                f"warmup must be in [0, duration), got {self.warmup}"
            )
        if self.metrics_mode not in ("exact", "streaming"):
            raise ConfigurationError(
                f"metrics_mode must be 'exact' or 'streaming', "
                f"got {self.metrics_mode!r}"
            )
        if self.event_queue not in ("heap", "calendar"):
            raise ConfigurationError(
                f"event_queue must be 'heap' or 'calendar', "
                f"got {self.event_queue!r}"
            )

    @property
    def capacity(self) -> float:
        return self.num_threads * self.thread_rate

    def kwargs_for(self, scheduler_name: str) -> dict:
        """Constructor kwargs for one scheduler, with the shared
        ``initial_estimate`` applied to estimated variants."""
        kwargs = dict(self.scheduler_kwargs.get(scheduler_name, {}))
        if (
            self.initial_estimate is not None
            and scheduler_name.endswith("-e")
            and "initial_estimate" not in kwargs
            and "estimator" not in kwargs
        ):
            kwargs["initial_estimate"] = self.initial_estimate
        return kwargs
