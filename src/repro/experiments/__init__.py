"""Experiment harness: one module per figure of the paper's evaluation.

==============================  =============================================
Module                          Paper figures
==============================  =============================================
``schedule_examples``           Figures 1, 5, 6 (worked schedules)
``expensive_requests``          Figure 8 (known costs, synthetic)
``production``                  Figures 9, 10 (known costs, production-like)
``unpredictable``               Figures 11, 12 (unknown costs)
``suite``                       Figure 13 (randomized 150-experiment suite)
``intuition``                   Figure 14 (QoS vs unpredictability curve)
``degradation``                 Fairness under injected faults (figfault)
==============================  =============================================
"""

from .config import ExperimentConfig
from .degradation import (
    DegradationResult,
    degradation_config,
    degradation_plan,
    run_degradation,
)
from .expensive_requests import (
    run_expensive_requests,
    sigma_vs_expensive,
    small_tenant_series,
)
from .intuition import IntuitionCurve, run_intuition_sweep
from .production import (
    fixed_cost_lag_ranges,
    lag_sigma_cdfs,
    production_specs,
    run_production,
)
from .report import format_named_series, format_table, sparkline
from .runner import ComparisonResult, run_comparison, run_single
from .schedule_examples import (
    ScheduledSlot,
    gap_statistics,
    render_schedule,
    worked_example,
)
from .suite import SuiteParameters, SuiteResult, run_suite, sample_experiment
from .unpredictable import (
    UnpredictableSweep,
    run_unpredictable,
    run_unpredictable_sweep,
)

__all__ = [
    "ExperimentConfig",
    "run_single",
    "run_comparison",
    "ComparisonResult",
    "worked_example",
    "render_schedule",
    "gap_statistics",
    "ScheduledSlot",
    "run_expensive_requests",
    "sigma_vs_expensive",
    "small_tenant_series",
    "run_production",
    "production_specs",
    "lag_sigma_cdfs",
    "fixed_cost_lag_ranges",
    "run_unpredictable",
    "run_unpredictable_sweep",
    "UnpredictableSweep",
    "run_degradation",
    "degradation_config",
    "degradation_plan",
    "DegradationResult",
    "run_suite",
    "sample_experiment",
    "SuiteParameters",
    "SuiteResult",
    "run_intuition_sweep",
    "IntuitionCurve",
    "format_table",
    "format_named_series",
    "sparkline",
]
