"""Figure 8: known request costs with increasingly many expensive tenants.

Paper §6.1.1: 100 continuously backlogged tenants share a server of 16
worker threads, each with capacity 1000 units/second.  ``n`` tenants are
*expensive* (costs ~ N(1000, 100)); the remaining ``100 - n`` are small
(costs ~ N(1, 0.1)).  Costs are known (oracle estimation).

Reproduced series:

* **Figure 8a** -- service rate (100 ms intervals) and service lag of
  one small tenant under WFQ / WF2Q / 2DFQ with n = 50;
* **Figure 8b** -- thread occupancy: which threads run expensive vs
  cheap requests (2DFQ partitions, the baselines do not);
* **Figure 8c** -- sigma of the small tenant's service lag as the number
  of expensive tenants sweeps 0..100: WFQ grows roughly linearly, WF2Q
  plateaus at its worst case, 2DFQ stays about an order of magnitude
  lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..metrics.collector import RunMetrics
from ..workloads.synthetic import expensive_requests_population
from .config import ExperimentConfig
from .runner import ComparisonResult, run_comparison

__all__ = [
    "SMALL_PROBE",
    "expensive_requests_config",
    "run_expensive_requests",
    "sigma_vs_expensive",
    "small_tenant_series",
    "occupancy_expensive_fraction",
    "SigmaSweepResult",
]

#: The small tenant whose service the figure tracks.
SMALL_PROBE = "S0"

DEFAULT_SCHEDULERS: Tuple[str, ...] = ("wfq", "wf2q", "2dfq")


def expensive_requests_config(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    num_threads: int = 16,
    thread_rate: float = 1000.0,
    duration: float = 15.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The §6.1.1 experiment configuration (paper-scale defaults)."""
    return ExperimentConfig(
        name="fig8-expensive-requests",
        schedulers=tuple(schedulers),
        num_threads=num_threads,
        thread_rate=thread_rate,
        duration=duration,
        sample_interval=0.1,
        refresh_interval=None,  # known costs: no interim measurement needed
        seed=seed,
    )


def run_expensive_requests(
    num_expensive: int = 50,
    total_tenants: int = 100,
    config: ExperimentConfig | None = None,
    jobs: int | None = None,
    cache=None,
) -> ComparisonResult:
    """Run the Figure 8a/8b workload (default: 50% expensive tenants)."""
    if config is None:
        config = expensive_requests_config()
    specs = expensive_requests_population(
        num_small=total_tenants - num_expensive, total=total_tenants
    )
    return run_comparison(specs, config, jobs=jobs, cache=cache)


@dataclass
class SigmaSweepResult:
    """Figure 8c data: sigma(service lag) of a small tenant vs the
    number of expensive tenants, per scheduler."""

    expensive_counts: List[int]
    sigmas: Dict[str, List[float]]  # scheduler -> sigma (seconds) per count
    fair_rate: float

    def rows(self) -> List[tuple]:
        """(n_expensive, sigma_wfq, sigma_wf2q, sigma_2dfq, ...) rows."""
        names = list(self.sigmas)
        out = []
        for i, n in enumerate(self.expensive_counts):
            out.append(tuple([n] + [self.sigmas[name][i] for name in names]))
        return out


def sigma_vs_expensive(
    expensive_counts: Sequence[int] = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 99),
    total_tenants: int = 100,
    config: ExperimentConfig | None = None,
    jobs: int | None = None,
    cache=None,
) -> SigmaSweepResult:
    """Sweep the expensive-tenant count and measure sigma(lag) of the
    small probe tenant (Figure 8c).

    Counts equal to ``total_tenants`` are clamped to ``total - 1`` so a
    small probe tenant always exists to measure.
    """
    if config is None:
        config = expensive_requests_config()
    fair_rate = config.capacity / total_tenants
    sigmas: Dict[str, List[float]] = {name: [] for name in config.schedulers}
    counts = [min(n, total_tenants - 1) for n in expensive_counts]
    for n_expensive in counts:
        result = run_expensive_requests(
            num_expensive=n_expensive,
            total_tenants=total_tenants,
            config=config,
            jobs=jobs,
            cache=cache,
        )
        for name in config.schedulers:
            sigmas[name].append(
                result[name].lag_sigma(SMALL_PROBE, reference_rate=fair_rate)
            )
    return SigmaSweepResult(
        expensive_counts=list(counts), sigmas=sigmas, fair_rate=fair_rate
    )


def small_tenant_series(
    result: ComparisonResult, tenant: str = SMALL_PROBE
) -> Dict[str, dict]:
    """Figure 8a series per scheduler: sampled times, service rate per
    interval, and lag in seconds for the probe tenant."""
    fair_rate = result.fair_rate()
    out: Dict[str, dict] = {}
    for name, run in result.runs.items():
        series = run.service_series(tenant)
        out[name] = {
            "times": series.times,
            "service_rate": series.service_rate(),
            "lag_seconds": series.lag_seconds(fair_rate),
        }
    return out


def occupancy_expensive_fraction(
    run: RunMetrics, num_threads: int, cost_threshold: float = 100.0
) -> np.ndarray:
    """Per-thread fraction of busy time spent on expensive requests
    (Figure 8b in one number per thread).  Under 2DFQ the vector is a
    step function -- some threads ~1.0, the rest ~0.0; under WFQ/WF2Q it
    is near-uniform."""
    busy = np.zeros(num_threads)
    expensive = np.zeros(num_threads)
    for record in run.dispatch_log:
        duration = record.end - record.start
        busy[record.thread_id] += duration
        if record.cost >= cost_threshold:
            expensive[record.thread_id] += duration
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(busy > 0, expensive / busy, 0.0)
