"""The ``figfleet`` experiment: cluster fairness under a server crash.

Single-server figures ask "does the scheduler keep tenants at their
fair share?".  This experiment asks the fleet-level version: **does a
mid-run server crash destroy surviving tenants' cluster-wide fair
share, and does crash failover restore it?**  Three runs over the
identical workload and crash plan:

``healthy``
    No faults; the cluster-GPS lag baseline for this workload/router.
``crash``
    One server dies mid-run with ``failover=None``: no health monitor,
    so the router keeps feeding the corpse and every request placed
    there is stranded forever.  Open-loop tenants keep arriving into
    the GPS reference, so their cluster lag grows without bound --
    the measurable degradation the acceptance criterion demands.
``failover``
    Same crash, with the full robustness tier: detection after the
    probe window, exact-refund drain, re-route with bounded retries.
    Surviving tenants' lag must stay bounded (within a small factor of
    healthy).

The workload mixes closed-loop probes (small fixed-cost requests -- the
fairness probes), closed-loop expensive tenants (the 2DFQ stressor),
and open-loop Poisson tenants (arrivals continue after the crash, which
is what turns lost capacity into unbounded lag).  A router ablation
runs the same crash+failover scenario under every registered policy.

The mode comparison defaults to the ``round-robin`` router: it is the
classic cost- and health-oblivious load-balancer baseline, so the
crash-vs-failover contrast is pure robustness tier.  ``least-backlog``
partially self-heals even without a health monitor (the dead server's
backlog only grows, so join-shortest-queue stops feeding it new work --
though its stranded in-flight requests are still never recovered),
which the ablation table makes visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.registry import make_scheduler
from ..faults.plan import FaultPlan, ServerCrash
from ..fleet import (
    FailoverPolicy,
    Fleet,
    FleetCollector,
    FleetInjector,
    FleetRunMetrics,
    router_names,
)
from ..obs.flight import FlightRecorder
from ..obs.session import current_session
from ..obs.tracer import Tracer
from ..simulator.clock import Simulation
from ..simulator.server import ThreadPoolServer
from ..validate import FleetConservationLedger, ValidatingScheduler, env_validate
from ..workloads.arrivals import PoissonArrivals
from ..workloads.build import attach_specs
from ..workloads.distributions import FixedCost, LogNormalCost
from ..workloads.spec import TenantSpec

__all__ = [
    "PROBE_TENANT",
    "fleet_population",
    "fleet_crash_plan",
    "run_fleet",
    "run_figfleet",
    "FleetRunResult",
    "FigFleetResult",
]

#: The small fixed-cost closed-loop tenant whose cluster lag the
#: figure headlines (mirrors SMALL_PROBE in the Figure 8 experiment).
PROBE_TENANT = "P1"


def fleet_population(
    num_probes: int = 4,
    num_expensive: int = 2,
    num_open_loop: int = 6,
    capacity: float = 8000.0,
    open_loop_utilization: float = 0.3,
    probe_cost: float = 5.0,
    expensive_cost: float = 250.0,
) -> List[TenantSpec]:
    """The mixed fleet workload (see module docstring).

    ``capacity`` is the *fleet-wide* cost-units/second the open-loop
    utilization is planned against.
    """
    specs: List[TenantSpec] = []
    for i in range(num_probes):
        specs.append(
            TenantSpec(
                tenant_id=f"P{i + 1}",
                api_costs={"probe": FixedCost(probe_cost)},
            )
        )
    for i in range(num_expensive):
        specs.append(
            TenantSpec(
                tenant_id=f"E{i + 1}",
                api_costs={"heavy": FixedCost(expensive_cost)},
            )
        )
    if num_open_loop:
        per_tenant_units = capacity * open_loop_utilization / num_open_loop
        open_costs = LogNormalCost(median=10.0, sigma_decades=0.2, high=100.0)
        mean_cost = open_costs.mean()
        for i in range(num_open_loop):
            specs.append(
                TenantSpec(
                    tenant_id=f"O{i + 1}",
                    api_costs={"open": open_costs},
                    arrivals=PoissonArrivals(rate=per_tenant_units / mean_cost),
                )
            )
    return specs


def fleet_crash_plan(
    duration: float, server: int = 1, seed: int = 0
) -> FaultPlan:
    """The canned figfleet fault: one server dies at 35% of the run and
    never comes back."""
    return FaultPlan(
        server_crashes=(ServerCrash(server=server, at=0.35 * duration),),
        seed=seed,
    )


@dataclass
class FleetRunResult:
    """One fleet run: metrics plus the fault/conservation bookkeeping."""

    metrics: FleetRunMetrics
    counts: Dict[str, int]
    injector_counts: Dict[str, int] = field(default_factory=dict)
    ledger: Optional[FleetConservationLedger] = None


def run_fleet(
    scheduler: str = "2dfq",
    num_servers: int = 4,
    num_threads: int = 4,
    thread_rate: float = 1000.0,
    duration: float = 8.0,
    router: str = "least-backlog",
    specs: Optional[Sequence[TenantSpec]] = None,
    plan: Optional[FaultPlan] = None,
    failover: Optional[FailoverPolicy] = FailoverPolicy(),
    admission_limit: Optional[float] = None,
    health_interval: float = 0.05,
    failure_threshold: int = 1,
    sample_interval: float = 0.1,
    warmup: float = 0.0,
    seed: int = 0,
    validate: bool = False,
    tracer: Optional[Tracer] = None,
    initial_estimate: float = 1000.0,
    name: str = "fleet",
) -> FleetRunResult:
    """Run one fleet scenario end to end and freeze its metrics.

    Per-server schedulers are independent instances of ``scheduler``;
    ``validate`` (or ``REPRO_VALIDATE=1``) wraps each in the invariant
    watchdog *and* audits cross-server conservation with a
    :class:`~repro.validate.FleetConservationLedger`.

    Observability follows the single-server runner's contract: inside an
    active trace session (the figures CLI's ``--trace``) the run gets a
    session tracer labelled ``name``, a flight recorder riding the
    tracer sink (fleet crash/failover events are FAULT-kind triggers,
    so every detection and drain leaves a dump), and its artifacts are
    exported when the run ends.
    """
    validate = validate or env_validate()
    sim = Simulation()
    servers = []
    # initial_estimate only applies to estimated (-e) variants, the same
    # convention as ExperimentConfig.kwargs_for.
    kwargs = (
        {"initial_estimate": initial_estimate}
        if scheduler.endswith("-e")
        else {}
    )
    for _ in range(num_servers):
        sched = make_scheduler(scheduler, num_threads=num_threads, **kwargs)
        if validate:
            sched = ValidatingScheduler(sched)
        servers.append(
            ThreadPoolServer(sim, sched, num_threads, rate=thread_rate)
        )
    fleet = Fleet(
        sim,
        servers,
        router=router,
        failover=failover,
        admission_limit=admission_limit,
        health_interval=health_interval,
        failure_threshold=failure_threshold,
        seed=seed,
    )
    session = current_session() if tracer is None else None
    if session is not None:
        tracer = session.tracer(name)
    flight: Optional[FlightRecorder] = None
    if tracer is not None and tracer.enabled:
        tracer.registry.set_clock(lambda: sim.now)
        fleet.attach_tracer(tracer)
        for server in servers:
            server.attach_tracer(tracer)
            server.scheduler.attach_tracer(tracer)
        if session is not None:
            flight = FlightRecorder(capacity=session.flight_events)
            tracer.add_sink(flight.on_event)
    collector = FleetCollector(
        fleet, sample_interval=sample_interval, warmup=warmup
    )
    ledger = FleetConservationLedger(fleet) if validate else None
    injector = None
    if plan is not None and not plan.is_empty:
        injector = FleetInjector(fleet, plan)
        injector.install()
    if specs is None:
        specs = fleet_population(
            capacity=num_servers * num_threads * thread_rate
        )
    attach_specs(fleet, specs, seed=seed, duration=duration)
    sim.run(until=duration)
    if ledger is not None:
        ledger.verify()
    if session is not None and tracer is not None:
        extra: Dict[str, object] = {"fleet": dict(fleet.counts)}
        if injector is not None:
            extra["faults"] = dict(injector.counts)
        if ledger is not None:
            extra["validation"] = {"violations": list(ledger.errors)}
        session.export_run(
            tracer,
            seed=seed,
            config={
                "name": name,
                "scheduler": scheduler,
                "num_servers": num_servers,
                "num_threads": num_threads,
                "thread_rate": thread_rate,
                "duration": duration,
                "router": router,
                "failover": failover is not None,
                "admission_limit": admission_limit,
                "health_interval": health_interval,
                "failure_threshold": failure_threshold,
            },
            extra=extra,
            flight=flight,
        )
    return FleetRunResult(
        metrics=collector.result(),
        counts=dict(fleet.counts),
        injector_counts=dict(injector.counts) if injector is not None else {},
        ledger=ledger,
    )


@dataclass
class FigFleetResult:
    """The three figfleet modes plus the router ablation."""

    runs: Dict[str, FleetRunResult]
    ablation: Dict[str, FleetRunResult]
    plan: FaultPlan
    fair_rate: float
    survivors: Tuple[str, ...]

    def worst_survivor_lag(self, mode: str) -> float:
        """Worst max-|lag| (seconds of fair-share service) over the
        surviving closed-loop tenants in one mode."""
        metrics = self.runs[mode].metrics
        return max(
            metrics.max_abs_lag(tenant) / self.fair_rate
            for tenant in self.survivors
        )

    def rows(self) -> List[tuple]:
        out = []
        for mode, run in self.runs.items():
            out.append(
                (
                    mode,
                    self.worst_survivor_lag(mode),
                    run.metrics.lag_sigma(PROBE_TENANT, self.fair_rate),
                    run.counts.get("completed", 0),
                    run.counts.get("failover_retries", 0),
                    run.counts.get("abandoned", 0),
                )
            )
        return out

    def ablation_rows(self) -> List[tuple]:
        out = []
        for name, run in self.ablation.items():
            metrics = run.metrics
            out.append(
                (
                    name,
                    max(
                        metrics.max_abs_lag(tenant) / self.fair_rate
                        for tenant in self.survivors
                    ),
                    run.counts.get("completed", 0),
                    run.counts.get("rejected", 0),
                )
            )
        return out


def run_figfleet(
    scheduler: str = "2dfq",
    num_servers: int = 4,
    num_threads: int = 4,
    thread_rate: float = 1000.0,
    duration: float = 8.0,
    router: str = "round-robin",
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    validate: bool = False,
    tracer: Optional[Tracer] = None,
) -> FigFleetResult:
    """Run the healthy / crash / crash+failover comparison plus the
    sharding-policy ablation (every registered router, crash+failover).
    """
    if num_servers < 2:
        raise ValueError("figfleet needs at least 2 servers to crash one")
    if plan is None:
        plan = fleet_crash_plan(duration)
    specs = fleet_population(
        capacity=num_servers * num_threads * thread_rate
    )
    common = dict(
        scheduler=scheduler,
        num_servers=num_servers,
        num_threads=num_threads,
        thread_rate=thread_rate,
        duration=duration,
        specs=specs,
        seed=seed,
        validate=validate,
    )
    runs = {
        "healthy": run_fleet(
            router=router,
            plan=None,
            tracer=tracer,
            name="figfleet--healthy",
            **common,
        ),
        "crash": run_fleet(
            router=router,
            plan=plan,
            failover=None,
            name="figfleet--crash",
            **common,
        ),
        "failover": run_fleet(
            router=router,
            plan=plan,
            tracer=tracer,
            name="figfleet--failover",
            **common,
        ),
    }
    ablation = {
        name: run_fleet(
            router=name,
            plan=plan,
            name=f"figfleet-ablation--{name}",
            **common,
        )
        for name in router_names()
    }
    # Fair-share rate of one tenant against the *full* fleet (the
    # healthy-run reference): capacity / population weight.
    total_weight = float(sum(spec.weight for spec in specs))
    fair_rate = num_servers * num_threads * thread_rate / total_weight
    # Every tenant survives the crash (servers die, tenants do not), so
    # the lag bound is checked over the whole population -- open-loop
    # tenants included, since stranded arrivals are where an unprotected
    # crash turns into unbounded cluster lag.
    survivors = tuple(spec.tenant_id for spec in specs)
    return FigFleetResult(
        runs=runs,
        ablation=ablation,
        plan=plan,
        fair_rate=fair_rate,
        survivors=survivors,
    )
