"""Figure 14: the quality-of-service intuition curve (paper §7).

The discussion section sketches why 2DFQ wins: moving from fully
predictable workloads (1) toward fully unpredictable ones (2), all
schedulers degrade, but 2DFQ degrades much more slowly, opening a gap in
the middle where typical workloads live (3).  This module measures that
curve directly: sweep the unpredictable fraction over [0, 1] and report
a quality-of-service score per scheduler -- the inverse of the median
service-lag standard deviation of the predictable small tenants
(T1..T4), i.e. how smoothly they are served (the paper's central
quality notion), normalized to the best scheduler at fraction 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .config import ExperimentConfig
from .unpredictable import run_unpredictable, unpredictable_config

__all__ = ["IntuitionCurve", "run_intuition_sweep"]

#: The predictable small tenants whose service quality the curve tracks.
QOS_TENANTS = ("T1", "T2", "T3", "T4")


@dataclass
class IntuitionCurve:
    """Quality-of-service vs workload unpredictability, per scheduler."""

    fractions: List[float]
    #: scheduler -> QoS score per fraction (1.0 = best at fraction 0).
    qos: Dict[str, List[float]]

    def degradation(self, scheduler: str) -> float:
        """QoS at the last fraction relative to the first: how much of
        its service quality the scheduler retains under maximum
        unpredictability."""
        series = self.qos[scheduler]
        if not series or series[0] <= 0:
            return float("nan")
        return series[-1] / series[0]


def run_intuition_sweep(
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    num_random: int = 100,
    config: Optional[ExperimentConfig] = None,
    tenants: Sequence[str] = QOS_TENANTS,
    open_loop_utilization: float = 0.5,
) -> IntuitionCurve:
    """Measure the Figure 14 curve.

    QoS score = 1 / median(sigma(service lag) of the predictable small
    tenants), normalized so the best scheduler at fraction 0 scores 1.0.
    """
    if config is None:
        config = unpredictable_config()
    raw: Dict[str, List[float]] = {name: [] for name in config.schedulers}
    for fraction in fractions:
        result = run_unpredictable(
            fraction,
            num_random=num_random,
            config=config,
            open_loop_utilization=open_loop_utilization,
        )
        fair_rate = result.fair_rate()
        for name, run in result.runs.items():
            sigmas = [
                run.lag_sigma(t, reference_rate=fair_rate) for t in tenants
            ]
            sigmas = [v for v in sigmas if not np.isnan(v) and v > 0]
            score = 1.0 / float(np.median(sigmas)) if sigmas else 0.0
            raw[name].append(score)
    best_at_zero = max((values[0] for values in raw.values() if values), default=1.0)
    if best_at_zero <= 0:
        best_at_zero = 1.0
    qos = {name: [v / best_at_zero for v in values] for name, values in raw.items()}
    return IntuitionCurve(fractions=list(fractions), qos=qos)
