"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulerError",
    "SimulationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class SchedulerError(ReproError):
    """A scheduler was driven through an illegal state transition.

    Examples: completing a request that was never dispatched, dequeuing
    for a thread index outside ``range(num_threads)``.
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency.

    Examples: scheduling an event in the past, running a simulation that
    has already finished.
    """


class WorkloadError(ReproError):
    """A workload specification or trace could not be built or parsed."""
