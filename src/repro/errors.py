"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulerError",
    "InvariantViolation",
    "SimulationError",
    "WorkloadError",
    "CellExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class SchedulerError(ReproError):
    """A scheduler was driven through an illegal state transition.

    Examples: completing a request that was never dispatched, dequeuing
    for a thread index outside ``range(num_threads)``.
    """


class InvariantViolation(SchedulerError):
    """A runtime scheduler invariant was violated.

    Raised by the :mod:`repro.validate` watchdog in strict mode when an
    invariant from the DESIGN.md §11 catalogue fails (virtual time went
    backwards, a work-conserving scheduler refused queued work, a request
    was lost or duplicated, backlog accounting diverged).  Carries the
    machine-readable context the watchdog also reports through obs.
    """

    def __init__(self, code: str, message: str, context: Optional[dict] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.context = dict(context or {})


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency.

    Examples: scheduling an event in the past, running a simulation that
    has already finished.
    """


class WorkloadError(ReproError):
    """A workload specification or trace could not be built or parsed."""


class CellExecutionError(ReproError):
    """A parallel-engine cell failed; identifies *which* cell.

    Wraps the originating exception (available as ``__cause__``) with the
    cell's index in the submitted sequence and the cell object itself, so
    a failed fan-out is attributable to one (experiment, scheduler)
    coordinate instead of a bare traceback from an anonymous worker.
    """

    def __init__(self, index: int, cell: Any, message: str):
        label = getattr(cell, "label", None)
        label = str(label()) if callable(label) else type(cell).__name__
        super().__init__(f"cell {index} ({label}) failed: {message}")
        self.index = index
        self.cell = cell
        self.label = label
