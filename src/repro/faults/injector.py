"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`
against one :class:`~repro.simulator.server.ThreadPoolServer`.

Every fault is realized as ordinary discrete events in the run's own
simulation loop, so fault timing interleaves deterministically with the
workload: same plan + same seed = same run.  Installation is strictly
additive -- a run without an injector (or with an empty plan) executes
exactly the pre-fault code paths, which is what keeps the fault-free
differential tests bit-identical.

The injector reports what it does through the run's tracer (``fault``
events + ``faults.*`` counters) when one is attached, and keeps its own
summary counts either way (surfaced in the run manifest).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.request import Request, RequestPhase
from ..errors import ConfigurationError
from ..simulator.rng import make_rng
from ..simulator.server import ThreadPoolServer
from .estimator import FaultyEstimator
from .plan import (
    DeadlinePolicy,
    FaultPlan,
    WorkerCrash,
    WorkerSlowdown,
    retry_delay,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's faults into a server's simulation loop.

    Usage (the experiment runner does this when
    ``config.fault_plan`` is set)::

        injector = FaultInjector(server, plan)
        injector.install()                # slowdowns, crashes, deadlines
        injector.wire_estimator(scheduler)  # estimator outage/bias windows
        sim.run(...)
        injector.counts                   # summary for the manifest
    """

    def __init__(self, server: ThreadPoolServer, plan: FaultPlan) -> None:
        self.server = server
        self.plan = plan
        self._rng = make_rng(plan.seed, "faults", "jitter")
        self._attempts: Dict[int, int] = {}  # seqno -> retries so far
        self.counts: Dict[str, int] = {
            "slowdowns": 0,
            "crashes": 0,
            "restarts": 0,
            "deadline_expiries": 0,
            "retries": 0,
            "abandoned": 0,
        }

    # -- installation -----------------------------------------------------------

    def install(self) -> None:
        """Schedule every worker/deadline fault; idempotence is the
        caller's concern (install once per run)."""
        if self.plan.has_fleet_faults:
            raise ConfigurationError(
                "fault plan contains fleet-granularity faults "
                "(server_crashes/server_slowdowns); a single-server run "
                "cannot execute them -- run the plan through a "
                "repro.fleet.Fleet + FleetInjector instead"
            )
        sim = self.server.sim
        workers = len(self.server.workers)
        for slowdown in self.plan.slowdowns:
            if slowdown.worker >= workers:
                continue  # plan written for a larger pool; skip quietly
            sim.at(slowdown.start, self._begin_slowdown, slowdown)
            sim.at(slowdown.end, self._end_slowdown, slowdown)
        for crash in self.plan.crashes:
            if crash.worker >= workers:
                continue
            sim.at(crash.at, self._crash, crash)
            if crash.restart_at is not None:
                sim.at(crash.restart_at, self._restore, crash)
        if self.plan.deadlines:
            self.server.on_submit(self._watch_deadline)

    def wire_estimator(self, scheduler) -> None:
        """Wrap the scheduler's estimator in a
        :class:`~repro.faults.estimator.FaultyEstimator` and schedule a
        selection-index rebuild at every window boundary (estimates jump
        for all tenants at once there; see the coherence note in
        :mod:`repro.faults.estimator`).  No-op when the plan has no
        estimator faults or the scheduler has no swappable estimator."""
        if not self.plan.estimator_faults:
            return
        if not hasattr(scheduler, "set_estimator"):
            return
        sim = self.server.sim
        faulty = FaultyEstimator(
            scheduler.estimator, self.plan.estimator_faults, clock=lambda: sim.now
        )
        scheduler.set_estimator(faulty)
        reindex = getattr(scheduler, "reindex_backlogged", None)
        for fault in self.plan.estimator_faults:
            sim.at(fault.start, self._estimator_edge, fault, "open", reindex)
            sim.at(fault.end, self._estimator_edge, fault, "close", reindex)

    # -- worker faults ----------------------------------------------------------

    def _begin_slowdown(self, slowdown: WorkerSlowdown) -> None:
        self.server.set_worker_speed(slowdown.worker, slowdown.factor)
        self.counts["slowdowns"] += 1
        self._trace_fault(
            "slowdown_begin", worker=slowdown.worker, factor=slowdown.factor
        )

    def _end_slowdown(self, slowdown: WorkerSlowdown) -> None:
        self.server.set_worker_speed(slowdown.worker, 1.0)
        self._trace_fault("slowdown_end", worker=slowdown.worker)

    def _crash(self, crash: WorkerCrash) -> None:
        interrupted = self.server.crash_worker(
            crash.worker, redispatch=crash.redispatch
        )
        self.counts["crashes"] += 1
        self._trace_fault(
            "worker_crash",
            tenant=interrupted.tenant_id if interrupted is not None else None,
            worker=crash.worker,
            interrupted=interrupted.seqno if interrupted is not None else None,
            redispatch=crash.redispatch,
        )

    def _restore(self, crash: WorkerCrash) -> None:
        self.server.restore_worker(crash.worker)
        self.counts["restarts"] += 1
        self._trace_fault("worker_restart", worker=crash.worker)

    def _estimator_edge(self, fault, edge: str, reindex) -> None:
        if reindex is not None:
            reindex()
        self._trace_fault(f"estimator_{fault.mode}_{edge}")

    # -- deadlines --------------------------------------------------------------

    def _watch_deadline(self, request: Request) -> None:
        policy = self.plan.policy_for(request.tenant_id)
        if policy is None:
            return
        self.server.sim.after(policy.deadline, self._expire, request, policy)

    def _expire(self, request: Request, policy: DeadlinePolicy) -> None:
        phase = request.phase
        if phase != RequestPhase.QUEUED and phase != RequestPhase.RUNNING:
            return  # completed (or already torn down) before the deadline
        if not self.server.abort(request):
            return
        self.counts["deadline_expiries"] += 1
        self._trace_fault(
            "deadline_expired",
            tenant=request.tenant_id,
            seqno=request.seqno,
            was_running=phase == RequestPhase.RUNNING,
        )
        attempts = self._attempts.get(request.seqno, 0)
        if attempts < policy.max_retries:
            self._attempts[request.seqno] = attempts + 1
            delay = retry_delay(
                policy.backoff,
                policy.growth,
                policy.jitter,
                attempts,
                float(self._rng.uniform(0.0, 1.0)),
            )
            self.server.sim.after(delay, self._retry, request)
        else:
            self.counts["abandoned"] += 1
            self._trace_fault(
                "abandoned", tenant=request.tenant_id, seqno=request.seqno
            )
            source = request.source
            if source is not None:
                # The client gave up; closed-loop tenants move on to
                # their next request rather than wedging forever.
                source.on_request_complete(request)

    def _retry(self, request: Request) -> None:
        if request.phase != RequestPhase.CANCELLED:
            return  # re-submitted or torn down through another path
        self.counts["retries"] += 1
        self._trace_fault(
            "retry",
            tenant=request.tenant_id,
            seqno=request.seqno,
            attempt=self._attempts.get(request.seqno, 0),
        )
        # A retry is a fresh client submission: arrival time moves to
        # now and the deadline listener arms a new timer for it.
        self.server.submit(request)

    # -- tracing ----------------------------------------------------------------

    def _trace_fault(self, fault: str, tenant: Optional[str] = None, **fields) -> None:
        trace = self.server._trace
        if trace is not None:
            trace.fault(self.server.sim.now, fault, tenant=tenant, **fields)
