"""Estimator fault wrapper: outages and bias windows around any estimator.

Wraps a real :class:`~repro.estimation.base.CostEstimator` and perturbs
it only inside the plan's :class:`~repro.faults.plan.EstimatorFault`
windows; outside every window it is a transparent pass-through, so an
empty window list costs one comparison per estimate.

Selection-index coherence: the indexed schedulers assume a tenant's
head estimate changes only through ``observe()`` for that tenant (the
index re-touches the tenant then).  A fault window opening or closing
shifts *every* estimate at once, violating that assumption -- so the
:class:`~repro.faults.injector.FaultInjector` schedules a
``reindex_backlogged()`` at each window boundary, and within a window
the outage fallback is frozen at its window-entry value (observations
during the outage are lost anyway) so estimates cannot drift outside
the observe path.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..core.request import Request
from ..estimation.base import CostEstimator
from .plan import EstimatorFault

__all__ = ["FaultyEstimator"]


class FaultyEstimator(CostEstimator):
    """Decorates an estimator with time-windowed outage/bias faults.

    Parameters
    ----------
    inner:
        The estimator being wrapped; consulted outside fault windows and
        (for bias windows) as the base of the skewed estimate.
    faults:
        The plan's estimator fault windows.
    clock:
        Zero-argument callable returning the current simulated time
        (``lambda: sim.now``); window membership is evaluated per call.
    """

    name = "faulty"

    def __init__(
        self,
        inner: CostEstimator,
        faults: Tuple[EstimatorFault, ...],
        clock: Callable[[], float],
    ) -> None:
        self._inner = inner
        self._faults = tuple(faults)
        self._clock = clock
        self._max_seen = 0.0
        # Outage fallbacks frozen at window entry, keyed by window index.
        self._frozen: dict[int, float] = {}
        self.dropped_observations = 0

    @property
    def inner(self) -> CostEstimator:
        return self._inner

    def _active(self) -> Tuple[Optional[int], Optional[EstimatorFault]]:
        now = self._clock()
        for index, fault in enumerate(self._faults):
            if fault.active_at(now):
                return index, fault
        return None, None

    def estimate(self, request: Request) -> float:
        index, fault = self._active()
        if fault is None:
            return self._inner.estimate(request)
        if fault.mode == "bias":
            return self._inner.estimate(request) * fault.bias
        # Outage: pessimistic fallback, frozen for the window's duration.
        fallback = self._frozen.get(index)
        if fallback is None:
            if fault.fallback is not None:
                fallback = fault.fallback
            else:
                fallback = max(self._max_seen, self._inner.estimate(request))
            self._frozen[index] = fallback
        return fallback

    def observe(self, request: Request, actual_cost: float) -> None:
        self._max_seen = max(self._max_seen, actual_cost)
        _, fault = self._active()
        if fault is not None and fault.mode == "outage":
            self.dropped_observations += 1
            return  # measurements are lost during the outage
        self._inner.observe(request, actual_cost)

    def reset(self) -> None:
        self._inner.reset()
        self._max_seen = 0.0
        self._frozen.clear()
        self.dropped_observations = 0

    def attach_tracer(self, tracer) -> None:
        super().attach_tracer(tracer)
        self._inner.attach_tracer(tracer)

    def __repr__(self) -> str:
        return f"FaultyEstimator({self._inner!r}, windows={len(self._faults)})"
