"""Deterministic fault injection (DESIGN.md §11).

The paper argues 2DFQ's fairness matters most when the system degrades;
this package makes degradation a reproducible experiment input:

* :class:`FaultPlan` (:mod:`repro.faults.plan`) -- a frozen, JSON
  round-trippable description of worker slowdowns/stalls, crashes (with
  in-flight re-dispatch), client deadlines with retry/backoff/jitter,
  and estimator outage/bias windows;
* :class:`FaultInjector` (:mod:`repro.faults.injector`) -- schedules the
  plan's faults as ordinary events in the run's simulation loop;
* :class:`FaultyEstimator` (:mod:`repro.faults.estimator`) -- the
  time-windowed estimator perturbation.

Quickstart::

    from repro.faults import FaultPlan, WorkerCrash

    plan = FaultPlan(crashes=(WorkerCrash(worker=0, at=2.0, restart_at=4.0),))
    config = dataclasses.replace(config, fault_plan=plan)
    result = run_comparison(specs, config)

or end to end: ``python -m repro.figures figfault --faults plan.json``.
"""

from .estimator import FaultyEstimator
from .injector import FaultInjector
from .plan import (
    DeadlinePolicy,
    EstimatorFault,
    FaultPlan,
    ServerCrash,
    ServerSlowdown,
    WorkerCrash,
    WorkerSlowdown,
    retry_delay,
)

__all__ = [
    "FaultPlan",
    "WorkerSlowdown",
    "WorkerCrash",
    "DeadlinePolicy",
    "EstimatorFault",
    "ServerCrash",
    "ServerSlowdown",
    "FaultInjector",
    "FaultyEstimator",
    "retry_delay",
]
