"""The fault-plan DSL: a declarative, seeded description of every fault
injected into one run.

The paper's thesis is that 2DFQ/2DFQ^E preserve fairness exactly when
the real world misbehaves (PAPER.md §3, §5.3); a :class:`FaultPlan`
makes "the real world misbehaves" a first-class, reproducible input.
Plans are plain frozen dataclasses -- picklable, JSON round-trippable,
and canonicalizable -- so a plan embedded in an
:class:`~repro.experiments.config.ExperimentConfig` participates in the
content-addressed run-cache key exactly like every other parameter
(DESIGN.md §10 purity contract: faulted and fault-free runs can never
collide in the cache).

Determinism contract (DESIGN.md §11): every fault fires at a plan-fixed
simulated time through the discrete-event loop, and the only randomness
-- retry jitter -- comes from a :func:`~repro.simulator.rng.make_rng`
stream keyed on ``plan.seed``.  Same plan + same workload seed = same
run, event for event.

Fault vocabulary:

* :class:`WorkerSlowdown` -- a worker runs at ``factor`` times its rate
  during ``[start, end)``; ``factor=0`` is a full stall.
* :class:`WorkerCrash` -- a worker dies at ``at`` (its in-flight request
  loses all progress and is re-dispatched) and optionally restarts.
* :class:`DeadlinePolicy` -- client-side request deadlines with bounded
  retries under exponential backoff + jitter (the Cake/Retro-style SLO
  client, PAPERS.md).
* :class:`EstimatorFault` -- during ``[start, end)`` the cost estimator
  suffers an outage (estimates pinned to a pessimistic fallback,
  observations lost) or a multiplicative bias.
* :class:`ServerCrash` / :class:`ServerSlowdown` -- fleet-granularity
  faults: an entire :class:`~repro.simulator.server.ThreadPoolServer`
  in a :class:`~repro.fleet.Fleet` dies (optionally restarting) or runs
  degraded during a window.  Only the fleet-level injector
  (:class:`~repro.fleet.FleetInjector`) can execute these; the
  single-server :class:`~repro.faults.injector.FaultInjector` rejects
  plans containing them instead of silently ignoring a whole fault
  tier.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import ConfigurationError

__all__ = [
    "WorkerSlowdown",
    "WorkerCrash",
    "DeadlinePolicy",
    "EstimatorFault",
    "ServerCrash",
    "ServerSlowdown",
    "FaultPlan",
    "retry_delay",
]


def retry_delay(
    backoff: float, growth: float, jitter: float, attempt: int, u: float
) -> float:
    """Exponential-backoff retry delay with bounded jitter.

    ``backoff * growth**attempt`` stretched by up to ``jitter`` via the
    caller-supplied uniform draw ``u`` in ``[0, 1)`` (seeded upstream,
    so the delay is deterministic per run).  This single formula is the
    client backoff of :class:`DeadlinePolicy` *and* the failover
    re-route backoff of :class:`repro.fleet.FailoverPolicy` -- sharing
    it keeps the two retry tiers comparable in figures.
    """
    delay = backoff * (growth ** attempt)
    return delay * (1.0 + jitter * u)


def _check_window(start: float, end: float, what: str) -> None:
    if start < 0:
        raise ConfigurationError(f"{what} start must be >= 0, got {start}")
    if end <= start:
        raise ConfigurationError(
            f"{what} window must have end > start, got [{start}, {end})"
        )


@dataclass(frozen=True)
class WorkerSlowdown:
    """Worker ``worker`` runs at ``factor`` x nominal rate in ``[start, end)``.

    ``factor = 0.0`` stalls the worker completely: its current request
    freezes (resuming where it left off when the window closes) and any
    request dispatched to it meanwhile freezes too -- modelling a
    degraded-but-alive thread, not a dead one (that is
    :class:`WorkerCrash`).
    """

    worker: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(f"worker index must be >= 0, got {self.worker}")
        _check_window(self.start, self.end, "slowdown")
        if self.factor < 0:
            raise ConfigurationError(
                f"slowdown factor must be >= 0, got {self.factor}"
            )


@dataclass(frozen=True)
class WorkerCrash:
    """Worker ``worker`` crashes at ``at``; optionally restarts.

    The in-flight request (if any) loses all progress; with
    ``redispatch`` (default) it immediately re-enters the scheduler with
    its identity intact -- the charge already applied for it is refunded
    through the :meth:`~repro.core.scheduler.Scheduler.cancel` path, so
    the tenant is eventually charged only for the work it receives.
    """

    worker: int
    at: float
    restart_at: Optional[float] = None
    redispatch: bool = True

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(f"worker index must be >= 0, got {self.worker}")
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ConfigurationError(
                f"restart_at must be after the crash, got {self.restart_at} <= {self.at}"
            )


@dataclass(frozen=True)
class DeadlinePolicy:
    """Client-side deadline + retry behaviour for submitted requests.

    A request not completed within ``deadline`` seconds of its (latest)
    submission is aborted and, while attempts remain, re-submitted after
    ``backoff * growth**attempt`` seconds stretched by up to ``jitter``
    (seeded, uniform).  An exhausted request is abandoned: its closed-
    loop source is notified so backlogged tenants keep issuing work.

    ``tenants = None`` applies the policy to every tenant; otherwise
    only to the listed tenant ids.
    """

    deadline: float
    max_retries: int = 0
    backoff: float = 0.05
    growth: float = 2.0
    jitter: float = 0.1
    tenants: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0 or self.growth < 1.0 or self.jitter < 0:
            raise ConfigurationError(
                "backoff must be >= 0, growth >= 1, jitter >= 0; got "
                f"backoff={self.backoff}, growth={self.growth}, "
                f"jitter={self.jitter}"
            )
        if self.tenants is not None:
            object.__setattr__(self, "tenants", tuple(self.tenants))

    def applies_to(self, tenant_id: str) -> bool:
        return self.tenants is None or tenant_id in self.tenants


@dataclass(frozen=True)
class EstimatorFault:
    """Estimator misbehaviour during ``[start, end)``.

    ``mode = "outage"``: estimates are pinned to ``fallback`` (or, when
    ``fallback`` is ``None``, to the largest cost observed before the
    window opened -- the pessimistic fallback of paper §5.3's spirit:
    when in doubt, assume expensive) and observations inside the window
    are lost.

    ``mode = "bias"``: estimates are multiplied by ``bias``;
    observations still flow, so the estimator keeps learning while its
    output is skewed (systematic mis-estimation).
    """

    start: float
    end: float
    mode: str = "outage"
    bias: float = 1.0
    fallback: Optional[float] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "estimator fault")
        if self.mode not in ("outage", "bias"):
            raise ConfigurationError(
                f"estimator fault mode must be 'outage' or 'bias', got {self.mode!r}"
            )
        if self.bias <= 0:
            raise ConfigurationError(f"bias must be positive, got {self.bias}")
        if self.fallback is not None and self.fallback <= 0:
            raise ConfigurationError(
                f"fallback must be positive, got {self.fallback}"
            )

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class ServerCrash:
    """Server ``server`` of a fleet dies at ``at``; optionally restarts.

    A crashed server freezes: every worker stops (in-flight requests
    hold their progress but never advance) and dispatch halts.  What
    happens next is the fleet's failover policy's business -- with
    failover enabled the health monitor detects the death and drains
    the dead server's queued + in-flight requests through the
    exact-refund ``cancel()`` path, re-routing them to survivors; with
    failover disabled the requests stay stuck (the degradation the
    ``figfleet`` figure contrasts).  ``restart_at`` brings the server
    back; a drained server restarts empty, an undrained one resumes
    its frozen requests.
    """

    server: int
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError(
                f"server index must be >= 0, got {self.server}"
            )
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ConfigurationError(
                f"restart_at must be after the crash, "
                f"got {self.restart_at} <= {self.at}"
            )


@dataclass(frozen=True)
class ServerSlowdown:
    """Server ``server`` runs every worker at ``factor`` x nominal rate
    in ``[start, end)`` -- a degraded-but-alive machine (thermal
    throttling, a noisy neighbour), not a dead one.  ``factor = 0.0``
    stalls the whole server; unlike :class:`ServerCrash` it stays
    routable, so the figure for it shows queueing, not loss."""

    server: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError(
                f"server index must be >= 0, got {self.server}"
            )
        _check_window(self.start, self.end, "server slowdown")
        if self.factor < 0:
            raise ConfigurationError(
                f"slowdown factor must be >= 0, got {self.factor}"
            )


_KIND_CLASSES = {
    "slowdowns": WorkerSlowdown,
    "crashes": WorkerCrash,
    "deadlines": DeadlinePolicy,
    "estimator_faults": EstimatorFault,
    "server_crashes": ServerCrash,
    "server_slowdowns": ServerSlowdown,
}


@dataclass(frozen=True)
class FaultPlan:
    """Every fault injected into one run, plus the jitter seed.

    An empty plan (the default) is inert: the injector installs nothing
    and the run is bit-identical to an unfaulted one (the differential
    tests pin this).
    """

    slowdowns: Tuple[WorkerSlowdown, ...] = ()
    crashes: Tuple[WorkerCrash, ...] = ()
    deadlines: Tuple[DeadlinePolicy, ...] = ()
    estimator_faults: Tuple[EstimatorFault, ...] = ()
    server_crashes: Tuple[ServerCrash, ...] = ()
    server_slowdowns: Tuple[ServerSlowdown, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name, cls in _KIND_CLASSES.items():
            items = tuple(
                cls(**item) if isinstance(item, dict) else item
                for item in getattr(self, name)
            )
            for item in items:
                if not isinstance(item, cls):
                    raise ConfigurationError(
                        f"{name} entries must be {cls.__name__}, got {type(item).__name__}"
                    )
            object.__setattr__(self, name, items)

    @property
    def is_empty(self) -> bool:
        return not (
            self.slowdowns
            or self.crashes
            or self.deadlines
            or self.estimator_faults
            or self.server_crashes
            or self.server_slowdowns
        )

    @property
    def has_fleet_faults(self) -> bool:
        """True when the plan contains fleet-granularity faults, which
        only :class:`repro.fleet.FleetInjector` can execute."""
        return bool(self.server_crashes or self.server_slowdowns)

    def policy_for(self, tenant_id: str) -> Optional[DeadlinePolicy]:
        """The first deadline policy applying to ``tenant_id``."""
        for policy in self.deadlines:
            if policy.applies_to(tenant_id):
                return policy
        return None

    # -- JSON round trip ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        kwargs: Dict[str, Any] = {"seed": int(data.get("seed", 0))}
        for name, item_cls in _KIND_CLASSES.items():
            kwargs[name] = tuple(
                item_cls(**item) for item in data.get(name, ())
            )
        unknown = set(data) - set(kwargs)
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Read a plan from a JSON file (the ``--faults PLAN.json`` CLI path)."""
        try:
            return cls.from_json(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot load fault plan {path}: {exc}") from exc

    def dump(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")
