"""Event-queue throughput harness: binary heap vs calendar queue.

Measures sustained pop+push cycles per second under the *hold model*
(Vaucher & Duval 1975): the queue is pre-loaded with ``pending`` events,
then each operation pops the earliest and pushes a replacement a random
exponential increment later -- the steady-state access pattern of a
long-horizon discrete-event simulation, where the pending-event count
stays roughly constant while the time frontier advances.

Both queues are driven through the exact :class:`~repro.simulator.events`
surface the simulator uses (``push``/``pop``/handles, popped handles
marked consumed), so the numbers translate directly to simulator
wallclock.  The sweep spans pending-event counts from thousands (where
the heap's constant wins) to a million (where the calendar queue's
sequential bucket scans beat the heap's cache-hostile sift walks) --
the fleet-scale regime the 10k-tenant experiments live in.

Results land in the ``event_queue`` section of ``BENCH_manifest.json``
via ``benchmarks/test_bench_event_queue.py``, which also gates the
calendar queue's advantage at the top of the sweep.
"""

from __future__ import annotations

import platform
from typing import Callable, Dict, List, Sequence

from ..obs.registry import Timer
from ..simulator.events import CalendarEventQueue, EventQueue
from ..simulator.rng import make_rng
from .hotpath import quiesced_gc

__all__ = [
    "DEFAULT_PENDING_SIZES",
    "measure_event_queue_throughput",
    "format_event_queue_results",
]

#: Pending-event counts swept by default: small (heap-friendly), the
#: crossover region, and the fleet-scale regime the calendar queue is
#: built for.
DEFAULT_PENDING_SIZES = (1_000, 100_000, 1_000_000)

#: Queue implementations compared; mirrors ``Simulation``'s registry.
_QUEUES: Dict[str, Callable[[], object]] = {
    "heap": EventQueue,
    "calendar": CalendarEventQueue,
}


def _noop() -> None:  # pragma: no cover - never actually fired
    pass


def _hold_model_rps(queue, pending: int, ops: int, seed: int, timer: Timer) -> float:
    """Time ``ops`` hold-model cycles on a queue pre-loaded with
    ``pending`` events; returns operations per wallclock second."""
    rng = make_rng(seed, "eventq-hold", str(pending))
    for time in rng.exponential(10.0, pending):
        queue.push(float(time), _noop)
    # Pre-drawn increments (mean 10s) reused round-robin: keeps RNG cost
    # out of the timed region without the frontier ever catching up.
    deltas = [float(delta) for delta in rng.exponential(10.0, 4096)]
    push = queue.push
    pop = queue.pop
    with quiesced_gc(), timer:
        for i in range(ops):
            handle = pop()
            time = handle.time
            handle.cancel()  # mark consumed, as Simulation.run does
            push(time + deltas[i & 4095], _noop)
    return ops / timer.last if timer.last > 0 else float("inf")


def measure_event_queue_throughput(
    pending_sizes: Sequence[int] = DEFAULT_PENDING_SIZES,
    ops: int = 200_000,
    seed: int = 0,
    repeats: int = 2,
) -> Dict:
    """Hold-model throughput of every queue at every pending size.

    Returns a JSON-ready dict with one row per pending size carrying
    per-queue ``rps`` (best of ``repeats``) and ``calendar_vs_heap``,
    the throughput ratio that motivates ``ExperimentConfig.event_queue``.
    """
    rows: List[Dict] = []
    for pending in pending_sizes:
        cell: Dict = {"pending": pending, "ops": ops}
        for queue_name, queue_cls in _QUEUES.items():
            timer = Timer(f"eventq.{queue_name}.{pending}")
            best = 0.0
            for _ in range(max(1, repeats)):
                best = max(
                    best,
                    _hold_model_rps(queue_cls(), pending, ops, seed, timer),
                )
            cell[f"{queue_name}_rps"] = round(best, 1)
        cell["calendar_vs_heap"] = round(
            cell["calendar_rps"] / cell["heap_rps"], 3
        )
        rows.append(cell)
    return {
        "meta": {
            "benchmark": "event-queue-hold-model-throughput",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "seed": seed,
            "ops": ops,
            "repeats": repeats,
            "note": (
                "rps = hold-model pop+push cycles per wallclock second "
                "with `pending` events resident (exponential increments, "
                "mean 10s); calendar_vs_heap = calendar_rps / heap_rps"
            ),
        },
        "results": rows,
    }


def format_event_queue_results(payload: Dict) -> str:
    """Render the sweep as an aligned text table."""
    lines = [
        f"{'pending':>10} {'heap rps':>12} {'calendar rps':>13} {'ratio':>7}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['pending']:>10,} {row['heap_rps']:>12,.0f} "
            f"{row['calendar_rps']:>13,.0f} "
            f"{row['calendar_vs_heap']:>6.2f}x"
        )
    return "\n".join(lines)
