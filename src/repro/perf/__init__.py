"""Performance measurement helpers.

The ROADMAP's north star is a simulator that "runs as fast as the
hardware allows"; this package is where that claim is measured.  The
first instrument is the scheduler hot-path harness
(:mod:`repro.perf.hotpath`), which times ``dequeue`` throughput per
scheduler and backlog size and persists the trajectory to
``BENCH_schedulers.json`` so regressions are visible PR over PR.
"""

from .hotpath import (
    DEFAULT_SCHEDULERS,
    DEFAULT_TENANT_COUNTS,
    format_results,
    measure_dequeue_throughput,
    measure_observability_overhead,
    run_hotpath_suite,
    write_results,
)

__all__ = [
    "DEFAULT_SCHEDULERS",
    "DEFAULT_TENANT_COUNTS",
    "format_results",
    "measure_dequeue_throughput",
    "measure_observability_overhead",
    "run_hotpath_suite",
    "write_results",
]
