"""Performance measurement helpers.

The ROADMAP's north star is a simulator that "runs as fast as the
hardware allows"; this package is where that claim is measured.  Two
instruments:

* the scheduler hot-path harness (:mod:`repro.perf.hotpath`), which
  times ``dequeue`` throughput per scheduler, backlog size, and
  selection mode (linear / forced index / adaptive auto), locates the
  linear-vs-index crossover backing the adaptive thresholds, and
  ablates ``dequeue_batch`` batch sizes; persisted to
  ``BENCH_schedulers.json`` so regressions are visible PR over PR;
* the event-queue harness (:mod:`repro.perf.eventq`), which runs the
  hold-model sweep comparing the binary-heap and calendar event queues
  across pending-event counts up to a million.
"""

from .eventq import (
    DEFAULT_PENDING_SIZES,
    format_event_queue_results,
    measure_event_queue_throughput,
)
from .hotpath import (
    DEFAULT_SCHEDULERS,
    DEFAULT_TENANT_COUNTS,
    format_results,
    measure_adaptive_crossover,
    measure_batch_dispatch,
    measure_dequeue_throughput,
    measure_observability_overhead,
    measure_paired_cell,
    quiesced_gc,
    run_hotpath_suite,
    write_results,
)

__all__ = [
    "DEFAULT_PENDING_SIZES",
    "DEFAULT_SCHEDULERS",
    "DEFAULT_TENANT_COUNTS",
    "format_event_queue_results",
    "format_results",
    "measure_adaptive_crossover",
    "measure_batch_dispatch",
    "measure_dequeue_throughput",
    "measure_event_queue_throughput",
    "measure_observability_overhead",
    "measure_paired_cell",
    "quiesced_gc",
    "run_hotpath_suite",
    "write_results",
]
