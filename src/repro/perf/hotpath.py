"""Scheduler hot-path timing harness.

Measures sustained ``dequeue`` throughput (dispatches per second of
wallclock) with N tenants held continuously backlogged -- the regime
where selection cost dominates simulator runtime.  Each measurement
drives the full dispatch cycle a real simulation performs per request:

    dequeue -> complete (retroactive charge + estimator observe)
            -> enqueue a replacement for the same tenant

so the numbers reflect the whole bookkeeping path, not just the
selection scan.  Every scheduler is measured twice, with the selection
index enabled (``indexed=True``, the default everywhere) and with the
reference linear scans (``indexed=False``); the ratio is the speedup
the index buys at that backlog size.

Results are persisted as ``BENCH_schedulers.json`` (see
``benchmarks/test_bench_perf_hotpath.py``) so the performance
trajectory is tracked from PR to PR.  Wallclock timings vary with the
host, so treat absolute requests/sec as indicative; the indexed/linear
ratio is the stable signal.

Each indexed cell also reports the :class:`SelectionIndex`'s
lazy-invalidation churn (stale pops, heap rebuilds, pushes), so the
index's bookkeeping cost is tracked alongside the throughput it buys.
The schedulers run with no tracer attached -- the shipped default -- so
these numbers double as the disabled-tracer overhead measurement the
observability contract is held to (DESIGN.md §9).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core import make_scheduler
from ..core.request import Request
from ..obs.audit import AuditConfig, FairnessAuditor
from ..obs.flight import FlightRecorder
from ..obs.registry import Timer
from ..obs.tracer import Tracer
from ..simulator.rng import make_rng

__all__ = [
    "DEFAULT_SCHEDULERS",
    "DEFAULT_TENANT_COUNTS",
    "measure_dequeue_throughput",
    "measure_observability_overhead",
    "run_hotpath_suite",
    "format_results",
    "write_results",
]

#: Virtual-time schedulers with both a linear and an indexed selection
#: path; FIFO/RR/DRR are O(1) by construction and not interesting here.
DEFAULT_SCHEDULERS: Tuple[str, ...] = (
    "wfq",
    "sfq",
    "wf2q",
    "wf2q+",
    "msf2q",
    "2dfq",
    "2dfq-e",
    "wf2q-e",
)

DEFAULT_TENANT_COUNTS: Tuple[int, ...] = (10, 100, 1000)

#: APIs drawn for the synthetic backlog; a small set keeps estimator
#: state realistic (a few keys per tenant) without unbounded growth.
_APIS = ("A", "C", "G")


def _default_ops(num_tenants: int) -> int:
    """Dispatches per timing repetition: enough samples to be stable,
    capped so the O(N) linear reference stays affordable at N=1000."""
    return max(500, min(3000, 300_000 // num_tenants))


def _build_backlog(
    scheduler_name: str, num_tenants: int, seed: int
) -> List[Request]:
    """Seeded initial backlog: two queued requests per tenant, so no
    tenant drains mid-measurement."""
    rng = make_rng(seed, "hotpath", scheduler_name, str(num_tenants))
    initial: List[Request] = []
    for i in range(num_tenants):
        for _ in range(2):
            initial.append(
                Request(
                    tenant_id=f"t{i:05d}",
                    cost=float(10.0 ** rng.uniform(0.0, 4.0)),
                    api=str(rng.choice(_APIS)),
                )
            )
    return initial


def measure_dequeue_throughput(
    scheduler_name: str,
    num_tenants: int,
    num_threads: int = 4,
    thread_rate: float = 1.0,
    ops: Optional[int] = None,
    seed: int = 0,
    indexed: bool = True,
    repeats: int = 2,
    tracer_factory: Optional[Callable[[], Tracer]] = None,
) -> Dict[str, Union[str, int, float, bool]]:
    """Time ``ops`` full dispatch cycles with ``num_tenants`` backlogged.

    Returns a record with ``rps`` (dispatches per wallclock second, best
    of ``repeats`` runs on freshly built schedulers).  ``tracer_factory``
    (one fresh tracer per repetition) turns on event emission for the
    timed region; the default ``None`` measures the shipped disabled
    path.
    """
    if ops is None:
        ops = _default_ops(num_tenants)
    rng = make_rng(seed, "hotpath-costs", scheduler_name, str(num_tenants))
    replacement_costs = 10.0 ** rng.uniform(0.0, 4.0, ops)
    best = float("inf")
    timer = Timer(f"hotpath.{scheduler_name}.{num_tenants}")
    scheduler = None
    for _ in range(max(1, repeats)):
        scheduler = make_scheduler(
            scheduler_name,
            num_threads=num_threads,
            thread_rate=thread_rate,
            indexed=indexed,
        )
        if tracer_factory is not None:
            scheduler.attach_tracer(tracer_factory())
        initial = _build_backlog(scheduler_name, num_tenants, seed)
        for request in initial:
            scheduler.enqueue(request, 0.0)
        # Pre-build replacement requests outside the timed region; the
        # loop only rebinds their tenant to whoever was just served, so
        # the backlog stays at exactly ``num_tenants`` tenants.
        replacements = [
            Request(tenant_id="", cost=float(cost)) for cost in replacement_costs
        ]
        dequeue = scheduler.dequeue
        complete = scheduler.complete
        enqueue = scheduler.enqueue
        dt = 1e-4
        now = 0.0
        with timer:
            for i, replacement in enumerate(replacements):
                now += dt
                out = dequeue(i % num_threads, now)
                complete(out, out.cost, now)
                replacement.tenant_id = out.tenant_id
                replacement.api = out.api
                enqueue(replacement, now)
        best = min(best, timer.last)
    record: Dict[str, Union[str, int, float, bool, Dict[str, int]]] = {
        "scheduler": scheduler_name,
        "tenants": num_tenants,
        "threads": num_threads,
        "indexed": indexed,
        "ops": ops,
        "seconds": best,
        "rps": ops / best if best > 0 else float("inf"),
    }
    index = getattr(scheduler, "selection_index", None)
    if index is not None:
        # Churn of the final repetition; the workload is deterministic,
        # so every repetition churns identically.
        record["index_stats"] = index.stats()
    return record


def _audited_tracer(scheduler_name: str, num_threads: int) -> Tracer:
    """The ``--audit`` sink stack on a bounded tracer: auditor + flight
    recorder fed by every event, event retention capped (streaming
    shape)."""
    tracer = Tracer(f"hotpath-audited-{scheduler_name}", max_events=2048)
    auditor = FairnessAuditor(AuditConfig(capacity=float(num_threads)), tracer)
    tracer.add_sink(auditor.on_event)
    recorder = FlightRecorder(capacity=512)
    tracer.add_sink(recorder.on_event)
    return tracer


def measure_observability_overhead(
    scheduler_name: str = "2dfq",
    num_tenants: int = 100,
    num_threads: int = 4,
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 3,
) -> Dict:
    """Relative hot-path cost of each observability layer.

    Times the identical dispatch-cycle workload three ways:

    * ``disabled`` -- no tracer attached (the shipped default; every
      instrumentation site is one ``is not None`` check);
    * ``traced`` -- a bounded tracer attached (event emission plus the
      per-phase scheduler timers the span builder consumes);
    * ``audited`` -- the tracer additionally feeding the fairness
      auditor and the flight recorder as sinks (the CLI ``--audit``
      configuration).

    Returns per-mode ``rps`` and throughput relative to ``disabled``
    (1.0 = free, 0.5 = half speed).  Enabled-mode cost is recorded for
    the trajectory, not gated: only the disabled path carries a perf
    contract (DESIGN.md §9).
    """
    modes: List[Tuple[str, Optional[Callable[[], Tracer]]]] = [
        ("disabled", None),
        (
            "traced",
            lambda: Tracer(f"hotpath-traced-{scheduler_name}", max_events=2048),
        ),
        ("audited", lambda: _audited_tracer(scheduler_name, num_threads)),
    ]
    measured: Dict[str, Dict] = {}
    for mode, factory in modes:
        record = measure_dequeue_throughput(
            scheduler_name,
            num_tenants,
            num_threads=num_threads,
            ops=ops,
            seed=seed,
            repeats=repeats,
            tracer_factory=factory,
        )
        measured[mode] = {"rps": round(float(record["rps"]), 1)}
    disabled_rps = measured["disabled"]["rps"]
    for mode in measured:
        measured[mode]["relative"] = (
            round(measured[mode]["rps"] / disabled_rps, 3) if disabled_rps else 0.0
        )
    return {
        "scheduler": scheduler_name,
        "tenants": num_tenants,
        "threads": num_threads,
        "ops": ops if ops is not None else _default_ops(num_tenants),
        "modes": measured,
    }


def run_hotpath_suite(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    tenant_counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
    num_threads: int = 4,
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 2,
) -> Dict:
    """Measure every (scheduler, backlog size) cell in both selection
    modes and return the comparison table as a JSON-ready dict."""
    rows: List[Dict] = []
    for num_tenants in tenant_counts:
        for name in schedulers:
            indexed = measure_dequeue_throughput(
                name,
                num_tenants,
                num_threads=num_threads,
                ops=ops,
                seed=seed,
                indexed=True,
                repeats=repeats,
            )
            linear = measure_dequeue_throughput(
                name,
                num_tenants,
                num_threads=num_threads,
                ops=ops,
                seed=seed,
                indexed=False,
                repeats=repeats,
            )
            stats = indexed.get("index_stats", {})
            rows.append(
                {
                    "scheduler": name,
                    "tenants": num_tenants,
                    "threads": num_threads,
                    "ops": indexed["ops"],
                    "indexed_rps": round(indexed["rps"], 1),
                    "linear_rps": round(linear["rps"], 1),
                    "speedup": round(indexed["rps"] / linear["rps"], 2),
                    # SelectionIndex lazy-invalidation churn for the
                    # indexed run (absolute counts over ``ops`` cycles).
                    "stale_pops": stats.get("stale_pops", 0),
                    "heap_rebuilds": stats.get("rebuilds", 0),
                    "heap_pushes": stats.get("pushes", 0),
                }
            )
    return {
        "meta": {
            "benchmark": "scheduler-hotpath-dequeue-throughput",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "num_threads": num_threads,
            "seed": seed,
            "repeats": repeats,
            "note": (
                "rps = full dispatch cycles (dequeue+complete+enqueue) per "
                "wallclock second with N tenants continuously backlogged; "
                "speedup = indexed_rps / linear_rps; stale_pops/"
                "heap_rebuilds/heap_pushes = SelectionIndex lazy-"
                "invalidation churn of the indexed run; no tracer "
                "attached (disabled-tracing default)"
            ),
        },
        "results": rows,
    }


def format_results(payload: Dict) -> str:
    """Render the suite results as an aligned text table."""
    lines = [
        f"{'scheduler':<10} {'tenants':>7} {'linear rps':>12} "
        f"{'indexed rps':>12} {'speedup':>8} {'stale pops':>11} "
        f"{'rebuilds':>9}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['scheduler']:<10} {row['tenants']:>7} "
            f"{row['linear_rps']:>12.1f} {row['indexed_rps']:>12.1f} "
            f"{row['speedup']:>7.2f}x {row.get('stale_pops', 0):>11} "
            f"{row.get('heap_rebuilds', 0):>9}"
        )
    return "\n".join(lines)


def write_results(payload: Dict, path: Union[str, Path]) -> Path:
    """Persist suite results as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
