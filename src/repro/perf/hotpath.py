"""Scheduler hot-path timing harness.

Measures sustained ``dequeue`` throughput (dispatches per second of
wallclock) with N tenants held continuously backlogged -- the regime
where selection cost dominates simulator runtime.  Each measurement
drives the full dispatch cycle a real simulation performs per request:

    dequeue -> complete (retroactive charge + estimator observe)
            -> enqueue a replacement for the same tenant

so the numbers reflect the whole bookkeeping path, not just the
selection scan.  Every scheduler is measured in all three selection
modes -- the reference linear scans (``indexed=False``), the forced
index (``indexed=True``) and the shipped adaptive default
(``indexed="auto"``) -- with repetitions interleaved across modes and
paired per repetition (:func:`measure_paired_cell`), so the reported
speedups are robust to allocator-layout session drift; the ratio is
the speedup the selection mode buys at that backlog size.

Results are persisted as ``BENCH_schedulers.json`` (see
``benchmarks/test_bench_perf_hotpath.py``) so the performance
trajectory is tracked from PR to PR.  Wallclock timings vary with the
host, so treat absolute requests/sec as indicative; the indexed/linear
ratio is the stable signal.

Each indexed cell also reports the :class:`SelectionIndex`'s
lazy-invalidation churn (stale pops, heap rebuilds, pushes), so the
index's bookkeeping cost is tracked alongside the throughput it buys.
The schedulers run with no tracer attached -- the shipped default -- so
these numbers double as the disabled-tracer overhead measurement the
observability contract is held to (DESIGN.md §9).
"""

from __future__ import annotations

import contextlib
import gc
import json
import platform
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core import make_scheduler
from ..core.request import Request
from ..obs.audit import AuditConfig, FairnessAuditor
from ..obs.flight import FlightRecorder
from ..obs.registry import Timer
from ..obs.tracer import Tracer
from ..simulator.rng import make_rng

__all__ = [
    "DEFAULT_SCHEDULERS",
    "DEFAULT_TENANT_COUNTS",
    "measure_dequeue_throughput",
    "measure_paired_cell",
    "measure_adaptive_crossover",
    "measure_batch_dispatch",
    "measure_observability_overhead",
    "quiesced_gc",
    "run_hotpath_suite",
    "format_results",
    "write_results",
]


@contextlib.contextmanager
def quiesced_gc() -> Iterator[None]:
    """Collect, then disable the cyclic GC for a timed region.

    Benchmarks that build hundreds of thousands of objects (a
    million-entry event queue, a 10k-tenant backlog) otherwise spend
    more wallclock in generational collections triggered by *earlier*
    measurements than in the code under test -- the classic
    order-dependent bench distortion.  Timed regions here allocate and
    release acyclic objects only, so disabling the collector is safe.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

#: Virtual-time schedulers with both a linear and an indexed selection
#: path; FIFO/RR/DRR are O(1) by construction and not interesting here.
DEFAULT_SCHEDULERS: Tuple[str, ...] = (
    "wfq",
    "sfq",
    "wf2q",
    "wf2q+",
    "msf2q",
    "2dfq",
    "2dfq-e",
    "wf2q-e",
)

DEFAULT_TENANT_COUNTS: Tuple[int, ...] = (2, 10, 100, 1000, 10000)

#: APIs drawn for the synthetic backlog; a small set keeps estimator
#: state realistic (a few keys per tenant) without unbounded growth.
_APIS = ("A", "C", "G")


def _default_ops(num_tenants: int) -> int:
    """Dispatches per timing repetition: enough samples to be stable,
    capped so the O(N) linear reference stays affordable at N=1000."""
    return max(500, min(3000, 300_000 // num_tenants))


def _build_backlog(
    scheduler_name: str, num_tenants: int, seed: int
) -> List[Request]:
    """Seeded initial backlog: two queued requests per tenant, so no
    tenant drains mid-measurement."""
    rng = make_rng(seed, "hotpath", scheduler_name, str(num_tenants))
    initial: List[Request] = []
    for i in range(num_tenants):
        for _ in range(2):
            initial.append(
                Request(
                    tenant_id=f"t{i:05d}",
                    cost=float(10.0 ** rng.uniform(0.0, 4.0)),
                    api=str(rng.choice(_APIS)),
                )
            )
    return initial


def measure_dequeue_throughput(
    scheduler_name: str,
    num_tenants: int,
    num_threads: int = 4,
    thread_rate: float = 1.0,
    ops: Optional[int] = None,
    seed: int = 0,
    indexed: Union[bool, str] = True,
    repeats: int = 2,
    tracer_factory: Optional[Callable[[], Tracer]] = None,
) -> Dict[str, Union[str, int, float, bool]]:
    """Time ``ops`` full dispatch cycles with ``num_tenants`` backlogged.

    Returns a record with ``rps`` (dispatches per wallclock second, best
    of ``repeats`` runs on freshly built schedulers).  ``indexed``
    accepts the scheduler's three selection modes (``True`` forces the
    index, ``False`` the linear scans, ``"auto"`` the shipped adaptive
    default); ``selection_mode``/``index_active`` in the record say
    which mode ran and whether an index was live at the end.
    ``tracer_factory`` (one fresh tracer per repetition) turns on event
    emission for the timed region; the default ``None`` measures the
    shipped disabled path.
    """
    if ops is None:
        ops = _default_ops(num_tenants)
    rng = make_rng(seed, "hotpath-costs", scheduler_name, str(num_tenants))
    replacement_costs = 10.0 ** rng.uniform(0.0, 4.0, ops)
    best = float("inf")
    timer = Timer(f"hotpath.{scheduler_name}.{num_tenants}")
    scheduler = None
    for _ in range(max(1, repeats)):
        scheduler = make_scheduler(
            scheduler_name,
            num_threads=num_threads,
            thread_rate=thread_rate,
            indexed=indexed,
        )
        if tracer_factory is not None:
            scheduler.attach_tracer(tracer_factory())
        initial = _build_backlog(scheduler_name, num_tenants, seed)
        for request in initial:
            scheduler.enqueue(request, 0.0)
        # Pre-build replacement requests outside the timed region; the
        # loop only rebinds their tenant to whoever was just served, so
        # the backlog stays at exactly ``num_tenants`` tenants.
        replacements = [
            Request(tenant_id="", cost=float(cost)) for cost in replacement_costs
        ]
        dequeue = scheduler.dequeue
        complete = scheduler.complete
        enqueue = scheduler.enqueue
        dt = 1e-4
        now = 0.0
        with quiesced_gc(), timer:
            for i, replacement in enumerate(replacements):
                now += dt
                out = dequeue(i % num_threads, now)
                complete(out, out.cost, now)
                replacement.tenant_id = out.tenant_id
                replacement.api = out.api
                enqueue(replacement, now)
        best = min(best, timer.last)
    record: Dict[str, Union[str, int, float, bool, Dict[str, int]]] = {
        "scheduler": scheduler_name,
        "tenants": num_tenants,
        "threads": num_threads,
        "indexed": indexed,
        "selection_mode": getattr(scheduler, "selection_mode", "linear"),
        "index_active": bool(getattr(scheduler, "indexed", False)),
        "ops": ops,
        "seconds": best,
        "rps": ops / best if best > 0 else float("inf"),
    }
    index = getattr(scheduler, "selection_index", None)
    if index is not None:
        # Churn of the final repetition; the workload is deterministic,
        # so every repetition churns identically.
        record["index_stats"] = index.stats()
    return record


#: Allocator-perturbation pad bounds for paired measurements (list
#: lengths, i.e. up to 64 KiB of backing store per pad).
_JITTER_PAD_RANGE = (16, 8192)


def measure_paired_cell(
    scheduler_name: str,
    num_tenants: int,
    num_threads: int = 4,
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 2,
    modes: Sequence[Union[bool, str]] = (True, False, "auto"),
) -> Tuple[Dict[Union[bool, str], Dict], Dict[Union[bool, str], List[float]]]:
    """Measure one (scheduler, backlog) cell in every selection mode,
    with repetitions interleaved across modes and the allocator
    perturbed between builds.

    Timing each mode in its own best-of-k session is biased: the
    identical build sequence lands the hot dicts at the same arena
    offsets every repetition, so two sessions running byte-identical
    code can differ by 10-20% *consistently* -- drift that best-of-k
    cannot average away (measured here: sequential best-of-20 put
    auto/linear at 0.86x for one policy and 1.23x for another when the
    two modes execute the same instructions).  Interleaving the modes
    and holding a pseudorandom-length pad alive across each
    measurement decorrelates the layouts, and per-repetition *paired*
    ratios against the linear reference cancel whatever session drift
    remains.

    Returns ``(cells, ratios)``: per-mode records as produced by
    :func:`measure_dequeue_throughput` (``rps`` = best of ``repeats``)
    and, for every non-reference mode, the per-repetition rps ratio
    against ``False`` (the linear reference).
    """
    rng = make_rng(seed, "hotpath-layout", scheduler_name, str(num_tenants))
    samples: Dict[Union[bool, str], List[float]] = {mode: [] for mode in modes}
    cells: Dict[Union[bool, str], Dict] = {}
    for _ in range(max(1, repeats)):
        for mode in modes:
            pad = [0] * int(rng.integers(*_JITTER_PAD_RANGE))
            record = measure_dequeue_throughput(
                scheduler_name,
                num_tenants,
                num_threads=num_threads,
                ops=ops,
                seed=seed,
                indexed=mode,
                repeats=1,
            )
            del pad
            samples[mode].append(float(record["rps"]))
            prev = cells.get(mode)
            if prev is None or record["rps"] > prev["rps"]:
                cells[mode] = record
    ratios = {
        mode: [
            rps / ref if ref else float("inf")
            for rps, ref in zip(samples[mode], samples[False])
        ]
        for mode in modes
        if mode is not False
    }
    return cells, ratios


def measure_adaptive_crossover(
    scheduler_name: str,
    tenant_counts: Sequence[int] = (2, 4, 8, 16, 24, 32, 48, 64),
    num_threads: int = 4,
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 2,
) -> Dict:
    """Locate the backlog size where the index starts winning.

    Measures forced-indexed vs linear throughput over a sweep of small
    backlog sizes and reports the smallest N where the index is at
    least break-even -- the empirical basis for the adaptive policy's
    ``AUTO_INDEX_HIGH``/``AUTO_INDEX_LOW`` thresholds (which sit above
    the slowest policy's crossover with a 2x hysteresis band; see
    ``VirtualTimeScheduler``).
    """
    rows: List[Dict] = []
    crossover: Optional[int] = None
    for num_tenants in tenant_counts:
        indexed = measure_dequeue_throughput(
            scheduler_name,
            num_tenants,
            num_threads=num_threads,
            ops=ops,
            seed=seed,
            indexed=True,
            repeats=repeats,
        )
        linear = measure_dequeue_throughput(
            scheduler_name,
            num_tenants,
            num_threads=num_threads,
            ops=ops,
            seed=seed,
            indexed=False,
            repeats=repeats,
        )
        ratio = indexed["rps"] / linear["rps"] if linear["rps"] else float("inf")
        rows.append(
            {
                "tenants": num_tenants,
                "indexed_rps": round(float(indexed["rps"]), 1),
                "linear_rps": round(float(linear["rps"]), 1),
                "ratio": round(float(ratio), 3),
            }
        )
        if crossover is None and ratio >= 1.0:
            crossover = num_tenants
    scheduler = make_scheduler(scheduler_name, num_threads=num_threads)
    return {
        "scheduler": scheduler_name,
        "rows": rows,
        "crossover_tenants": crossover,
        "auto_high": getattr(type(scheduler), "AUTO_INDEX_HIGH", None),
        "auto_low": getattr(type(scheduler), "AUTO_INDEX_LOW", None),
    }


def measure_batch_dispatch(
    scheduler_name: str = "2dfq",
    num_tenants: int = 100,
    batch_sizes: Sequence[int] = (1, 2, 4, 8),
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 2,
) -> Dict:
    """Batch-size ablation: ``dequeue_batch(k)`` cycles vs ``k=1``.

    For each batch size ``k`` the timed loop pulls ``k`` requests in one
    ``dequeue_batch`` call (the pool-drain path ``ThreadPoolServer``
    takes when several workers free simultaneously), then completes and
    replaces each -- so every cell performs the same number of
    dispatches and only the per-call overhead varies.  ``ratio`` is
    throughput relative to the ``k=1`` cell.
    """
    if ops is None:
        ops = _default_ops(num_tenants)
    rng = make_rng(seed, "hotpath-batch", scheduler_name, str(num_tenants))
    replacement_costs = 10.0 ** rng.uniform(0.0, 4.0, ops)
    num_threads = max(batch_sizes)
    rows: List[Dict] = []
    for k in batch_sizes:
        thread_ids = list(range(k))
        best = float("inf")
        timer = Timer(f"hotpath-batch.{scheduler_name}.{k}")
        for _ in range(max(1, repeats)):
            scheduler = make_scheduler(
                scheduler_name, num_threads=num_threads, thread_rate=1.0
            )
            for request in _build_backlog(scheduler_name, num_tenants, seed):
                scheduler.enqueue(request, 0.0)
            replacements = [
                Request(tenant_id="", cost=float(cost))
                for cost in replacement_costs
            ]
            dequeue_batch = scheduler.dequeue_batch
            complete = scheduler.complete
            enqueue = scheduler.enqueue
            dt = 1e-4
            now = 0.0
            cycles = ops // k
            with quiesced_gc(), timer:
                cursor = 0
                for _cycle in range(cycles):
                    now += dt
                    batch = dequeue_batch(thread_ids, now)
                    for out in batch:
                        complete(out, out.cost, now)
                        replacement = replacements[cursor]
                        cursor += 1
                        replacement.tenant_id = out.tenant_id
                        replacement.api = out.api
                        enqueue(replacement, now)
            best = min(best, timer.last)
        dispatches = (ops // k) * k
        rows.append(
            {
                "batch_size": k,
                "ops": dispatches,
                "rps": round(dispatches / best, 1) if best > 0 else float("inf"),
            }
        )
    base_rps = rows[0]["rps"] or 1.0
    for row in rows:
        row["ratio"] = round(row["rps"] / base_rps, 3)
    return {
        "scheduler": scheduler_name,
        "tenants": num_tenants,
        "threads": num_threads,
        "rows": rows,
    }


def _audited_tracer(scheduler_name: str, num_threads: int) -> Tracer:
    """The ``--audit`` sink stack on a bounded tracer: auditor + flight
    recorder fed by every event, event retention capped (streaming
    shape)."""
    tracer = Tracer(f"hotpath-audited-{scheduler_name}", max_events=2048)
    auditor = FairnessAuditor(AuditConfig(capacity=float(num_threads)), tracer)
    tracer.add_sink(auditor.on_event)
    recorder = FlightRecorder(capacity=512)
    tracer.add_sink(recorder.on_event)
    return tracer


def measure_observability_overhead(
    scheduler_name: str = "2dfq",
    num_tenants: int = 100,
    num_threads: int = 4,
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 3,
) -> Dict:
    """Relative hot-path cost of each observability layer.

    Times the identical dispatch-cycle workload three ways:

    * ``disabled`` -- no tracer attached (the shipped default; every
      instrumentation site is one ``is not None`` check);
    * ``traced`` -- a bounded tracer attached (event emission plus the
      per-phase scheduler timers the span builder consumes);
    * ``audited`` -- the tracer additionally feeding the fairness
      auditor and the flight recorder as sinks (the CLI ``--audit``
      configuration).

    Returns per-mode ``rps`` and throughput relative to ``disabled``
    (1.0 = free, 0.5 = half speed).  Enabled-mode cost is recorded for
    the trajectory, not gated: only the disabled path carries a perf
    contract (DESIGN.md §9).
    """
    modes: List[Tuple[str, Optional[Callable[[], Tracer]]]] = [
        ("disabled", None),
        (
            "traced",
            lambda: Tracer(f"hotpath-traced-{scheduler_name}", max_events=2048),
        ),
        ("audited", lambda: _audited_tracer(scheduler_name, num_threads)),
    ]
    measured: Dict[str, Dict] = {}
    for mode, factory in modes:
        record = measure_dequeue_throughput(
            scheduler_name,
            num_tenants,
            num_threads=num_threads,
            ops=ops,
            seed=seed,
            repeats=repeats,
            tracer_factory=factory,
        )
        measured[mode] = {"rps": round(float(record["rps"]), 1)}
    disabled_rps = measured["disabled"]["rps"]
    for mode in measured:
        measured[mode]["relative"] = (
            round(measured[mode]["rps"] / disabled_rps, 3) if disabled_rps else 0.0
        )
    return {
        "scheduler": scheduler_name,
        "tenants": num_tenants,
        "threads": num_threads,
        "ops": ops if ops is not None else _default_ops(num_tenants),
        "modes": measured,
    }


def run_hotpath_suite(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    tenant_counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
    num_threads: int = 4,
    ops: Optional[int] = None,
    seed: int = 0,
    repeats: int = 2,
) -> Dict:
    """Measure every (scheduler, backlog size) cell in both selection
    modes and return the comparison table as a JSON-ready dict."""
    rows: List[Dict] = []
    for num_tenants in tenant_counts:
        for name in schedulers:
            # Below the adaptive threshold auto and linear execute the
            # same instructions, so the cells are pure noise floor --
            # and cheap (tens of ms each).  Spend extra interleaved
            # repetitions there so the paired estimate converges.
            cell_repeats = repeats if num_tenants > 10 else max(4 * repeats, 12)
            cells, ratios = measure_paired_cell(
                name,
                num_tenants,
                num_threads=num_threads,
                ops=ops,
                seed=seed,
                repeats=cell_repeats,
            )
            indexed, linear, auto = cells[True], cells[False], cells["auto"]
            stats = indexed.get("index_stats", {})
            rows.append(
                {
                    "scheduler": name,
                    "tenants": num_tenants,
                    "threads": num_threads,
                    "ops": indexed["ops"],
                    "indexed_rps": round(indexed["rps"], 1),
                    "linear_rps": round(linear["rps"], 1),
                    "auto_rps": round(auto["rps"], 1),
                    # The headline speedup is what the *shipped default*
                    # buys over the linear reference; the forced-index
                    # ratio rides along for the crossover trajectory.
                    # Both are the best paired per-repetition ratio --
                    # pairing cancels the arena-layout session drift
                    # that biases a ratio of independent best-of runs
                    # (see measure_paired_cell).
                    "speedup": round(max(ratios["auto"]), 2),
                    "indexed_speedup": round(max(ratios[True]), 2),
                    # Which side of the adaptive threshold this backlog
                    # size landed on ("linear" below, "indexed" above).
                    "auto_index_active": auto["index_active"],
                    # SelectionIndex lazy-invalidation churn for the
                    # forced-indexed run (absolute counts over ``ops``
                    # cycles).
                    "stale_pops": stats.get("stale_pops", 0),
                    "heap_rebuilds": stats.get("rebuilds", 0),
                    "heap_pushes": stats.get("pushes", 0),
                    "index_touches": stats.get("touches", 0),
                }
            )
    return {
        "meta": {
            "benchmark": "scheduler-hotpath-dequeue-throughput",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "num_threads": num_threads,
            "seed": seed,
            "repeats": repeats,
            "note": (
                "rps = full dispatch cycles (dequeue+complete+enqueue) per "
                "wallclock second with N tenants continuously backlogged, "
                "per selection mode (linear reference / forced index / "
                "adaptive auto default); repetitions are interleaved "
                "across modes with the allocator perturbed between "
                "builds, and speedup / indexed_speedup are the best "
                "paired per-repetition rps ratio of auto / forced-index "
                "against the linear reference (pairing cancels arena-"
                "layout session drift; small-N cells run extra "
                "repetitions); stale_pops/"
                "heap_rebuilds/heap_pushes/index_touches = SelectionIndex "
                "lazy-invalidation churn of the forced-indexed run; no "
                "tracer attached (disabled-tracing default)"
            ),
        },
        "results": rows,
    }


def format_results(payload: Dict) -> str:
    """Render the suite results as an aligned text table."""
    lines = [
        f"{'scheduler':<10} {'tenants':>7} {'linear rps':>12} "
        f"{'indexed rps':>12} {'auto rps':>12} {'auto mode':>9} "
        f"{'speedup':>8} {'stale pops':>11} {'rebuilds':>9}"
    ]
    for row in payload["results"]:
        auto_mode = "indexed" if row.get("auto_index_active") else "linear"
        lines.append(
            f"{row['scheduler']:<10} {row['tenants']:>7} "
            f"{row['linear_rps']:>12.1f} {row['indexed_rps']:>12.1f} "
            f"{row.get('auto_rps', row['indexed_rps']):>12.1f} "
            f"{auto_mode:>9} "
            f"{row['speedup']:>7.2f}x {row.get('stale_pops', 0):>11} "
            f"{row.get('heap_rebuilds', 0):>9}"
        )
    return "\n".join(lines)


def write_results(payload: Dict, path: Union[str, Path]) -> Path:
    """Persist suite results as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
