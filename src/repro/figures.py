"""Command-line figure regeneration: ``python -m repro.figures <fig> ...``.

Runs the same experiments as the benchmark suite (at the same CI scale)
and prints the regenerated series, without requiring pytest.  Useful for
quick interactive exploration::

    python -m repro.figures list
    python -m repro.figures fig01 fig06
    python -m repro.figures fig08 --duration 10

``--jobs N`` fans the independent scheduler runs behind each figure out
over ``N`` worker processes, and ``--cache DIR`` reuses previously
computed runs from a content-addressed on-disk cache (DESIGN.md §10) --
regenerating an already-computed figure then costs deserialization, not
simulation.  Output is bit-identical to a serial, uncached run::

    python -m repro.figures fig08 fig09 --jobs 4 --cache runcache/

``--trace DIR`` additionally records run telemetry (DESIGN.md §9): for
every scheduler run behind the requested figures, ``DIR/<run>/`` gets a
JSONL decision-event stream, a Chrome-trace JSON of the thread
occupancy (open in ``chrome://tracing`` or https://ui.perfetto.dev),
and a ``manifest.json`` with the seed, config, and package provenance::

    python -m repro.figures fig06 --trace traces/

``--audit DIR`` is ``--trace`` plus the online observability layer
(DESIGN.md §14): every run also gets the streaming fairness auditor
(service lag vs GPS, bursty-allocation detection, estimator drift) and
a flight recorder, exporting ``audit_report.json`` and a Prometheus
``metrics.prom`` snapshot per run (plus ``flight_recorder.json`` when a
fault or invariant violation fired)::

    python -m repro.figures fig08 --duration 1 --audit audit-run/

``--faults PLAN.json`` injects a :mod:`repro.faults` fault plan into
every simulated run behind the requested figures, and ``--validate``
wraps every run's scheduler in the :mod:`repro.validate` invariant
watchdog (DESIGN.md §11).  ``figfault`` is the dedicated
fairness-under-degradation figure (canned plan unless ``--faults``
overrides it)::

    python -m repro.figures figfault --validate
    python -m repro.figures fig08 --faults chaos.json

``figfleet`` runs a routed multi-server fleet (:mod:`repro.fleet`)
instead of one server: cluster fairness under a mid-run server crash,
healthy vs unprotected vs crash-failover, plus a sharding-policy
ablation.  ``--servers N`` and ``--router POLICY`` shape the fleet; a
``--faults`` plan with ``server_crashes`` overrides the canned crash::

    python -m repro.figures figfleet --servers 4 --router tenant-hash

Figure ids match the paper's evaluation figures; see DESIGN.md for the
index and EXPERIMENTS.md for expected shapes.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import sys
from typing import Callable, Dict

from .experiments.config import ExperimentConfig
from .faults.plan import FaultPlan
from .obs.audit import AuditConfig
from .obs.session import trace_session
from .parallel import RunCache, execution_context


from .experiments.degradation import (
    degradation_config,
    run_degradation,
)
from .experiments.fleet import PROBE_TENANT, run_figfleet
from .fleet import router_names
from .experiments.expensive_requests import (
    SMALL_PROBE,
    expensive_requests_config,
    occupancy_expensive_fraction,
    run_expensive_requests,
    sigma_vs_expensive,
)
from .experiments.production import (
    fixed_cost_lag_ranges,
    lag_sigma_cdfs,
    production_config,
    run_production,
)
from .experiments.report import format_table, sparkline
from .experiments.schedule_examples import (
    gap_statistics,
    render_schedule,
    worked_example,
)
from .experiments.unpredictable import run_unpredictable_sweep, unpredictable_config

__all__ = ["main", "FIGURES"]


def _flagged(config: ExperimentConfig, args: argparse.Namespace) -> ExperimentConfig:
    """Apply the ``--faults`` / ``--validate`` / ``--metrics`` flags to
    a figure config.

    With no flag set the config object is returned unchanged, so
    default invocations execute exactly the pre-flag configurations
    (the differential CLI tests pin this).
    """
    plan = getattr(args, "fault_plan_obj", None)
    validate = bool(getattr(args, "validate", False))
    metrics_mode = getattr(args, "metrics", "exact")
    if plan is None and not validate and metrics_mode == "exact":
        return config
    return dataclasses.replace(
        config, fault_plan=plan, validate=validate, metrics_mode=metrics_mode
    )


def fig01(args: argparse.Namespace) -> str:
    lines = []
    for name in ("wfq", "2dfq"):
        slots = worked_example(name, horizon=60.0, large_cost=10.0)
        mean_gap, max_gap = gap_statistics(slots, "A")
        lines.append(f"--- {name} ---")
        lines.extend(render_schedule(slots, horizon=40.0))
        lines.append(f"A gaps: mean={mean_gap:.2f}s max={max_gap:.2f}s\n")
    return "\n".join(lines)


def fig05(args: argparse.Namespace) -> str:
    lines = []
    for name in ("wfq", "wf2q"):
        lines.append(f"--- {name} ---")
        lines.extend(render_schedule(worked_example(name)))
        lines.append("")
    return "\n".join(lines)


def fig06(args: argparse.Namespace) -> str:
    return "\n".join(render_schedule(worked_example("2dfq")))


def fig08(args: argparse.Namespace) -> str:
    config = _flagged(expensive_requests_config(duration=args.duration), args)
    result = run_expensive_requests(num_expensive=50, config=config)
    fair = result.fair_rate()
    text = "small tenant service rate:\n"
    for name, run in result.runs.items():
        series = run.service_series(SMALL_PROBE)
        text += f"  {name:>5} {sparkline(series.service_rate().tolist())}\n"
    rows = [
        (name, run.lag_sigma(SMALL_PROBE, reference_rate=fair))
        for name, run in result.runs.items()
    ]
    text += "\n" + format_table(["scheduler", "sigma(lag) [s]"], rows)
    text += "\n\nexpensive-time fraction per thread:\n"
    for name, run in result.runs.items():
        frac = occupancy_expensive_fraction(run, config.num_threads)
        text += f"  {name:>5} " + " ".join(f"{f:.2f}" for f in frac) + "\n"
    sweep = sigma_vs_expensive(
        expensive_counts=(0, 25, 50, 75, 95),
        config=_flagged(
            expensive_requests_config(duration=min(args.duration, 3.0)), args
        ),
    )
    text += "\nsigma(lag) vs expensive tenants:\n"
    text += format_table(["n"] + list(sweep.sigmas), sweep.rows())
    return text


def fig09(args: argparse.Namespace) -> str:
    config = _flagged(production_config(duration=args.duration), args)
    result = run_production(
        num_random=80, include_fixed=True, config=config,
        named_mode="backlogged", open_loop_utilization=0.5,
    )
    fair = result.fair_rate()
    rows = []
    for name, run in result.runs.items():
        series = run.service_series("T1")
        rows.append(
            (name, series.lag_sigma(fair), float(run.gini_values.mean()))
        )
    text = format_table(["scheduler", "sigma(T1 lag) [s]", "mean Gini"], rows)
    text += "\n\nsigma(lag) CDF quartiles:\n"
    cdfs = lag_sigma_cdfs(result)
    text += format_table(
        ["scheduler", "q25", "q50", "q75"],
        [
            (n, c.quantile(0.25), c.quantile(0.5), c.quantile(0.75))
            for n, c in cdfs.items()
        ],
    )
    text += "\n\nfixed-cost probe lag ranges [s]:\n"
    ranges = fixed_cost_lag_ranges(result)
    probe_rows = []
    for tenant in sorted(next(iter(ranges.values()))):
        row = [tenant]
        for name in result.scheduler_names:
            p1, p99 = ranges[name][tenant]
            row.append(f"[{p1:+.3f},{p99:+.3f}]")
        probe_rows.append(tuple(row))
    text += format_table(["tenant"] + result.scheduler_names, probe_rows)
    return text


def fig11(args: argparse.Namespace) -> str:
    config = _flagged(unpredictable_config(duration=args.duration), args)
    sweep = run_unpredictable_sweep(
        fractions=(0.0, 0.33, 0.66), num_random=150, config=config,
        open_loop_utilization=1.3,
    )
    names = sweep.results[0].scheduler_names
    rows = []
    for fraction, result in zip(sweep.fractions, sweep.results):
        fair = result.fair_rate()
        rows.append(
            tuple(
                [f"{fraction:.0%}"]
                + [
                    result[n].service_series("T1").lag_sigma(fair)
                    for n in names
                ]
            )
        )
    return "sigma(T1 lag) [s]:\n" + format_table(["unpredictable"] + names, rows)


def figfault(args: argparse.Namespace) -> str:
    config = _flagged(degradation_config(duration=args.duration), args)
    result = run_degradation(config=config)
    text = "fairness while workers degrade mid-run "
    text += "(slowdown + stall + crash/restart):\n"
    text += format_table(
        [
            "scheduler",
            "sigma(lag) healthy",
            "sigma(lag) faulted",
            "Gini healthy",
            "Gini faulted",
        ],
        result.rows(),
    )
    plan = result.plan
    text += (
        f"\n\nfault plan: {len(plan.slowdowns)} slowdown(s), "
        f"{len(plan.crashes)} crash(es), {len(plan.deadlines)} deadline "
        f"policy(ies), {len(plan.estimator_faults)} estimator window(s)"
    )
    return text


def figfleet(args: argparse.Namespace) -> str:
    plan = getattr(args, "fault_plan_obj", None)
    result = run_figfleet(
        num_servers=args.servers,
        router=args.router,
        duration=args.duration,
        plan=plan,
        validate=bool(getattr(args, "validate", False)),
    )
    text = (
        f"cluster fairness under a mid-run server crash "
        f"({args.servers} servers, router={args.router}):\n"
    )
    text += format_table(
        [
            "mode",
            "worst survivor |lag| [s]",
            f"sigma({PROBE_TENANT} lag) [s]",
            "completed",
            "failover retries",
            "abandoned",
        ],
        result.rows(),
    )
    text += "\n\nsharding-policy ablation (crash + failover):\n"
    text += format_table(
        ["router", "worst survivor |lag| [s]", "completed", "rejected"],
        result.ablation_rows(),
    )
    plan = result.plan
    text += (
        f"\n\nfault plan: {len(plan.server_crashes)} server crash(es), "
        f"{len(plan.server_slowdowns)} server slowdown(s), seed {plan.seed}"
    )
    return text


FIGURES: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig01": fig01,
    "fig05": fig05,
    "fig06": fig06,
    "fig08": fig08,
    "fig09": fig09,
    "fig11": fig11,
    "figfault": figfault,
    "figfleet": figfleet,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.figures",
        description="Regenerate figures from the 2DFQ paper's evaluation.",
    )
    parser.add_argument(
        "figures", nargs="+",
        help=f"figure ids ({', '.join(sorted(FIGURES))}) or 'list'",
    )
    parser.add_argument(
        "--duration", type=float, default=6.0,
        help="simulated seconds per run (default 6; paper scale is 15)",
    )
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="write per-run telemetry (events.jsonl, chrome_trace.json, "
        "manifest.json) under DIR; requires --jobs 1",
    )
    parser.add_argument(
        "--audit", metavar="DIR", default=None,
        help="like --trace, plus the online fairness auditor, a "
        "Prometheus metrics snapshot and a flight recorder per run "
        "(audit_report.json, metrics.prom, flight_recorder.json); "
        "requires --jobs 1",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the independent runs behind each "
        "figure (default 1 = serial; output is identical for any N)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="content-addressed run cache directory; already-computed "
        "runs are loaded instead of re-simulated",
    )
    parser.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="inject the fault plan into every simulated run behind the "
        "requested figures (see repro.faults; figfault uses a canned "
        "plan when this is omitted)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="wrap every run's scheduler in the invariant watchdog "
        "(repro.validate); violations raise with full event context",
    )
    parser.add_argument(
        "--servers", type=int, default=4, metavar="N",
        help="fleet size for figfleet (default 4)",
    )
    parser.add_argument(
        "--router", default="round-robin", choices=router_names(),
        help="fleet routing policy for figfleet's mode comparison "
        "(default round-robin, the health-oblivious baseline; the "
        "ablation table always sweeps every policy)",
    )
    parser.add_argument(
        "--metrics", choices=("exact", "streaming"), default="exact",
        help="metrics collection mode: 'exact' keeps every sample "
        "(default); 'streaming' collects into bounded-memory sketches "
        "for long runs (DESIGN.md §13; <1%% p50/p99 latency error)",
    )
    args = parser.parse_args(argv)
    args.fault_plan_obj = FaultPlan.load(args.faults) if args.faults else None
    if args.figures == ["list"]:
        for fig in sorted(FIGURES):
            print(fig)
        return 0
    for fig in args.figures:
        if fig not in FIGURES:
            parser.error(f"unknown figure {fig!r}; try 'list'")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.trace and args.audit:
        parser.error(
            "--audit already implies --trace; pass exactly one of the two"
        )
    trace_dir = args.audit or args.trace
    if trace_dir and args.jobs > 1:
        parser.error(
            "--trace/--audit require --jobs 1: tracing is process-global "
            "and pool workers run with tracing disabled (DESIGN.md §10)"
        )
    cache = RunCache(args.cache) if args.cache else None
    context = (
        trace_session(trace_dir, audit=AuditConfig() if args.audit else None)
        if trace_dir
        else contextlib.nullcontext()
    )
    with context as session:
        with execution_context(jobs=args.jobs, cache=cache):
            for fig in args.figures:
                print(f"\n===== {fig} =====")
                print(FIGURES[fig](args))
    if trace_dir:
        print(f"\ntrace artifacts: {len(session.runs)} run(s) under {trace_dir}")
    if cache is not None:
        print(
            f"\nrun cache: {cache.hits} hit(s), {cache.misses} miss(es), "
            f"{cache.stores} stored under {cache.directory}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
