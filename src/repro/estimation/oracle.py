"""Oracle estimator: request costs are known a priori.

Used for the paper's "known request costs" experiments (§6.1), where
WFQ / WF2Q / 2DFQ schedule with the true cost of each request, exactly as
packet schedulers do with packet lengths.
"""

from __future__ import annotations

from ..core.request import Request
from ..units import Cost
from .base import CostEstimator

__all__ = ["OracleEstimator"]


class OracleEstimator(CostEstimator):
    """Returns each request's true cost; learns nothing."""

    name = "oracle"

    def estimate(self, request: Request) -> Cost:
        return request.cost

    def observe(self, request: Request, actual_cost: Cost) -> None:
        # Nothing to learn -- the oracle already knew.
        return None
