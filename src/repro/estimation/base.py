"""Cost estimator interface.

Paper §3.2 and §5: request costs are unknown at schedule time, so the
scheduler works with an *estimate* and reconciles the error later through
retroactive and refresh charging.  An estimator maps a request to a
predicted cost before dispatch and is updated with the measured cost once
the request completes.  All estimators in this package key their state on
``(tenant_id, api)`` -- the paper found per-tenant per-API state necessary
because each API is used both predictably and unpredictably by different
tenants (Figure 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple

from ..core.request import Request
from ..errors import ConfigurationError
from ..units import Cost

__all__ = ["CostEstimator", "KeyedEstimator"]


class CostEstimator(ABC):
    """Predicts request costs and learns from completed requests."""

    #: Human-readable name used in experiment reports.
    name: str = "estimator"

    #: Attached :class:`repro.obs.Tracer`, or ``None``.  A class-level
    #: default keeps subclass ``__init__`` signatures untouched; the
    #: instrumentation guard is the same single attribute check the
    #: schedulers use.
    _trace = None

    def attach_tracer(self, tracer) -> None:
        """Attach a tracer; ``estimate`` events are emitted on
        :meth:`observe` (estimator refreshes).  Disabled tracers are
        stored as ``None`` to keep the no-op fast path."""
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )

    @abstractmethod
    def estimate(self, request: Request) -> Cost:
        """Return the predicted cost of ``request`` (must be positive)."""

    @abstractmethod
    def observe(self, request: Request, actual_cost: Cost) -> None:
        """Incorporate the measured total cost of a completed request."""

    def reset(self) -> None:
        """Forget all learned state (default: no state)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class KeyedEstimator(CostEstimator):
    """Base for estimators holding one scalar state per (tenant, API) key.

    Subclasses implement :meth:`_update` (new state from old state and an
    observation) and may override :meth:`_initial_state` (state after the
    first observation).  Before any observation for a key, the estimator
    returns ``initial_estimate``.

    Parameters
    ----------
    initial_estimate:
        Cost assumed for a (tenant, API) pair never seen before.  The
        paper does not prescribe a cold-start value; experiments configure
        it to a small optimistic cost so that cold tenants behave like the
        moving-average baselines the paper compares against.
    """

    def __init__(self, initial_estimate: Cost = 1.0) -> None:
        if initial_estimate <= 0:
            raise ConfigurationError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        self._initial: Cost = float(initial_estimate)
        self._state: Dict[Tuple[str, str], Cost] = {}

    @property
    def initial_estimate(self) -> Cost:
        return self._initial

    def estimate(self, request: Request) -> Cost:
        return self._state.get(request.key, self._initial)

    def observe(self, request: Request, actual_cost: Cost) -> None:
        if actual_cost < 0:
            raise ConfigurationError(f"actual_cost must be >= 0, got {actual_cost}")
        key = request.key
        old = self._state.get(key)
        if old is None:
            new = self._initial_state(actual_cost)
        else:
            new = self._update(old, actual_cost)
        self._state[key] = new
        trace = self._trace
        if trace is not None:
            trace.estimate(
                request.completion_time,
                request.tenant_id,
                api=request.api,
                old=old,
                new=new,
                actual=actual_cost,
            )

    def peek(self, tenant_id: str, api: str = "default") -> Cost:
        """Current estimate for a key without a request object (testing)."""
        return self._state.get((tenant_id, api), self._initial)

    def reset(self) -> None:
        self._state.clear()

    # -- hooks ---------------------------------------------------------------

    def _initial_state(self, first_cost: Cost) -> Cost:
        """State after the first observation (default: the observation)."""
        return first_cost

    @abstractmethod
    def _update(self, old: Cost, cost: Cost) -> Cost:
        """Return the new state given the old state and an observed cost."""
