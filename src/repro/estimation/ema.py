"""Per-tenant per-API exponential moving average estimator.

This is the baseline estimation strategy the paper evaluates against
(§6.2): "variants of WFQ and WF2Q that estimate request costs using
per-tenant per-API exponential moving averages (alpha = 0.99)".  The
update is ``est <- alpha * est + (1 - alpha) * cost``, so alpha close to 1
weights history heavily and adapts slowly -- which is precisely why the
paper's unpredictable tenants defeat it.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import Cost, Scalar
from .base import KeyedEstimator

__all__ = ["EMAEstimator"]


class EMAEstimator(KeyedEstimator):
    """Exponential moving average of observed costs per (tenant, API)."""

    name = "ema"

    def __init__(self, alpha: Scalar = 0.99, initial_estimate: Cost = 1.0) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1), got {alpha}")
        super().__init__(initial_estimate=initial_estimate)
        self._alpha = float(alpha)

    @property
    def alpha(self) -> float:
        return self._alpha

    def _update(self, old: Cost, cost: Cost) -> Cost:
        return self._alpha * old + (1.0 - self._alpha) * cost

    def __repr__(self) -> str:
        return f"EMAEstimator(alpha={self._alpha})"
