"""Pessimistic (decayed-maximum) cost estimation -- the 2DFQ^E strategy.

Paper §5: "individually for each tenant on each API, it tracks the cost
of the largest request, L_max; after receiving the true cost measurement
c_r of a just-completed request, if c_r > L_max we set L_max = c_r,
otherwise we set L_max = alpha * L_max, where alpha < 1 but close to 1."

Overestimation only delays the overestimated tenant; underestimation
blocks worker threads for everyone (§3.2).  By estimating near the
observed maximum, unpredictable tenants are treated as expensive and --
combined with 2DFQ's cost-based thread partitioning -- get biased toward
the low-index threads, away from predictable small requests.  The decay
factor ``alpha`` tunes how much leeway a tenant has to send an occasional
expensive request before being reclassified.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import Cost, Scalar
from .base import KeyedEstimator

__all__ = ["PessimisticEstimator"]


class PessimisticEstimator(KeyedEstimator):
    """Tracks an alpha-decayed maximum of observed costs per (tenant, API)."""

    name = "pessimistic"

    def __init__(self, alpha: Scalar = 0.99, initial_estimate: Cost = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        super().__init__(initial_estimate=initial_estimate)
        self._alpha = float(alpha)

    @property
    def alpha(self) -> float:
        return self._alpha

    def _update(self, old: Cost, cost: Cost) -> Cost:
        # Figure 7, line 30: L_max <- max(alpha * L_max, T).
        return max(self._alpha * old, cost)

    def __repr__(self) -> str:
        return f"PessimisticEstimator(alpha={self._alpha})"
