"""Cost estimators for scheduling with unknown request costs (paper §5).

The scheduler charges tenants the *estimated* cost at dispatch time and
reconciles against measured usage via retroactive and refresh charging.
The choice of estimator is the second half of the 2DFQ^E contribution:

* :class:`OracleEstimator` -- true costs (the "known costs" experiments);
* :class:`EMAEstimator` -- per-tenant per-API exponential moving average,
  the baseline used by WFQ^E and WF2Q^E;
* :class:`PessimisticEstimator` -- alpha-decayed maximum, the 2DFQ^E
  strategy that pushes unpredictable tenants toward expensive threads;
* :class:`LastValueEstimator`, :class:`WindowedMeanEstimator` -- further
  baselines for estimator ablations.
"""

from .base import CostEstimator, KeyedEstimator
from .ema import EMAEstimator
from .last_value import LastValueEstimator
from .oracle import OracleEstimator
from .pessimistic import PessimisticEstimator
from .windowed import WindowedMeanEstimator

__all__ = [
    "CostEstimator",
    "KeyedEstimator",
    "OracleEstimator",
    "EMAEstimator",
    "PessimisticEstimator",
    "LastValueEstimator",
    "WindowedMeanEstimator",
    "make_estimator",
]

_FACTORIES = {
    "oracle": OracleEstimator,
    "ema": EMAEstimator,
    "pessimistic": PessimisticEstimator,
    "last-value": LastValueEstimator,
    "windowed-mean": WindowedMeanEstimator,
}


def make_estimator(name: str, **kwargs) -> CostEstimator:
    """Construct an estimator by registry name.

    >>> make_estimator("ema", alpha=0.9).alpha
    0.9
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown estimator {name!r}; known: {known}") from None
    return factory(**kwargs)
