"""Sliding-window mean estimator.

A common alternative to the EMA (paper §3.2 cites moving averages as the
typical approach in Retro, Pulsar, Pisces and friends).  Keeps the last
``window`` observed costs per (tenant, API) and predicts their mean.
Shares the EMA's weakness -- a feedback delay proportional to the window
-- and is included for estimator-comparison ablations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from ..core.request import Request
from ..errors import ConfigurationError
from ..units import Cost
from .base import CostEstimator

__all__ = ["WindowedMeanEstimator"]


class WindowedMeanEstimator(CostEstimator):
    """Mean of the last ``window`` observed costs per (tenant, API)."""

    name = "windowed-mean"

    def __init__(self, window: int = 16, initial_estimate: Cost = 1.0) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if initial_estimate <= 0:
            raise ConfigurationError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        self._window = int(window)
        self._initial: Cost = float(initial_estimate)
        self._samples: Dict[Tuple[str, str], Deque[Cost]] = {}
        self._sums: Dict[Tuple[str, str], Cost] = {}

    @property
    def window(self) -> int:
        return self._window

    def estimate(self, request: Request) -> Cost:
        samples = self._samples.get(request.key)
        if not samples:
            return self._initial
        return self._sums[request.key] / len(samples)

    def observe(self, request: Request, actual_cost: Cost) -> None:
        if actual_cost < 0:
            raise ConfigurationError(f"actual_cost must be >= 0, got {actual_cost}")
        key = request.key
        samples = self._samples.get(key)
        if samples is None:
            samples = deque(maxlen=self._window)
            self._samples[key] = samples
            self._sums[key] = 0.0
        if len(samples) == self._window:
            self._sums[key] -= samples[0]
        samples.append(actual_cost)
        self._sums[key] += actual_cost

    def reset(self) -> None:
        self._samples.clear()
        self._sums.clear()

    def __repr__(self) -> str:
        return f"WindowedMeanEstimator(window={self._window})"
