"""Last-observed-cost estimator.

The naive strategy used in the paper's §5 gaming example: "suppose we use
the cost of the most recently completed request as our estimate".  A
tenant alternating one small request with n concurrent large ones then
receives roughly n times its fair share unless retroactive charging is in
place.  Included as a baseline and to exercise that property test.
"""

from __future__ import annotations

from ..units import Cost
from .base import KeyedEstimator

__all__ = ["LastValueEstimator"]


class LastValueEstimator(KeyedEstimator):
    """Predicts each request to cost whatever the previous one did."""

    name = "last-value"

    def _update(self, old: Cost, cost: Cost) -> Cost:
        return cost
