"""Cross-server request-conservation ledger (DESIGN.md §16).

The per-server watchdog (:class:`~repro.validate.watchdog
.ValidatingScheduler`) checks scheduler invariants *inside* one server;
it cannot see a request vanish between servers.  The ledger closes that
gap: it subscribes to the fleet's logical-request listeners and checks
that every admitted request reaches **exactly one** terminal outcome --

* completed once (a second completion for the same seqno raises
  immediately: the no-duplication half of the invariant);
* abandoned once (failover retry budget or fleet-level deadline policy
  exhausted);
* or is verifiably still in flight at :meth:`verify` time -- live on a
  server (including frozen on a crashed one), awaiting a failover
  retry, or carried by a surviving hedge copy.

Anything else is a lost request (the no-loss half).  The ledger also
checks the charge side on every completion: the completing copy's
reported usage must not exceed its true cost beyond float tolerance --
with hedging, the surviving copy is charged exactly once and the
loser's charges are refunded, so an overshoot means a double charge.

Enable wherever the fleet runs under ``REPRO_VALIDATE=1`` (the
experiment runner and the property tests do).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.request import Request
from ..errors import InvariantViolation
from ..fleet.fleet import Fleet

__all__ = ["FleetConservationLedger"]

#: Relative tolerance for the charge-reconciliation check.
_CHARGE_RTOL = 1e-6


class FleetConservationLedger:
    """No-lost / no-duplicated-requests invariant across a fleet.

    Parameters
    ----------
    fleet:
        The fleet to audit; listeners are registered at construction,
        so build the ledger *before* starting sources.
    strict:
        Raise :class:`~repro.errors.InvariantViolation` at the offending
        event (duplicates, over-charges) and from :meth:`verify`;
        ``strict=False`` only records into :attr:`errors`.
    """

    def __init__(self, fleet: Fleet, strict: bool = True) -> None:
        self._fleet = fleet
        self._strict = bool(strict)
        self._admitted: Dict[int, Request] = {}
        self._completions: Dict[int, int] = {}
        self._abandoned: Set[int] = set()
        self._rejections = 0
        self.errors: List[str] = []
        fleet.on_admit(self._on_admit)
        fleet.on_complete(self._on_complete)
        fleet.on_abandon(self._on_abandon)
        fleet.on_reject(self._on_reject)

    # -- listeners ---------------------------------------------------------

    def _on_admit(self, request: Request) -> None:
        self._admitted[request.seqno] = request

    def _on_complete(self, request: Request) -> None:
        seqno = request.seqno
        count = self._completions.get(seqno, 0) + 1
        self._completions[seqno] = count
        if count > 1:
            self._flag(
                f"request {request.tenant_id}/{request.api}#{seqno} "
                f"completed {count} times"
            )
        if request.reported_usage > request.cost * (1.0 + _CHARGE_RTOL):
            self._flag(
                f"request {request.tenant_id}/{request.api}#{seqno} "
                f"over-charged: reported {request.reported_usage:g} "
                f"for cost {request.cost:g}"
            )
        if seqno in self._abandoned:
            self._flag(
                f"request {request.tenant_id}/{request.api}#{seqno} "
                "completed after being abandoned"
            )

    def _on_abandon(self, request: Request) -> None:
        seqno = request.seqno
        if seqno in self._abandoned:
            self._flag(
                f"request {request.tenant_id}/{request.api}#{seqno} "
                "abandoned twice"
            )
        if seqno in self._completions:
            self._flag(
                f"request {request.tenant_id}/{request.api}#{seqno} "
                "abandoned after completing"
            )
        self._abandoned.add(seqno)

    def _on_reject(self, request: Request) -> None:
        self._rejections += 1

    # -- verdict -----------------------------------------------------------

    @property
    def admitted(self) -> int:
        return len(self._admitted)

    @property
    def completed(self) -> int:
        return len(self._completions)

    @property
    def rejections(self) -> int:
        return self._rejections

    def verify(self) -> None:
        """End-of-run audit: every admitted request must be completed,
        abandoned, or verifiably still pending in the fleet."""
        pending = self._fleet.pending_seqnos()
        for seqno in sorted(self._admitted):
            terminal = (seqno in self._completions) + (seqno in self._abandoned)
            if terminal == 0 and seqno not in pending:
                request = self._admitted[seqno]
                self._flag(
                    f"request {request.tenant_id}/{request.api}#{seqno} "
                    "lost: admitted but neither completed, abandoned, "
                    "nor pending anywhere in the fleet"
                )
        if self.errors and not self._strict:
            return
        # strict mode raised at flag time; nothing more to do

    def _flag(self, message: str) -> None:
        self.errors.append(message)
        if self._strict:
            raise InvariantViolation(f"fleet conservation: {message}")
