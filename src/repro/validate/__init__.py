"""Runtime invariant watchdog (DESIGN.md §11).

:class:`ValidatingScheduler` wraps any scheduler and re-checks the
invariant catalogue on every contract call; violations are reported
through :mod:`repro.obs` (``invariant`` events, ``validate.violations``
counter) and -- in strict mode -- raised as
:class:`~repro.errors.InvariantViolation`.

Enable per run with ``ExperimentConfig(validate=True)``, per process
with ``REPRO_VALIDATE=1`` (the CI chaos job), or per CLI invocation
with ``python -m repro.figures ... --validate``.
"""

from .fleet import FleetConservationLedger
from .watchdog import ValidatingScheduler, env_validate

__all__ = ["FleetConservationLedger", "ValidatingScheduler", "env_validate"]
