"""The scheduler invariant watchdog.

A :class:`ValidatingScheduler` is a transparent proxy around a real
scheduler: every call of the five-method contract (enqueue / dequeue /
refresh / complete / cancel) is forwarded unchanged, and before/after
each call the watchdog re-checks the invariant catalogue below.  The
wrapped scheduler's behaviour is never altered -- with ``strict=False``
a violating run produces the same results as an unwatched one, plus the
violation report; with ``strict=True`` (the default) the first
violation raises :class:`~repro.errors.InvariantViolation` with full
event context.

Invariant catalogue (DESIGN.md §11):

``vt-monotonic``
    System virtual time never decreases (checked after every call, for
    virtual-time schedulers).  ``cancel`` is a reset point: a refund may
    retract WF2Q+ jump elevation the surviving backlog no longer
    supports, so monotonicity is re-based at the post-cancel value.
``work-conservation``
    ``dequeue`` never returns ``None`` while requests are queued
    (paper §2, "Desirable Properties").
``no-lost-requests`` / ``no-duplicate-requests``
    Every enqueued request is dispatched, completed, or cancelled
    exactly once: the watchdog mirrors the request lifecycle in its own
    seqno maps and flags a request the scheduler forgot (lost) or
    handed out twice / re-admitted while live (duplicated).
``backlog-consistency``
    The scheduler's ``backlog`` counter equals the number of requests
    the lifecycle mirror believes are queued (checked after every call)
    and, on the periodic full audit, equals the sum of per-tenant queue
    lengths, with each queued request tracked and each active flag
    consistent with queue + running occupancy.
``phase-consistency``
    Requests returned by ``dequeue`` are RUNNING, acknowledged cancels
    are CANCELLED, completions are DONE.
``charge-reconciliation``
    After ``complete()`` on a virtual-time scheduler the request has
    been charged exactly its measured cost
    (``reported_usage == cost``; paper §5 retroactive charging).

The watchdog costs two dict operations plus a handful of comparisons
per contract call and an O(N) structural audit every ``audit_interval``
calls; it is strictly opt-in and never on the benchmarked hot path.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..core.request import Request, RequestPhase
from ..core.scheduler import Scheduler
from ..core.vt_base import VirtualTimeScheduler
from ..errors import InvariantViolation

if TYPE_CHECKING:  # import cycle: repro.obs instruments core schedulers
    from ..obs.tracer import Tracer

__all__ = ["ValidatingScheduler", "env_validate"]

#: Relative slack for float comparisons (virtual-time round-off).
_EPS = 1e-9


def env_validate() -> bool:
    """True when the ``REPRO_VALIDATE`` environment variable requests
    validation for every run in this process (the CI chaos job sets it;
    pool workers inherit the environment, so it applies under any
    ``jobs`` setting)."""
    return os.environ.get("REPRO_VALIDATE", "").strip().lower() not in (
        "", "0", "false", "no",
    )


class ValidatingScheduler:
    """Invariant-checking proxy around any :class:`Scheduler`.

    Parameters
    ----------
    inner:
        The scheduler to wrap.  All attributes not shadowed here
        (``backlog``, ``tenants()``, policy internals, ...) delegate to
        it, so the proxy drops into every place a scheduler fits.
    strict:
        Raise :class:`InvariantViolation` on the first violation
        (default).  ``strict=False`` records and reports only.
    audit_interval:
        Contract calls between full O(N) structural audits (per-call
        checks are O(1) and always on).
    """

    def __init__(
        self,
        inner: Scheduler,
        strict: bool = True,
        audit_interval: int = 64,
    ) -> None:
        self._inner = inner
        self._strict = strict
        self._audit_interval = max(1, int(audit_interval))
        self._is_vt = isinstance(inner, VirtualTimeScheduler)
        self._queued: Dict[int, Request] = {}
        self._running: Dict[int, Request] = {}
        self._last_vt = float("-inf")
        self._ops = 0
        self.violations: List[Dict[str, Any]] = []
        self._trace: Optional["Tracer"] = None

    # -- proxy plumbing ---------------------------------------------------------

    @property
    def inner(self) -> Scheduler:
        return self._inner

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def attach_tracer(self, tracer: Optional["Tracer"]) -> None:
        self._inner.attach_tracer(tracer)
        self._trace = tracer if tracer is not None and tracer.enabled else None

    def summary(self) -> Dict[str, Any]:
        """Violation summary for the run manifest."""
        return {
            "strict": self._strict,
            "checked_ops": self._ops,
            "violations": len(self.violations),
            "codes": sorted({v["code"] for v in self.violations}),
        }

    def __repr__(self) -> str:
        return f"ValidatingScheduler({self._inner!r}, violations={len(self.violations)})"

    # -- contract ---------------------------------------------------------------

    def enqueue(self, request: Request, now: float) -> None:
        seqno = request.seqno
        if seqno in self._queued or seqno in self._running:
            self._violate(
                "no-duplicate-requests",
                f"request #{seqno} enqueued while already live",
                now,
                op="enqueue",
                tenant=request.tenant_id,
                seqno=seqno,
            )
        self._inner.enqueue(request, now)
        self._queued[seqno] = request
        if request.phase != RequestPhase.QUEUED:
            self._violate(
                "phase-consistency",
                f"request #{seqno} is {request.phase} after enqueue",
                now,
                op="enqueue",
                tenant=request.tenant_id,
                seqno=seqno,
            )
        self._after("enqueue", now, request.tenant_id)

    def dequeue(self, thread_id: int, now: float) -> Optional[Request]:
        queued_before = len(self._queued)
        request = self._inner.dequeue(thread_id, now)
        if request is None:
            if queued_before > 0 and self._inner.backlog > 0:
                self._violate(
                    "work-conservation",
                    f"dequeue(thread={thread_id}) returned None with "
                    f"{self._inner.backlog} queued requests",
                    now,
                    op="dequeue",
                    thread=thread_id,
                )
            self._after("dequeue", now, None)
            return None
        seqno = request.seqno
        if self._queued.pop(seqno, None) is None:
            self._violate(
                "no-duplicate-requests",
                f"dequeue returned untracked request #{seqno} "
                "(dispatched twice or never enqueued)",
                now,
                op="dequeue",
                tenant=request.tenant_id,
                seqno=seqno,
                thread=thread_id,
            )
        self._running[seqno] = request
        if request.phase != RequestPhase.RUNNING:
            self._violate(
                "phase-consistency",
                f"request #{seqno} is {request.phase} after dequeue",
                now,
                op="dequeue",
                tenant=request.tenant_id,
                seqno=seqno,
            )
        self._after("dequeue", now, request.tenant_id)
        return request

    def dequeue_batch(self, thread_ids: Sequence[int], now: float) -> List[Request]:
        """Batched dispatch, validated per item: route through this
        proxy's :meth:`dequeue` so every invariant check runs for every
        dispatch (the inner scheduler's fused fast path would bypass
        them via ``__getattr__`` delegation).  Semantically identical to
        the inner batch call -- ``dequeue_batch`` is pinned
        request-for-request to sequential dequeues."""
        batch: List[Request] = []
        for thread_id in thread_ids:
            request = self.dequeue(thread_id, now)
            if request is None:
                break
            batch.append(request)
        return batch

    def refresh(self, request: Request, usage: float, now: float) -> None:
        if request.seqno not in self._running:
            self._violate(
                "no-lost-requests",
                f"refresh for request #{request.seqno} that is not running",
                now,
                op="refresh",
                tenant=request.tenant_id,
                seqno=request.seqno,
            )
        self._inner.refresh(request, usage, now)
        if request.credit < -_EPS:
            self._violate(
                "charge-reconciliation",
                f"request #{request.seqno} has negative credit {request.credit}",
                now,
                op="refresh",
                tenant=request.tenant_id,
                seqno=request.seqno,
            )
        self._after("refresh", now, request.tenant_id)

    def complete(self, request: Request, usage: float, now: float) -> None:
        seqno = request.seqno
        tracked = seqno in self._running
        stale = request.phase == RequestPhase.CANCELLED
        if not tracked and not stale:
            self._violate(
                "no-lost-requests",
                f"complete for request #{seqno} that is not running",
                now,
                op="complete",
                tenant=request.tenant_id,
                seqno=seqno,
            )
        self._inner.complete(request, usage, now)
        if request.phase == RequestPhase.DONE:
            self._running.pop(seqno, None)
            if self._is_vt and abs(request.reported_usage - request.cost) > _EPS * max(
                1.0, request.cost
            ):
                self._violate(
                    "charge-reconciliation",
                    f"request #{seqno} completed with reported usage "
                    f"{request.reported_usage} != cost {request.cost}",
                    now,
                    op="complete",
                    tenant=request.tenant_id,
                    seqno=seqno,
                )
        self._after("complete", now, request.tenant_id)

    def cancel(self, request: Request, now: float) -> bool:
        cancelled = self._inner.cancel(request, now)
        seqno = request.seqno
        if cancelled:
            if self._queued.pop(seqno, None) is None and self._running.pop(
                seqno, None
            ) is None:
                self._violate(
                    "no-lost-requests",
                    f"cancel acknowledged untracked request #{seqno}",
                    now,
                    op="cancel",
                    tenant=request.tenant_id,
                    seqno=seqno,
                )
            if request.phase != RequestPhase.CANCELLED:
                self._violate(
                    "phase-consistency",
                    f"request #{seqno} is {request.phase} after acknowledged cancel",
                    now,
                    op="cancel",
                    tenant=request.tenant_id,
                    seqno=seqno,
                )
        self._after("cancel", now, request.tenant_id)
        return cancelled

    # -- checks -----------------------------------------------------------------

    def _after(self, op: str, now: float, tenant: Optional[str]) -> None:
        self._ops += 1
        inner = self._inner
        if inner.backlog != len(self._queued):
            self._violate(
                "backlog-consistency",
                f"scheduler backlog {inner.backlog} != {len(self._queued)} "
                "tracked queued requests",
                now,
                op=op,
                tenant=tenant,
            )
        if self._is_vt:
            vt = inner.virtual_clock.value
            if op == "cancel":
                # A cancel refund may retract WF2Q+ jump elevation the
                # surviving backlog no longer supports; re-base here.
                self._last_vt = vt
            elif vt < self._last_vt - _EPS * max(1.0, abs(self._last_vt)):
                self._violate(
                    "vt-monotonic",
                    f"virtual time moved backwards: {vt} < {self._last_vt}",
                    now,
                    op=op,
                    tenant=tenant,
                    vt=vt,
                )
            self._last_vt = max(self._last_vt, vt)
        if self._ops % self._audit_interval == 0:
            self._audit(op, now)

    def _audit(self, op: str, now: float) -> None:
        """Full structural audit: per-tenant queues vs the lifecycle
        mirror, active flags vs occupancy (O(N + backlog))."""
        inner = self._inner
        total = 0
        for state in inner.tenants().values():
            total += len(state.queue)
            for queued in state.queue:
                if queued.seqno not in self._queued:
                    self._violate(
                        "no-lost-requests",
                        f"request #{queued.seqno} sits in {state.tenant_id}'s "
                        "queue but is not tracked as queued",
                        now,
                        op=op,
                        tenant=state.tenant_id,
                        seqno=queued.seqno,
                    )
            if self._is_vt and state.active != bool(state.queue or state.running):
                self._violate(
                    "backlog-consistency",
                    f"tenant {state.tenant_id} active={state.active} with "
                    f"{len(state.queue)} queued / {state.running} running",
                    now,
                    op=op,
                    tenant=state.tenant_id,
                )
        # FIFO keeps its backlog in one global queue, not the per-tenant
        # queues; its own backlog counter was already checked per call.
        if total and total != inner.backlog:
            self._violate(
                "backlog-consistency",
                f"sum of tenant queues {total} != scheduler backlog "
                f"{inner.backlog}",
                now,
                op=op,
            )

    def _violate(self, code: str, message: str, now: float, **context: Any) -> None:
        record = {"code": code, "message": message, "t": now, **context}
        self.violations.append(record)
        trace = self._trace
        if trace is not None:
            vt = context.get("vt")
            trace.invariant(
                now,
                code,
                vt=vt,
                tenant=context.get("tenant"),
                message=message,
                op=context.get("op"),
                seqno=context.get("seqno"),
            )
        if self._strict:
            raise InvariantViolation(code, message, context={**context, "t": now})
