"""Gini index of instantaneous scheduler fairness.

The paper uses the Gini index (Shi, Sethu & Kanhere [49]) as "an
instantaneous measure of scheduler fairness across all tenants" (§6,
Figure 9a bottom).  At each sampling instant we compute the Gini
coefficient of the per-tenant service delivered during the preceding
interval, normalized by tenant weight: 0 means perfectly equal service,
values toward 1 mean service concentrated on few tenants -- i.e. bursty,
unfair scheduling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..units import Scalar

__all__ = ["gini_index"]


def gini_index(values: Sequence[float]) -> Scalar:
    """Gini coefficient of non-negative values.

    Uses the standard mean-absolute-difference formulation via the
    sorted-rank identity:

        G = (2 * sum_i i*x_(i)) / (n * sum_i x_(i)) - (n + 1) / n

    Returns 0.0 for empty input or all-zero values (an idle interval is
    trivially fair).
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return 0.0
    if np.any(array < 0):
        raise ValueError("gini_index requires non-negative values")
    total = array.sum()
    if total <= 0:
        return 0.0
    array = np.sort(array)
    n = array.size
    ranks = np.arange(1, n + 1)
    value = (2.0 * np.dot(ranks, array)) / (n * total) - (n + 1.0) / n
    # Clamp float round-off (denormal inputs can push the identity a few
    # ulps outside the mathematical range [0, (n-1)/n]).
    return float(min(max(value, 0.0), 1.0))
