"""Metrics collector: hooks a server and samples everything the paper plots.

One collector per simulation run.  It

* mirrors every arrival into a fluid :class:`~repro.simulator.gps.GPSReference`
  of rate ``N * r`` (the paper's reference system, §6);
* samples cumulative per-tenant service (actual and GPS) every
  ``sample_interval`` seconds (paper: 100 ms);
* records per-request latencies at completion;
* records the dispatch log -- ``(thread, tenant, api, cost, start, end)``
  -- from which the thread-occupancy plots (Figures 8b/9b/11b) are
  regenerated;
* samples the Gini index of interval service across active tenants.

Collection modes (DESIGN.md §13)
--------------------------------
``mode="exact"`` (the default) keeps every sample: a list entry per
completed request and per dispatch.  Memory grows linearly with run
length, which caps runs well short of the 10M-request scale target.

``mode="streaming"`` swaps the per-request lists for bounded sketches
from :mod:`repro.metrics.streaming`: a mergeable quantile digest plus
Welford moments per tenant for latencies, Welford moments per tenant for
service lag, a decimating bounded service curve, a seeded reservoir for
Gini samples, and a ring buffer for the dispatch log.  ``result()`` then
returns a :class:`StreamingRunMetrics` with the same query surface
(latency percentiles within the sketch error bound -- benchmarked <1%
at p50/p99 -- lag sigma exact up to float round-off).  ``partial()``
exposes the picklable sketch state so :mod:`repro.parallel` can merge
windowed partials from a time-sharded run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.request import Request
from ..errors import ConfigurationError
from ..units import Cost, Duration, Rate, Scalar, SimTime
from ..simulator.gps import GPSReference
from ..simulator.server import ThreadPoolServer
from .gini import gini_index
from .latency import LatencyStats, latency_stats
from .service import ServiceSeries, ServiceTracker
from .streaming import MetricsPartial

__all__ = [
    "DispatchRecord",
    "MetricsCollector",
    "RunMetrics",
    "StreamingRunMetrics",
    "COLLECTOR_MODES",
]

COLLECTOR_MODES = ("exact", "streaming")


@dataclass(frozen=True)
class DispatchRecord:
    """One executed request in the occupancy log."""

    thread_id: int
    tenant_id: str
    api: str
    cost: Cost
    start: SimTime
    end: SimTime


class MetricsCollector:
    """Attach to a server *before* starting sources; read results after.

    Warmup semantics
    ----------------
    ``warmup`` (seconds) excludes the estimator-settling transient from
    every *statistic* while keeping raw logs complete:

    * **latencies** -- a request contributes only if it *completes* at
      ``t >= warmup`` (requests in flight across the boundary count,
      since their tail lies in the measured window);
    * **service / GPS samples** and **Gini samples** -- the periodic
      sampler only records at sample times ``t >= warmup`` (the GPS
      reference itself still integrates from t=0, so post-warmup lag
      values are exact, not restarted).  The last pre-warmup sample is
      retained as the series *baseline* so the first post-warmup
      ``service_rate`` entry measures one interval of work, not the
      whole pre-warmup cumulative;
    * **dispatch log** -- never warmup-filtered: the occupancy figures
      (8b/9b/11b) and Chrome-trace exports need the full timeline.

    ``record_dispatches=False`` drops the dispatch log entirely (the
    occupancy plots become unavailable but long runs save the memory).

    ``mode="streaming"`` collects into bounded sketches instead of
    per-request lists -- see the module docstring.  The sketch knobs
    (``compression``, ``series_capacity``, ``reservoir_capacity``,
    ``dispatch_capacity``) are ignored in exact mode.
    """

    def __init__(
        self,
        server: ThreadPoolServer,
        sample_interval: Duration = 0.1,
        record_dispatches: bool = True,
        track_gps: bool = True,
        warmup: Duration = 0.0,
        mode: str = "exact",
        seed: int = 0,
        compression: int = 200,
        series_capacity: int = 1024,
        reservoir_capacity: int = 4096,
        dispatch_capacity: int = 65536,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be positive, got {sample_interval}")
        if mode not in COLLECTOR_MODES:
            raise ConfigurationError(
                f"mode must be one of {COLLECTOR_MODES}, got {mode!r}"
            )
        self._server = server
        self._sim = server.sim
        self._interval: Duration = float(sample_interval)
        self._warmup: Duration = float(warmup)
        self._mode = mode
        self._tracker = ServiceTracker()
        self._gps: Optional[GPSReference] = (
            GPSReference(server.num_threads * server.rate) if track_gps else None
        )
        self._latencies: Dict[str, List[Duration]] = {}
        self._dispatch_log: List[DispatchRecord] = []
        self._record_dispatches = bool(record_dispatches)
        self._gini_times: List[SimTime] = []
        self._gini_values: List[Scalar] = []
        self._seen_tenants: set[str] = set()
        self._previous_service: Dict[str, Cost] = {}
        self._sample_index = 0
        self._observed_samples = 0
        self._trace = None
        self._auditor = None
        self._partial: Optional[MetricsPartial] = None
        if mode == "streaming":
            self._partial = MetricsPartial(
                sample_interval=self._interval,
                seed=seed,
                compression=compression,
                series_capacity=series_capacity,
                reservoir_capacity=reservoir_capacity,
                dispatch_capacity=dispatch_capacity,
            )
        server.on_submit(self._on_submit)
        server.on_dispatch(self._on_dispatch)
        server.on_complete(self._on_complete)
        # Samples sit on the absolute grid epoch + k * interval
        # (multiplication, not accumulation) so no float drift pushes
        # the final sample past the experiment's `until` horizon.  The
        # epoch anchors the grid at attach time: `at(self._interval)`
        # read a duration as an absolute timestamp, so attaching a
        # collector to a simulation already past t=interval scheduled
        # its first sample in the past and raised SimulationError.
        self._epoch: SimTime = self._sim.now
        self._sim.at(self._epoch + self._interval, self._sample)

    @property
    def mode(self) -> str:
        return self._mode

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer`; the collector contributes
        sampling counters (and, in streaming mode, sketch-size gauges)
        to its registry."""
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )

    def attach_auditor(self, auditor) -> None:
        """Attach a :class:`repro.obs.audit.FairnessAuditor`; it receives
        every periodic per-tenant (actual, GPS) service sample --
        warmup-unfiltered, in both exact and streaming modes -- through
        ``on_sample``."""
        self._auditor = auditor

    # -- listeners ------------------------------------------------------------

    def _on_submit(self, request: Request) -> None:
        self._seen_tenants.add(request.tenant_id)
        if self._gps is not None:
            self._gps.arrive(
                request.tenant_id, request.cost, self._sim.now, request.weight
            )

    def _on_dispatch(self, request: Request) -> None:
        # Record at dispatch (with the deterministic simulated end time)
        # rather than completion, so requests still running when the
        # simulation stops -- e.g. multi-second expensive requests --
        # appear in the occupancy log.
        if self._record_dispatches:
            record = DispatchRecord(
                thread_id=request.thread_id,
                tenant_id=request.tenant_id,
                api=request.api,
                cost=request.cost,
                start=request.dispatch_time,
                end=request.dispatch_time + request.cost / self._server.rate,
            )
            if self._partial is not None:
                self._partial.observe_dispatch(record)
            else:
                self._dispatch_log.append(record)

    def _on_complete(self, request: Request) -> None:
        if request.completion_time >= self._warmup:
            if self._partial is not None:
                self._partial.observe_latency(
                    request.tenant_id, request.latency
                )
            else:
                self._latencies.setdefault(request.tenant_id, []).append(
                    request.latency
                )

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        now = self._sim.now
        actual: Dict[str, Cost] = {}
        gps: Dict[str, Cost] = {}
        if self._gps is not None:
            self._gps.advance(now)
        for tenant in self._seen_tenants:
            actual[tenant] = self._server.service_received(tenant)
            if self._gps is not None:
                gps[tenant] = self._gps.service(tenant)
        if self._auditor is not None:
            self._auditor.on_sample(now, actual, gps)
        if now >= self._warmup:
            if self._observed_samples == 0 and self._previous_service:
                # First post-warmup sample: the previous (pre-warmup)
                # sample anchors service_rate differencing.
                if self._partial is not None:
                    self._partial.baselines = dict(self._previous_service)
                else:
                    self._tracker.set_baselines(self._previous_service)
            gini = self._interval_gini(actual)
            if self._partial is not None:
                self._partial.observe_sample(now, actual, gps)
                if gini is not None:
                    self._partial.observe_gini(now, gini)
            else:
                self._tracker.observe(now, actual, gps)
                if gini is not None:
                    self._gini_times.append(now)
                    self._gini_values.append(gini)
            self._observed_samples += 1
        elif self._trace is not None:
            self._trace.registry.counter("collector.warmup_samples_skipped").inc()
        if self._trace is not None:
            self._trace.registry.counter("collector.samples").inc()
            if self._partial is not None:
                for name, value in self._partial.sketch_sizes().items():
                    self._trace.registry.gauge(f"collector.sketch.{name}").set(
                        value
                    )
        self._previous_service = actual
        self._sample_index += 1
        self._sim.at(
            self._epoch + (self._sample_index + 1) * self._interval,
            self._sample,
        )

    def _interval_gini(self, actual: Dict[str, Cost]) -> Optional[Scalar]:
        """Gini index of weight-normalized interval service across the
        currently active tenants; None when no tenant is active."""
        scheduler = self._server.scheduler
        deltas = []
        for tenant_id, state in scheduler.tenants().items():
            if not state.active:
                continue
            delta = actual.get(tenant_id, 0.0) - self._previous_service.get(
                tenant_id, 0.0
            )
            deltas.append(max(0.0, delta) / state.weight)
        if not deltas:
            return None
        return gini_index(deltas)

    # -- results ------------------------------------------------------------------

    def partial(self) -> MetricsPartial:
        """The run's picklable sketch state (streaming mode only) --
        the mergeable unit of the time-sharded parallel runner."""
        if self._partial is None:
            raise ConfigurationError(
                "partial() requires MetricsCollector(mode='streaming'); "
                "exact mode has no mergeable sketch state"
            )
        return self._partial

    def result(self) -> "RunMetrics":
        """Freeze collected data (call after the simulation finishes)."""
        if self._partial is not None:
            return StreamingRunMetrics(self._partial)
        return RunMetrics(
            tracker=self._tracker,
            latencies={k: list(v) for k, v in self._latencies.items()},
            dispatch_log=list(self._dispatch_log),
            gini_times=np.asarray(self._gini_times),
            gini_values=np.asarray(self._gini_values),
            sample_interval=self._interval,
        )


class _DispatchLogMetrics:
    """Occupancy analyses shared by the exact and streaming results.

    Subclasses provide ``dispatch_log`` (a time-ordered sequence of
    :class:`DispatchRecord`).
    """

    dispatch_log: Sequence[DispatchRecord]

    def write_chrome_trace(self, path, trace_events=(), process_name="repro"):
        """Export the dispatch log as a Chrome/Perfetto trace -- the
        interactive version of the occupancy figures (8b/9b/11b).
        Requires the run to have kept ``record_dispatches=True``."""
        from ..obs.exporters import write_chrome_trace

        return write_chrome_trace(
            self.dispatch_log,
            path,
            trace_events=trace_events,
            process_name=process_name,
        )

    def occupancy_matrix(
        self, t_start: SimTime, t_end: SimTime, resolution: Duration, num_threads: int
    ) -> np.ndarray:
        """Request-cost-per-thread-per-time grid for the Figure 8b/9b/11b
        occupancy plots: entry ``[i, k]`` is the cost of the request
        running on thread ``i`` during time bin ``k`` (0 when idle).

        When two dispatches on the same thread share a boundary bin, the
        record covering the larger fraction of the bin wins (ties go to
        the later start) -- the bin shows the request that actually
        occupied most of it, not whichever record iterated last.
        """
        bins = max(1, int(round((t_end - t_start) / resolution)))
        grid = np.zeros((num_threads, bins))
        # Winning overlap per cell; records arrive in dispatch-time
        # order, so >= breaks exact-overlap ties toward the later start.
        best = np.zeros((num_threads, bins))
        for record in self.dispatch_log:
            if record.end <= t_start or record.start >= t_end:
                continue
            first = max(0, int((record.start - t_start) / resolution))
            last = min(bins, int(np.ceil((record.end - t_start) / resolution)))
            if last <= first:
                continue
            edges = t_start + np.arange(first, last + 1) * resolution
            overlap = np.minimum(record.end, edges[1:]) - np.maximum(
                record.start, edges[:-1]
            )
            row = slice(first, last)
            wins = overlap >= best[record.thread_id, row]
            grid[record.thread_id, row] = np.where(
                wins, record.cost, grid[record.thread_id, row]
            )
            best[record.thread_id, row] = np.maximum(
                best[record.thread_id, row], overlap
            )
        return grid

    def thread_cost_partition(self, num_threads: int) -> np.ndarray:
        """Mean log10 cost of requests executed per thread.

        Under 2DFQ this is decreasing in thread index (low-index threads
        run expensive requests); under WFQ/WF2Q it is flat -- the
        quantitative version of the occupancy figures.
        """
        sums = np.zeros(num_threads)
        counts = np.zeros(num_threads)
        for record in self.dispatch_log:
            duration = record.end - record.start
            sums[record.thread_id] += np.log10(max(record.cost, 1e-12)) * duration
            counts[record.thread_id] += duration
        with np.errstate(invalid="ignore"):
            means = sums / counts
        return means


class RunMetrics(_DispatchLogMetrics):
    """Everything measured during one scheduler run (exact mode)."""

    def __init__(
        self,
        tracker: ServiceTracker,
        latencies: Dict[str, List[Duration]],
        dispatch_log: List[DispatchRecord],
        gini_times: np.ndarray,
        gini_values: np.ndarray,
        sample_interval: Duration,
    ) -> None:
        self._tracker = tracker
        self.latencies = latencies
        self.dispatch_log = dispatch_log
        self.gini_times = gini_times
        self.gini_values = gini_values
        self.sample_interval = sample_interval

    # -- service -------------------------------------------------------------

    def tenants(self) -> List[str]:
        return self._tracker.tenants()

    def service_series(self, tenant_id: str) -> ServiceSeries:
        return self._tracker.series(tenant_id)

    def lag_sigma(
        self, tenant_id: str, reference_rate: Optional[Rate] = None
    ) -> float:
        """sigma of service lag for one tenant (seconds if rate given)."""
        return self.service_series(tenant_id).lag_sigma(reference_rate)

    def lag_sigmas(
        self,
        tenants: Optional[Sequence[str]] = None,
        reference_rate: Optional[Rate] = None,
    ) -> Dict[str, float]:
        """sigma(lag) per tenant -- the CDF input of Figures 10/12."""
        names = list(tenants) if tenants is not None else self.tenants()
        return {t: self.lag_sigma(t, reference_rate) for t in names}

    # -- latency --------------------------------------------------------------

    def latency_stats(self, tenant_id: str) -> LatencyStats:
        return latency_stats(self.latencies.get(tenant_id, []))

    def latency_p99(self, tenant_id: str) -> Duration:
        return self.latency_stats(tenant_id).p99


class StreamingRunMetrics(_DispatchLogMetrics):
    """Run metrics backed by bounded sketches (streaming mode).

    Same query surface as :class:`RunMetrics`, different fidelity
    contract (DESIGN.md §13):

    * latency percentiles come from the per-tenant quantile digest
      (<1% p50/p99 error by the benchmark gate); count/mean/max exact;
    * ``lag_sigma`` comes from Welford moments over every sample --
      exact up to float round-off, *not* sketched;
    * ``service_series`` is the decimated bounded curve: correct shape,
      possibly coarser than ``sample_interval``;
    * ``gini_values``/``gini_times`` are the reservoir sample -- exact
      (all samples, time-ordered) while the run fits the reservoir;
      ``gini_mean`` is exact always;
    * ``dispatch_log`` holds the most recent ``dispatch_capacity``
      records.
    """

    def __init__(self, partial: MetricsPartial) -> None:
        #: The underlying mergeable sketch state; time-sharded runs
        #: merge these across shards before wrapping the result.
        self.partial = partial
        self.sample_interval = partial.sample_interval
        items = partial.gini.items()
        self.gini_times = np.asarray([t for t, _ in items])
        self.gini_values = np.asarray([v for _, v in items])
        self.dispatch_log = partial.dispatches.items()

    # -- service -------------------------------------------------------------

    def tenants(self) -> List[str]:
        return sorted(set(self.partial.series.actual) | set(self.partial.lag_moments))

    def service_series(self, tenant_id: str) -> ServiceSeries:
        times, actual, gps = self.partial.series.columns(tenant_id)
        return ServiceSeries(
            tenant_id=tenant_id,
            times=times,
            actual=actual,
            gps=gps,
            baseline=self.partial.baselines.get(tenant_id, 0.0),
        )

    def lag_sigma(
        self, tenant_id: str, reference_rate: Optional[Rate] = None
    ) -> float:
        """sigma of service lag from the full-resolution Welford
        moments (exact up to float round-off)."""
        moments = self.partial.lag_moments.get(tenant_id)
        if moments is None or moments.count == 0:
            return 0.0
        sigma = moments.std
        if reference_rate is not None:
            sigma /= reference_rate
        return float(sigma)

    def lag_sigmas(
        self,
        tenants: Optional[Sequence[str]] = None,
        reference_rate: Optional[Rate] = None,
    ) -> Dict[str, float]:
        names = list(tenants) if tenants is not None else self.tenants()
        return {t: self.lag_sigma(t, reference_rate) for t in names}

    # -- latency --------------------------------------------------------------

    def latency_stats(self, tenant_id: str) -> LatencyStats:
        digest = self.partial.latency_digests.get(tenant_id)
        moments = self.partial.latency_moments.get(tenant_id)
        if digest is None or moments is None or digest.empty:
            return latency_stats([])
        return LatencyStats(
            count=int(moments.count),
            mean=float(moments.mean),
            p1=float(digest.quantile(0.01)),
            p50=float(digest.quantile(0.50)),
            p99=float(digest.quantile(0.99)),
            maximum=float(moments.maximum),
        )

    def latency_p99(self, tenant_id: str) -> Duration:
        return self.latency_stats(tenant_id).p99

    # -- streaming extras ------------------------------------------------------

    @property
    def gini_mean(self) -> float:
        """Exact mean of every Gini sample (not just the reservoir)."""
        return float(self.partial.gini_moments.mean)

    def sketch_sizes(self) -> Dict[str, int]:
        """Stored-point counts per sketch family (memory audit)."""
        return self.partial.sketch_sizes()
