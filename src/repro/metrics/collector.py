"""Metrics collector: hooks a server and samples everything the paper plots.

One collector per simulation run.  It

* mirrors every arrival into a fluid :class:`~repro.simulator.gps.GPSReference`
  of rate ``N * r`` (the paper's reference system, §6);
* samples cumulative per-tenant service (actual and GPS) every
  ``sample_interval`` seconds (paper: 100 ms);
* records per-request latencies at completion;
* records the dispatch log -- ``(thread, tenant, api, cost, start, end)``
  -- from which the thread-occupancy plots (Figures 8b/9b/11b) are
  regenerated;
* samples the Gini index of interval service across active tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.request import Request
from ..simulator.gps import GPSReference
from ..simulator.server import ThreadPoolServer
from .gini import gini_index
from .latency import LatencyStats, latency_stats
from .service import ServiceSeries, ServiceTracker

__all__ = ["DispatchRecord", "MetricsCollector", "RunMetrics"]


@dataclass(frozen=True)
class DispatchRecord:
    """One executed request in the occupancy log."""

    thread_id: int
    tenant_id: str
    api: str
    cost: float
    start: float
    end: float


class MetricsCollector:
    """Attach to a server *before* starting sources; read results after.

    Warmup semantics
    ----------------
    ``warmup`` (seconds) excludes the estimator-settling transient from
    every *statistic* while keeping raw logs complete:

    * **latencies** -- a request contributes only if it *completes* at
      ``t >= warmup`` (requests in flight across the boundary count,
      since their tail lies in the measured window);
    * **service / GPS samples** and **Gini samples** -- the periodic
      sampler only records at sample times ``t >= warmup`` (the GPS
      reference itself still integrates from t=0, so post-warmup lag
      values are exact, not restarted);
    * **dispatch log** -- never warmup-filtered: the occupancy figures
      (8b/9b/11b) and Chrome-trace exports need the full timeline.

    ``record_dispatches=False`` drops the dispatch log entirely (the
    occupancy plots become unavailable but long runs save the memory).
    """

    def __init__(
        self,
        server: ThreadPoolServer,
        sample_interval: float = 0.1,
        record_dispatches: bool = True,
        track_gps: bool = True,
        warmup: float = 0.0,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be positive, got {sample_interval}")
        self._server = server
        self._sim = server.sim
        self._interval = float(sample_interval)
        self._warmup = float(warmup)
        self._tracker = ServiceTracker()
        self._gps: Optional[GPSReference] = (
            GPSReference(server.num_threads * server.rate) if track_gps else None
        )
        self._latencies: Dict[str, List[float]] = {}
        self._dispatch_log: List[DispatchRecord] = []
        self._record_dispatches = bool(record_dispatches)
        self._gini_times: List[float] = []
        self._gini_values: List[float] = []
        self._seen_tenants: set[str] = set()
        self._previous_service: Dict[str, float] = {}
        self._sample_index = 0
        self._trace = None
        server.on_submit(self._on_submit)
        server.on_dispatch(self._on_dispatch)
        server.on_complete(self._on_complete)
        # Samples sit on the absolute grid k * interval (multiplication,
        # not accumulation) so no float drift pushes the final sample
        # past the experiment's `until` horizon.
        self._sim.at(self._interval, self._sample)

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer`; the collector contributes
        sampling counters to its registry."""
        self._trace = (
            tracer if tracer is not None and tracer.enabled else None
        )

    # -- listeners ------------------------------------------------------------

    def _on_submit(self, request: Request) -> None:
        self._seen_tenants.add(request.tenant_id)
        if self._gps is not None:
            self._gps.arrive(
                request.tenant_id, request.cost, self._sim.now, request.weight
            )

    def _on_dispatch(self, request: Request) -> None:
        # Record at dispatch (with the deterministic simulated end time)
        # rather than completion, so requests still running when the
        # simulation stops -- e.g. multi-second expensive requests --
        # appear in the occupancy log.
        if self._record_dispatches:
            self._dispatch_log.append(
                DispatchRecord(
                    thread_id=request.thread_id,
                    tenant_id=request.tenant_id,
                    api=request.api,
                    cost=request.cost,
                    start=request.dispatch_time,
                    end=request.dispatch_time + request.cost / self._server.rate,
                )
            )

    def _on_complete(self, request: Request) -> None:
        if request.completion_time >= self._warmup:
            self._latencies.setdefault(request.tenant_id, []).append(
                request.latency
            )

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        now = self._sim.now
        actual: Dict[str, float] = {}
        gps: Dict[str, float] = {}
        if self._gps is not None:
            self._gps.advance(now)
        for tenant in self._seen_tenants:
            actual[tenant] = self._server.service_received(tenant)
            if self._gps is not None:
                gps[tenant] = self._gps.service(tenant)
        if now >= self._warmup:
            self._tracker.observe(now, actual, gps)
            self._sample_gini(now, actual)
        elif self._trace is not None:
            self._trace.registry.counter("collector.warmup_samples_skipped").inc()
        if self._trace is not None:
            self._trace.registry.counter("collector.samples").inc()
        self._previous_service = actual
        self._sample_index += 1
        self._sim.at((self._sample_index + 1) * self._interval, self._sample)

    def _sample_gini(self, now: float, actual: Dict[str, float]) -> None:
        scheduler = self._server.scheduler
        deltas = []
        for tenant_id, state in scheduler.tenants().items():
            if not state.active:
                continue
            delta = actual.get(tenant_id, 0.0) - self._previous_service.get(
                tenant_id, 0.0
            )
            deltas.append(max(0.0, delta) / state.weight)
        if deltas:
            self._gini_times.append(now)
            self._gini_values.append(gini_index(deltas))

    # -- results ------------------------------------------------------------------

    def result(self) -> "RunMetrics":
        """Freeze collected data (call after the simulation finishes)."""
        return RunMetrics(
            tracker=self._tracker,
            latencies={k: list(v) for k, v in self._latencies.items()},
            dispatch_log=list(self._dispatch_log),
            gini_times=np.asarray(self._gini_times),
            gini_values=np.asarray(self._gini_values),
            sample_interval=self._interval,
        )


class RunMetrics:
    """Everything measured during one scheduler run."""

    def __init__(
        self,
        tracker: ServiceTracker,
        latencies: Dict[str, List[float]],
        dispatch_log: List[DispatchRecord],
        gini_times: np.ndarray,
        gini_values: np.ndarray,
        sample_interval: float,
    ) -> None:
        self._tracker = tracker
        self.latencies = latencies
        self.dispatch_log = dispatch_log
        self.gini_times = gini_times
        self.gini_values = gini_values
        self.sample_interval = sample_interval

    # -- service -------------------------------------------------------------

    def tenants(self) -> List[str]:
        return self._tracker.tenants()

    def service_series(self, tenant_id: str) -> ServiceSeries:
        return self._tracker.series(tenant_id)

    def lag_sigma(
        self, tenant_id: str, reference_rate: Optional[float] = None
    ) -> float:
        """sigma of service lag for one tenant (seconds if rate given)."""
        return self.service_series(tenant_id).lag_sigma(reference_rate)

    def lag_sigmas(
        self,
        tenants: Optional[Sequence[str]] = None,
        reference_rate: Optional[float] = None,
    ) -> Dict[str, float]:
        """sigma(lag) per tenant -- the CDF input of Figures 10/12."""
        names = list(tenants) if tenants is not None else self.tenants()
        return {t: self.lag_sigma(t, reference_rate) for t in names}

    # -- latency --------------------------------------------------------------

    def latency_stats(self, tenant_id: str) -> LatencyStats:
        return latency_stats(self.latencies.get(tenant_id, []))

    def latency_p99(self, tenant_id: str) -> float:
        return self.latency_stats(tenant_id).p99

    # -- occupancy --------------------------------------------------------------

    def write_chrome_trace(self, path, trace_events=(), process_name="repro"):
        """Export the dispatch log as a Chrome/Perfetto trace -- the
        interactive version of the occupancy figures (8b/9b/11b).
        Requires the run to have kept ``record_dispatches=True``."""
        from ..obs.exporters import write_chrome_trace

        return write_chrome_trace(
            self.dispatch_log,
            path,
            trace_events=trace_events,
            process_name=process_name,
        )

    def occupancy_matrix(
        self, t_start: float, t_end: float, resolution: float, num_threads: int
    ) -> np.ndarray:
        """Request-cost-per-thread-per-time grid for the Figure 8b/9b/11b
        occupancy plots: entry ``[i, k]`` is the cost of the request
        running on thread ``i`` during time bin ``k`` (0 when idle)."""
        bins = max(1, int(round((t_end - t_start) / resolution)))
        grid = np.zeros((num_threads, bins))
        for record in self.dispatch_log:
            if record.end <= t_start or record.start >= t_end:
                continue
            first = max(0, int((record.start - t_start) / resolution))
            last = min(bins, int(np.ceil((record.end - t_start) / resolution)))
            grid[record.thread_id, first:last] = record.cost
        return grid

    def thread_cost_partition(self, num_threads: int) -> np.ndarray:
        """Mean log10 cost of requests executed per thread.

        Under 2DFQ this is decreasing in thread index (low-index threads
        run expensive requests); under WFQ/WF2Q it is flat -- the
        quantitative version of the occupancy figures.
        """
        sums = np.zeros(num_threads)
        counts = np.zeros(num_threads)
        for record in self.dispatch_log:
            duration = record.end - record.start
            sums[record.thread_id] += np.log10(max(record.cost, 1e-12)) * duration
            counts[record.thread_id] += duration
        with np.errstate(invalid="ignore"):
            means = sums / counts
        return means
