"""Cross-run summaries: distribution descriptors used in figures.

Helpers for the workload-validation figures (Figure 2/3: per-API and
per-tenant cost distributions, mean-vs-CoV scatter) and for aggregating
lag/latency results across schedulers and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..units import Cost, Scalar

__all__ = ["CostSummary", "cost_summary", "coefficient_of_variation", "cdf_points"]


@dataclass(frozen=True)
class CostSummary:
    """Distribution descriptor matching the paper's violin whiskers
    (1st and 99th percentiles, Figure 2)."""

    count: int
    mean: Cost
    p1: Cost
    p50: Cost
    p99: Cost
    cov: Scalar  # coefficient of variation = stdev / mean

    def decades_of_spread(self) -> Scalar:
        """log10(p99 / p1): the orders-of-magnitude spread the paper
        quotes ("request costs span four orders of magnitude")."""
        if self.p1 <= 0:
            return float("nan")
        return float(np.log10(self.p99 / self.p1))


def cost_summary(samples: Sequence[Cost]) -> CostSummary:
    """Summarize a cost sample set."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        nan = float("nan")
        return CostSummary(0, nan, nan, nan, nan, nan)
    p1, p50, p99 = np.percentile(array, [1, 50, 99])
    mean = float(array.mean())
    cov = float(array.std() / mean) if mean > 0 else float("nan")
    return CostSummary(
        count=int(array.size), mean=mean, p1=float(p1), p50=float(p50),
        p99=float(p99), cov=cov,
    )


def coefficient_of_variation(samples: Sequence[Cost]) -> Scalar:
    """CoV = stdev / mean, the y-axis of the Figure 3 scatter."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        return float("nan")
    mean = array.mean()
    if mean <= 0:
        return float("nan")
    return float(array.std() / mean)


def cdf_points(values: Dict[str, float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a per-tenant metric (e.g. sigma(lag), Figure 10):
    returns sorted values and cumulative frequencies, NaNs dropped."""
    array = np.asarray([v for v in values.values() if not np.isnan(v)])
    array = np.sort(array)
    if array.size == 0:
        return array, array
    freq = np.arange(1, array.size + 1) / array.size
    return array, freq
