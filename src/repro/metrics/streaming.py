"""Bounded-memory streaming metric sketches (DESIGN.md §13).

The exact :class:`~repro.metrics.collector.MetricsCollector` path keeps a
Python list entry per completed request and per dispatch, which caps run
length far short of the ROADMAP's 10M-request goal.  This module provides
the constant-memory accumulators behind
``MetricsCollector(mode="streaming")``:

* :class:`StreamingMoments` -- Welford mean/variance (exact, mergeable
  via the Chan et al. parallel-update formula); powers ``lag_sigma``.
* :class:`QuantileDigest` -- a t-digest-style mergeable quantile sketch
  (buffered merging-compaction with a tail-tight weight limit); powers
  per-tenant latency percentiles.
* :class:`P2Quantile` -- the classic P² single-quantile estimator
  (Jain & Chlamtac 1985): five markers, O(1) memory, approximate merge
  by piecewise-CDF resampling.  The lighter alternative when only one
  quantile is needed.
* :class:`ReservoirSample` -- seeded Algorithm-R reservoir; exact while
  the stream fits, uniform subsample beyond; powers the Gini samples.
* :class:`RingBuffer` -- capped dispatch log keeping the most recent
  records.
* :class:`BoundedServiceSeries` -- a decimating service-curve recorder:
  when full it drops every other stored sample and doubles its stride,
  so the curve keeps its shape at a bounded point count.

:class:`MetricsPartial` packages one run's (or one time shard's) sketch
state into a picklable object with ``merge(other)``, which is what lets
:mod:`repro.parallel` fan one long run out as time shards and merge the
windowed partials back together.

Every structure here is differential-tested against the exact collector
(``tests/test_metrics_streaming.py``); the benchmark gate holds p50/p99
latency error under 1% vs exact (``benchmarks/test_bench_metrics_streaming.py``).
"""

from __future__ import annotations

import copy
import dataclasses
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..simulator.rng import make_rng
from ..units import Cost, Duration, Scalar, SimTime

__all__ = [
    "StreamingMoments",
    "QuantileDigest",
    "P2Quantile",
    "ReservoirSample",
    "RingBuffer",
    "BoundedServiceSeries",
    "MetricsPartial",
    "merge_partials",
]


class StreamingMoments:
    """Welford streaming mean/variance with exact parallel merge.

    Matches ``np.mean`` / ``np.std`` (population, ``ddof=0``) up to
    float round-off for any insertion order; ``merge`` uses the Chan et
    al. pairwise-update formula, so merging per-window partials is exact
    too (the property the time-sharded runner relies on).
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def add_zeros(self, count: int) -> None:
        """Account ``count`` zero observations in O(1) (late-tenant
        backfill: the exact tracker prepends zeros for samples taken
        before the tenant was first seen)."""
        if count <= 0:
            return
        other = StreamingMoments()
        other.count = count
        other.minimum = 0.0
        other.maximum = 0.0
        other.merge_into(self)

    def merge_into(self, target: "StreamingMoments") -> None:
        """Fold this accumulator into ``target`` (Chan et al.)."""
        if self.count == 0:
            return
        if target.count == 0:
            target.count = self.count
            target.mean = self.mean
            target.m2 = self.m2
            target.minimum = self.minimum
            target.maximum = self.maximum
            return
        total = target.count + self.count
        delta = self.mean - target.mean
        target.m2 = (
            target.m2
            + self.m2
            + delta * delta * target.count * self.count / total
        )
        target.mean += delta * self.count / total
        target.count = total
        target.minimum = min(target.minimum, self.minimum)
        target.maximum = max(target.maximum, self.maximum)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """New accumulator equal to the union of both streams."""
        merged = StreamingMoments()
        self.merge_into(merged)
        other.merge_into(merged)
        return merged

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``, matching ``np.std``)."""
        if self.count == 0:
            return 0.0
        return self.m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    def __repr__(self) -> str:
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class QuantileDigest:
    """Mergeable t-digest-style quantile sketch.

    Incoming values buffer until ``buffer_size``, then a compaction pass
    sorts centroids + buffer together and greedily re-clusters under the
    classic t-digest weight limit ``4 * total * q(1-q) / compression``.
    The limit vanishes at ``q -> 0, 1``, so tail centroids stay near
    singletons -- which is why p99 error stays well under the 1% budget
    while the centroid count stays O(compression).

    ``merge(other)`` feeds the other digest's centroids through the same
    compaction (weighted), making windowed partials combinable with the
    same error bound.
    """

    __slots__ = (
        "compression", "_means", "_weights", "_buffer",
        "_buffer_weights", "count", "minimum", "maximum",
    )

    def __init__(self, compression: int = 200) -> None:
        if compression < 20:
            raise ConfigurationError(
                f"compression must be >= 20, got {compression}"
            )
        self.compression = int(compression)
        self._means: List[float] = []
        self._weights: List[float] = []
        self._buffer: List[float] = []
        self._buffer_weights: List[float] = []
        self.count = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # -- ingestion -----------------------------------------------------------

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        self._buffer.append(float(value))
        self._buffer_weights.append(float(weight))
        self.count += weight
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._buffer) >= 4 * self.compression:
            self._compress()

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """New digest summarizing the union of both streams."""
        merged = QuantileDigest(max(self.compression, other.compression))
        for source in (self, other):
            source._compress()
            for mean, weight in zip(source._means, source._weights):
                merged._buffer.append(mean)
                merged._buffer_weights.append(weight)
            merged.count += source.count
            merged.minimum = min(merged.minimum, source.minimum)
            merged.maximum = max(merged.maximum, source.maximum)
        merged._compress()
        return merged

    def _compress(self) -> None:
        if not self._buffer and len(self._means) <= self.compression:
            return
        means = np.asarray(self._means + self._buffer)
        weights = np.asarray(self._weights + self._buffer_weights)
        self._buffer = []
        self._buffer_weights = []
        order = np.argsort(means, kind="stable")
        means = means[order]
        weights = weights[order]
        total = float(weights.sum())
        if total <= 0:
            self._means, self._weights = [], []
            return
        new_means: List[float] = []
        new_weights: List[float] = []
        acc_mean = float(means[0])
        acc_weight = float(weights[0])
        consumed = 0.0
        for mean, weight in zip(means[1:], weights[1:]):
            # Quantile midpoint of the candidate merged centroid.
            q = (consumed + (acc_weight + weight) / 2.0) / total
            limit = 4.0 * total * q * (1.0 - q) / self.compression
            if acc_weight + weight <= limit:
                acc_weight += weight
                acc_mean += (mean - acc_mean) * weight / acc_weight
            else:
                new_means.append(acc_mean)
                new_weights.append(acc_weight)
                consumed += acc_weight
                acc_mean = float(mean)
                acc_weight = float(weight)
        new_means.append(acc_mean)
        new_weights.append(acc_weight)
        self._means = new_means
        self._weights = new_weights

    # -- queries -------------------------------------------------------------

    @property
    def size(self) -> int:
        """Stored points (centroids + unbuffered), the memory gauge."""
        return len(self._means) + len(self._buffer)

    @property
    def empty(self) -> bool:
        return self.count == 0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        self._compress()
        means = self._means
        weights = self._weights
        if len(means) == 1:
            return means[0]
        # Rank convention: q * (n - 1) + 0.5 in 1-based midpoint space
        # matches np.percentile's linear interpolation exactly when every
        # centroid is a singleton (small streams never compress, so the
        # differential tests agree bit-for-bit there); for weighted
        # centroids the half-sample shift is O(1/n).
        target = q * (self.count - 1.0) + 0.5
        # Centroid midpoints in cumulative-weight space, with the true
        # min/max anchoring the extremes.
        cumulative = 0.0
        previous_value = self.minimum
        previous_position = 0.0
        for mean, weight in zip(means, weights):
            position = cumulative + weight / 2.0
            if target <= position:
                span = position - previous_position
                if span <= 0:
                    return mean
                fraction = (target - previous_position) / span
                return previous_value + (mean - previous_value) * fraction
            cumulative += weight
            previous_value = mean
            previous_position = position
        span = self.count - previous_position
        if span <= 0:
            return previous_value
        fraction = (target - previous_position) / span
        return previous_value + (self.maximum - previous_value) * fraction

    def __repr__(self) -> str:
        return (
            f"QuantileDigest(count={self.count:g}, centroids={self.size}, "
            f"compression={self.compression})"
        )


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac 1985).

    Five markers track (min, p/2, p, (1+p)/2, max); marker heights move
    by piecewise-parabolic interpolation as positions drift from their
    desired quantile ranks.  O(1) memory, no buffers -- the minimal
    streaming percentile when a full digest is overkill.

    ``merge`` is approximate: each sketch is read as a piecewise-linear
    CDF through its markers, resampled at ``resample`` evenly spaced
    quantiles weighted by its count, and the samples re-fed into a fresh
    sketch.  Use :class:`QuantileDigest` when merge fidelity matters.
    """

    __slots__ = ("p", "count", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"p must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        if self._heights:
            self._insert(float(value))
            return
        self._initial.append(float(value))
        if len(self._initial) == 5:
            self._initial.sort()
            self._heights = list(self._initial)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            p = self.p
            self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                             3.0 + 2.0 * p, 5.0]
            self._initial = []

    def _insert(self, value: float) -> None:
        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        p = self.p
        increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        for i in range(5):
            self._desired[i] += increments[i]
        # Adjust interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        term1 = step / (positions[i + 1] - positions[i - 1])
        term2 = (positions[i] - positions[i - 1] + step) * (
            heights[i + 1] - heights[i]
        ) / (positions[i + 1] - positions[i])
        term3 = (positions[i + 1] - positions[i] - step) * (
            heights[i] - heights[i - 1]
        ) / (positions[i] - positions[i - 1])
        return heights[i] + term1 * (term2 + term3)

    def _linear(self, i: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        j = i + int(step)
        return heights[i] + step * (heights[j] - heights[i]) / (
            positions[j] - positions[i]
        )

    def value(self) -> float:
        """Current estimate of the ``p``-quantile."""
        if self.count == 0:
            return float("nan")
        if self._initial:
            ordered = sorted(self._initial)
            return float(np.percentile(ordered, self.p * 100.0))
        return self._heights[2]

    def _cdf_points(self) -> Tuple[List[float], List[float]]:
        """(quantile rank, value) knots of the piecewise-linear read."""
        if self._initial:
            ordered = sorted(self._initial)
            n = len(ordered)
            if n == 1:
                return [0.0, 1.0], [ordered[0], ordered[0]]
            ranks = [i / (n - 1) for i in range(n)]
            return ranks, ordered
        total = self._positions[4]
        ranks = [(pos - 1.0) / (total - 1.0) for pos in self._positions]
        return ranks, list(self._heights)

    def merge(self, other: "P2Quantile", resample: int = 64) -> "P2Quantile":
        """Approximate union sketch by weighted CDF resampling."""
        if other.p != self.p:
            raise ConfigurationError(
                f"cannot merge P2Quantile(p={other.p}) into p={self.p}"
            )
        merged = P2Quantile(self.p)
        sources = [s for s in (self, other) if s.count > 0]
        total = sum(s.count for s in sources)
        if total == 0:
            return merged
        # Interleave weighted resamples in a deterministic round-robin so
        # neither window dominates the warm-up of the fresh sketch.
        streams: List[List[float]] = []
        for source in sources:
            ranks, values = source._cdf_points()
            share = max(5, int(round(resample * source.count / total)))
            qs = np.linspace(0.0, 1.0, share)
            streams.append(list(np.interp(qs, ranks, values)))
        while any(streams):
            for stream in streams:
                if stream:
                    merged.add(stream.pop(0))
        merged.count = total
        return merged

    def __repr__(self) -> str:
        return f"P2Quantile(p={self.p}, count={self.count}, value={self.value():.6g})"


class ReservoirSample:
    """Seeded Algorithm-R reservoir of (time, value) samples.

    Exact (every sample kept, in arrival order) while the stream fits in
    ``capacity``; a uniform random subsample beyond.  All randomness
    flows through :func:`repro.simulator.rng.make_rng`, so reservoirs
    are reproducible and cell-deterministic.
    """

    __slots__ = ("capacity", "seen", "_items", "_rng")

    def __init__(self, capacity: int, seed: int, *key: str) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.seen = 0
        self._items: List[Tuple[float, float]] = []
        self._rng = make_rng(seed, "reservoir", *key)

    def add(self, time: float, value: float) -> None:
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append((time, value))
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._items[slot] = (time, value)

    @property
    def exact(self) -> bool:
        """True while no sample has been evicted."""
        return self.seen <= self.capacity

    @property
    def size(self) -> int:
        return len(self._items)

    def items(self) -> List[Tuple[float, float]]:
        """Samples sorted by time."""
        return sorted(self._items)

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Union reservoir; draws from each side proportionally to its
        stream length (exact concatenation while everything fits)."""
        merged = ReservoirSample(max(self.capacity, other.capacity), 0)
        # The merged reservoir's own rng continues from a copy of self's
        # stream: deterministic across repeated merges, and the inputs
        # stay untouched.
        merged._rng = copy.deepcopy(self._rng)
        merged.seen = self.seen + other.seen
        combined = self._items + other._items
        if len(combined) <= merged.capacity:
            merged._items = list(combined)
            return merged
        weight_self = self.seen / merged.seen
        take_self = int(round(merged.capacity * weight_self))
        take_self = min(max(take_self, merged.capacity - len(other._items)),
                        len(self._items))
        take_other = merged.capacity - take_self
        pick_self = merged._rng.choice(
            len(self._items), size=take_self, replace=False
        )
        pick_other = merged._rng.choice(
            len(other._items), size=take_other, replace=False
        )
        merged._items = [self._items[i] for i in sorted(pick_self)] + [
            other._items[i] for i in sorted(pick_other)
        ]
        return merged

    def __repr__(self) -> str:
        return (
            f"ReservoirSample(size={self.size}/{self.capacity}, "
            f"seen={self.seen})"
        )


class RingBuffer:
    """Capped append-only log keeping the most recent ``capacity`` items."""

    __slots__ = ("capacity", "total", "_items", "_next")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.total = 0
        self._items: List[Any] = []
        self._next = 0

    def append(self, item: Any) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._next] = item
            self._next = (self._next + 1) % self.capacity
        self.total += 1

    @property
    def dropped(self) -> int:
        return self.total - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> List[Any]:
        """Retained items, oldest first."""
        if len(self._items) < self.capacity:
            return list(self._items)
        return self._items[self._next:] + self._items[: self._next]

    def merge(self, other: "RingBuffer") -> "RingBuffer":
        """Union keeping the most recent items (``other`` is the later
        window)."""
        merged = RingBuffer(max(self.capacity, other.capacity))
        for item in self.items():
            merged.append(item)
        for item in other.items():
            merged.append(item)
        merged.total = self.total + other.total
        return merged


class BoundedServiceSeries:
    """Decimating recorder of per-tenant cumulative service curves.

    Stores at most ``capacity`` sample instants: when full, every other
    stored sample is dropped and the recording stride doubles, so the
    curve's shape survives at half resolution.  Late tenants are
    backfilled with zeros, mirroring the exact
    :class:`~repro.metrics.service.ServiceTracker` semantics.
    """

    __slots__ = ("capacity", "stride", "_counter", "times", "actual", "gps")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 8:
            raise ConfigurationError(f"capacity must be >= 8, got {capacity}")
        self.capacity = int(capacity)
        self.stride = 1
        self._counter = 0
        self.times: List[SimTime] = []
        self.actual: Dict[str, List[Cost]] = {}
        self.gps: Dict[str, List[Cost]] = {}

    def observe(
        self, time: SimTime, actual: Dict[str, Cost], gps: Dict[str, Cost]
    ) -> None:
        self._counter += 1
        if (self._counter - 1) % self.stride != 0:
            return
        index = len(self.times)
        self.times.append(time)
        for store, values in ((self.actual, actual), (self.gps, gps)):
            for tenant, value in values.items():
                column = store.setdefault(tenant, [0.0] * index)
                if len(column) < index:
                    pad = column[-1] if column else 0.0
                    column.extend([pad] * (index - len(column)))
                column.append(value)
        if len(self.times) >= self.capacity:
            self._decimate()

    def _decimate(self) -> None:
        # Keep odd indices: the most recent sample always survives.
        self.times = self.times[1::2]
        for store in (self.actual, self.gps):
            for tenant in store:
                store[tenant] = store[tenant][1::2]
        self.stride *= 2

    @property
    def size(self) -> int:
        return len(self.times)

    def tenants(self) -> List[str]:
        return sorted(self.actual)

    def columns(self, tenant_id: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, actual, gps) arrays for one tenant, padded like the
        exact tracker (trailing gaps carry the last value)."""
        n = len(self.times)

        def column(store: Dict[str, List[Cost]]) -> np.ndarray:
            values = store.get(tenant_id, [])
            if len(values) < n:
                pad = values[-1] if values else 0.0
                values = values + [pad] * (n - len(values))
            return np.asarray(values)

        return np.asarray(self.times), column(self.actual), column(self.gps)

    def shift_times(self, offset: Duration) -> None:
        self.times = [t + offset for t in self.times]

    def final_values(self) -> Tuple[Dict[str, Cost], Dict[str, Cost]]:
        """Last recorded cumulative (actual, gps) per tenant."""
        actual = {t: (c[-1] if c else 0.0) for t, c in self.actual.items()}
        gps = {t: (c[-1] if c else 0.0) for t, c in self.gps.items()}
        return actual, gps

    def merge(self, other: "BoundedServiceSeries") -> "BoundedServiceSeries":
        """Concatenate a later window, re-basing its cumulative curves on
        this window's final values, then re-decimate to capacity."""
        merged = BoundedServiceSeries(max(self.capacity, other.capacity))
        merged.stride = max(self.stride, other.stride)
        final_actual, final_gps = self.final_values()
        times = list(self.times)
        n_self = len(times)
        merged.times = times + list(other.times)
        for store, own, finals in (
            (merged.actual, self.actual, final_actual),
            (merged.gps, self.gps, final_gps),
        ):
            source = other.actual if store is merged.actual else other.gps
            tenants = set(own) | set(source)
            for tenant in tenants:
                head = list(own.get(tenant, []))
                if len(head) < n_self:
                    pad = head[-1] if head else 0.0
                    head.extend([pad] * (n_self - len(head)))
                offset = finals.get(tenant, 0.0)
                tail = [offset + v for v in source.get(tenant, [])]
                if len(tail) < len(other.times):
                    pad = tail[-1] if tail else offset
                    tail.extend([pad] * (len(other.times) - len(tail)))
                store[tenant] = head + tail
        merged._counter = len(merged.times)
        while len(merged.times) >= merged.capacity:
            merged._decimate()
        return merged


class MetricsPartial:
    """Picklable sketch state of one run (or one time shard) in
    streaming mode.

    ``merge(other)`` combines two consecutive windows: latency digests
    and moments merge exactly (digest: within the sketch error bound),
    service curves re-base on the earlier window's final cumulative
    values, the Gini reservoir subsamples proportionally, and the
    dispatch ring keeps the most recent records.  This is the unit the
    time-sharded parallel runner fans out and folds back together.
    """

    def __init__(
        self,
        sample_interval: Duration,
        seed: int = 0,
        compression: int = 200,
        series_capacity: int = 1024,
        reservoir_capacity: int = 4096,
        dispatch_capacity: int = 65536,
    ) -> None:
        self.sample_interval: Duration = float(sample_interval)
        self.seed = int(seed)
        self.compression = int(compression)
        self.latency_digests: Dict[str, QuantileDigest] = {}
        self.latency_moments: Dict[str, StreamingMoments] = {}
        self.lag_moments: Dict[str, StreamingMoments] = {}
        self.series = BoundedServiceSeries(series_capacity)
        self.gini = ReservoirSample(reservoir_capacity, seed, "gini")
        self.gini_moments = StreamingMoments()
        self.dispatches = RingBuffer(dispatch_capacity)
        self.baselines: Dict[str, Cost] = {}
        self.lag_samples = 0

    # -- ingestion (collector-facing) ---------------------------------------

    def observe_latency(self, tenant_id: str, latency: Duration) -> None:
        digest = self.latency_digests.get(tenant_id)
        if digest is None:
            digest = self.latency_digests[tenant_id] = QuantileDigest(
                self.compression
            )
            self.latency_moments[tenant_id] = StreamingMoments()
        digest.add(latency)
        self.latency_moments[tenant_id].add(latency)

    def observe_sample(
        self, now: SimTime, actual: Dict[str, Cost], gps: Dict[str, Cost]
    ) -> None:
        for tenant, value in actual.items():
            moments = self.lag_moments.get(tenant)
            if moments is None:
                moments = self.lag_moments[tenant] = StreamingMoments()
                # Late tenant: the exact series backfills zeros for the
                # samples recorded before it was first seen.
                moments.add_zeros(self.lag_samples)
            moments.add(value - gps.get(tenant, 0.0))
        self.lag_samples += 1
        self.series.observe(now, actual, gps)

    def observe_gini(self, now: SimTime, value: Scalar) -> None:
        self.gini.add(now, value)
        self.gini_moments.add(value)

    def observe_dispatch(self, record: Any) -> None:
        self.dispatches.append(record)

    # -- windowed composition ------------------------------------------------

    def shift_times(self, offset: Duration) -> None:
        """Move every recorded timestamp by ``offset`` (shard -> global
        clock): sample times, Gini sample times, and dispatch-record
        start/end times."""
        self.series.shift_times(offset)
        self.gini._items = [(t + offset, v) for t, v in self.gini._items]
        shifted = RingBuffer(self.dispatches.capacity)
        shifted.total = self.dispatches.dropped
        for record in self.dispatches.items():
            shifted.append(
                dataclasses.replace(
                    record,
                    start=record.start + offset,
                    end=record.end + offset,
                )
            )
        self.dispatches = shifted

    def merge(self, other: "MetricsPartial") -> "MetricsPartial":
        """Combine with a *later* window's partial."""
        merged = MetricsPartial(
            sample_interval=self.sample_interval,
            seed=self.seed,
            compression=max(self.compression, other.compression),
            series_capacity=self.series.capacity,
            reservoir_capacity=self.gini.capacity,
            dispatch_capacity=self.dispatches.capacity,
        )
        tenants = set(self.latency_digests) | set(other.latency_digests)
        for tenant in tenants:
            mine = self.latency_digests.get(tenant)
            theirs = other.latency_digests.get(tenant)
            if mine is not None and theirs is not None:
                merged.latency_digests[tenant] = mine.merge(theirs)
                merged.latency_moments[tenant] = self.latency_moments[
                    tenant
                ].merge(other.latency_moments[tenant])
            else:
                source = self if mine is not None else other
                merged.latency_digests[tenant] = source.latency_digests[tenant]
                merged.latency_moments[tenant] = source.latency_moments[tenant]
        for tenant in set(self.lag_moments) | set(other.lag_moments):
            left = self.lag_moments.get(tenant)
            right = other.lag_moments.get(tenant)
            if left is None:
                left = StreamingMoments()
                left.add_zeros(self.lag_samples)
            if right is None:
                right = StreamingMoments()
                right.add_zeros(other.lag_samples)
            merged.lag_moments[tenant] = left.merge(right)
        merged.lag_samples = self.lag_samples + other.lag_samples
        merged.series = self.series.merge(other.series)
        merged.gini = self.gini.merge(other.gini)
        merged.gini_moments = self.gini_moments.merge(other.gini_moments)
        merged.dispatches = self.dispatches.merge(other.dispatches)
        merged.baselines = dict(self.baselines)
        return merged

    # -- gauges ---------------------------------------------------------------

    def sketch_sizes(self) -> Dict[str, int]:
        """Current stored-point counts, exported as obs gauges."""
        return {
            "latency_centroids": sum(
                d.size for d in self.latency_digests.values()
            ),
            "series_points": self.series.size,
            "gini_reservoir": self.gini.size,
            "dispatch_ring": len(self.dispatches),
            "tenants": len(self.lag_moments),
        }


def merge_partials(partials: Sequence[MetricsPartial]) -> MetricsPartial:
    """Fold consecutive windowed partials (earliest first) into one."""
    if not partials:
        raise ConfigurationError("merge_partials needs at least one partial")
    merged: Optional[MetricsPartial] = None
    for partial in partials:
        merged = partial if merged is None else merged.merge(partial)
    return merged  # type: ignore[return-value]  -- loop ran at least once
