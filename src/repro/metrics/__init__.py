"""Metrics used in the paper's evaluation (§6):

* service rate and **service lag** against a fluid GPS reference;
* **service lag variation** sigma(lag) -- the burstiness headline;
* request **latency** percentiles (focus on the 99th);
* the **Gini index** of instantaneous fairness.
"""

from .collector import DispatchRecord, MetricsCollector, RunMetrics
from .gini import gini_index
from .latency import LatencyStats, latency_stats, percentile_table, speedup
from .service import ServiceSeries, ServiceTracker
from .summary import (
    CostSummary,
    cdf_points,
    coefficient_of_variation,
    cost_summary,
)

__all__ = [
    "MetricsCollector",
    "RunMetrics",
    "DispatchRecord",
    "ServiceSeries",
    "ServiceTracker",
    "gini_index",
    "LatencyStats",
    "latency_stats",
    "percentile_table",
    "speedup",
    "CostSummary",
    "cost_summary",
    "coefficient_of_variation",
    "cdf_points",
]
