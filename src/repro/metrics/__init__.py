"""Metrics used in the paper's evaluation (§6):

* service rate and **service lag** against a fluid GPS reference;
* **service lag variation** sigma(lag) -- the burstiness headline;
* request **latency** percentiles (focus on the 99th);
* the **Gini index** of instantaneous fairness.

Two collection modes: ``exact`` (every sample kept, the default) and
``streaming`` (bounded-memory sketches from :mod:`repro.metrics.streaming`
for 10M-request-scale runs) -- DESIGN.md §13.
"""

from .collector import (
    COLLECTOR_MODES,
    DispatchRecord,
    MetricsCollector,
    RunMetrics,
    StreamingRunMetrics,
)
from .gini import gini_index
from .latency import LatencyStats, latency_stats, percentile_table, speedup
from .service import ServiceSeries, ServiceTracker
from .streaming import (
    BoundedServiceSeries,
    MetricsPartial,
    P2Quantile,
    QuantileDigest,
    ReservoirSample,
    RingBuffer,
    StreamingMoments,
    merge_partials,
)
from .summary import (
    CostSummary,
    cdf_points,
    coefficient_of_variation,
    cost_summary,
)

__all__ = [
    "MetricsCollector",
    "RunMetrics",
    "StreamingRunMetrics",
    "COLLECTOR_MODES",
    "DispatchRecord",
    "MetricsPartial",
    "merge_partials",
    "StreamingMoments",
    "QuantileDigest",
    "P2Quantile",
    "ReservoirSample",
    "RingBuffer",
    "BoundedServiceSeries",
    "ServiceSeries",
    "ServiceTracker",
    "gini_index",
    "LatencyStats",
    "latency_stats",
    "percentile_table",
    "speedup",
    "CostSummary",
    "cost_summary",
    "coefficient_of_variation",
    "cdf_points",
]
