"""Latency statistics.

The paper reports per-tenant latency distributions with 1st/99th
percentile whiskers (Figure 12) and focuses on the 99th percentile for
the speedup suite (Figure 13).  This module provides the percentile and
distribution helpers over raw per-request latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..units import Duration, Scalar

__all__ = ["LatencyStats", "latency_stats", "speedup", "percentile_table"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set (seconds)."""

    count: int
    mean: Duration
    p1: Duration
    p50: Duration
    p99: Duration
    maximum: Duration

    @property
    def empty(self) -> bool:
        return self.count == 0


_EMPTY = LatencyStats(count=0, mean=float("nan"), p1=float("nan"),
                      p50=float("nan"), p99=float("nan"), maximum=float("nan"))


def latency_stats(samples: Sequence[Duration]) -> LatencyStats:
    """Compute the paper's latency summary for one tenant."""
    if len(samples) == 0:
        return _EMPTY
    array = np.asarray(samples, dtype=float)
    p1, p50, p99 = np.percentile(array, [1, 50, 99])
    return LatencyStats(
        count=int(array.size),
        mean=float(array.mean()),
        p1=float(p1),
        p50=float(p50),
        p99=float(p99),
        maximum=float(array.max()),
    )


def speedup(baseline: Duration, improved: Duration) -> Scalar:
    """The paper's speedup convention (§6.2.2): how much faster the
    improved scheduler's latency is relative to the baseline's.

    Expressed as a positive factor when improved < baseline and a
    negative factor when improved > baseline (Figure 13 plots "-100x ..
    1000x" with a sign change at parity), matching e.g. "T1's 99th
    percentile latency was 3.3ms under 2DFQ^E and 4.5ms under WFQ^E,
    giving 2DFQ^E a speedup of 1.4x".
    """
    if improved <= 0 or baseline <= 0 or np.isnan(improved) or np.isnan(baseline):
        return float("nan")
    ratio = baseline / improved
    if ratio >= 1.0:
        return ratio
    return -1.0 / ratio


def percentile_table(
    latencies: Dict[str, Sequence[Duration]], percentile: Scalar = 99.0
) -> Dict[str, Duration]:
    """Per-tenant latency percentile, NaN for tenants with no samples."""
    out: Dict[str, Duration] = {}
    for tenant, samples in latencies.items():
        if len(samples) == 0:
            out[tenant] = float("nan")
        else:
            out[tenant] = float(np.percentile(np.asarray(samples), percentile))
    return out
