"""Service curves and derived series (service rate, service lag).

Definitions follow paper §6:

* **service received** ``W_f(0, t)`` -- cumulative cost units delivered
  to tenant ``f`` (running requests count partially);
* **service rate** -- work done measured in fixed intervals (the paper
  uses 100 ms);
* **service lag** -- the deviation of actual service from the ideal GPS
  share.  We report it sign-convention "ahead is positive"
  (``actual - GPS``), matching the paper's plots where WFQ keeps small
  tenants seconds *ahead* of their fair share; converted to seconds by
  dividing by the tenant's reference fair-share rate;
* **service lag variation** ``sigma(lag)`` -- the standard deviation of
  the lag series, the paper's headline burstiness metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..units import Cost, Rate, SimTime

__all__ = ["ServiceSeries", "ServiceTracker"]


@dataclass
class ServiceSeries:
    """Sampled cumulative service of one tenant under one scheduler.

    All arrays share the index of ``times``.
    """

    tenant_id: str
    times: np.ndarray
    actual: np.ndarray  # W_sched(0, t), cost units
    gps: np.ndarray     # W_GPS(0, t), cost units
    #: Cumulative service already delivered when the first sample was
    #: taken (the last pre-warmup sample).  0.0 when the series starts
    #: at t=0; without it, ``service_rate``'s first post-warmup entry
    #: would read as the entire pre-warmup cumulative service -- a
    #: spurious spike in the Figure 8a/9a/11a series.
    baseline: Cost = 0.0

    def service_rate(self) -> np.ndarray:
        """Work done per sampling interval (cost units per interval),
        the quantity plotted in Figures 8a/9a/11a."""
        return np.diff(self.actual, prepend=self.baseline)

    def lag_units(self) -> np.ndarray:
        """Service lag in cost units; positive = ahead of GPS."""
        return self.actual - self.gps

    def lag_seconds(self, reference_rate: Rate) -> np.ndarray:
        """Service lag in seconds of fair-share service.

        ``reference_rate`` is the tenant's nominal GPS rate in cost
        units per second (``capacity * phi_f / sum(phi)`` for the
        experiment's steady-state tenant population).
        """
        if reference_rate <= 0:
            raise ValueError(f"reference_rate must be positive, got {reference_rate}")
        return self.lag_units() / reference_rate

    def lag_sigma(self, reference_rate: Optional[Rate] = None) -> float:
        """Standard deviation of service lag -- the burstiness metric.

        In seconds when ``reference_rate`` is given, else in cost units.
        """
        lag = self.lag_units()
        if reference_rate is not None:
            lag = lag / reference_rate
        if lag.size == 0:
            return 0.0
        return float(np.std(lag))


class ServiceTracker:
    """Accumulates sampled service values during a run, then freezes
    them into :class:`ServiceSeries` objects."""

    def __init__(self) -> None:
        self._times: List[SimTime] = []
        self._actual: Dict[str, List[Cost]] = {}
        self._gps: Dict[str, List[Cost]] = {}
        self._baselines: Dict[str, Cost] = {}

    def set_baselines(self, actual: Dict[str, Cost]) -> None:
        """Record the cumulative service delivered *before* the first
        observed sample (warmup runs): the collector passes the last
        pre-warmup sample here so ``service_rate`` differences the first
        post-warmup sample against it instead of against zero."""
        self._baselines = dict(actual)

    def observe(
        self, time: SimTime, actual: Dict[str, Cost], gps: Dict[str, Cost]
    ) -> None:
        """Record one sample.  Tenants appearing mid-run are backfilled
        with zero service for earlier samples."""
        index = len(self._times)
        self._times.append(time)
        for tenant, value in actual.items():
            column = self._actual.setdefault(tenant, [0.0] * index)
            if len(column) < index:
                column.extend([column[-1] if column else 0.0] * (index - len(column)))
            column.append(value)
        for tenant, value in gps.items():
            column = self._gps.setdefault(tenant, [0.0] * index)
            if len(column) < index:
                column.extend([column[-1] if column else 0.0] * (index - len(column)))
            column.append(value)

    def tenants(self) -> List[str]:
        return sorted(self._actual)

    def series(self, tenant_id: str) -> ServiceSeries:
        """Freeze the samples of one tenant into a series."""
        times = np.asarray(self._times)
        n = times.size

        def column(data: Dict[str, List[Cost]]) -> np.ndarray:
            values = data.get(tenant_id, [])
            if len(values) < n:
                pad_value = values[-1] if values else 0.0
                values = values + [pad_value] * (n - len(values))
            return np.asarray(values)

        return ServiceSeries(
            tenant_id=tenant_id,
            times=times,
            actual=column(self._actual),
            gps=column(self._gps),
            baseline=self._baselines.get(tenant_id, 0.0),
        )
