"""Parallel experiment engine with a content-addressed run cache.

Three pieces (DESIGN.md §10):

* :mod:`repro.parallel.spec` -- picklable simulation *cells*
  (:class:`RunSpec`) and the canonical JSON encoding their cache keys
  hash;
* :mod:`repro.parallel.cache` -- :class:`RunCache`, an on-disk
  content-addressed store keyed by
  ``sha256(canonical spec + repro version + source digest)``;
* :mod:`repro.parallel.engine` -- :func:`run_cells`, the
  ``ProcessPoolExecutor`` fan-out whose index-ordered merge makes
  ``jobs=N`` output bit-identical to serial, and
  :func:`execution_context`, the block-scoped jobs/cache defaults the
  figures CLI and benchmarks use.

Quickstart::

    from repro.parallel import RunCache, execution_context
    from repro.experiments import run_suite

    with execution_context(jobs=4, cache=RunCache("runcache/")):
        result = run_suite(params)   # cells fan out; repeats are free
"""

from .cache import RunCache, source_digest
from .engine import (
    CellFailure,
    ExecutionContext,
    current_execution,
    execution_context,
    run_cells,
)
from .shard import TimeShardSpec, run_time_sharded, slice_trace
from .spec import RunSpec, canonicalize

__all__ = [
    "RunSpec",
    "RunCache",
    "TimeShardSpec",
    "canonicalize",
    "source_digest",
    "CellFailure",
    "ExecutionContext",
    "execution_context",
    "current_execution",
    "run_cells",
    "run_time_sharded",
    "slice_trace",
]
