"""Time-sharded execution of one long run (DESIGN.md §13).

A single 10M-request simulation is hours of serial work, but an
open-loop workload is a pure replay of a pre-materialized trace -- so
the run can be *sharded in time*: slice the trace into ``N`` consecutive
windows, simulate each window independently with the streaming
collector, and fold the resulting :class:`~repro.metrics.streaming.MetricsPartial`
objects back together.  Each shard is an ordinary picklable cell
(:class:`TimeShardSpec`), so the fan-out rides the existing
:func:`repro.parallel.run_cells` pool/cache machinery and inherits its
determinism contract.

Approximation, stated plainly: shard boundaries cut queues.  Work
queued-but-unfinished when a shard's window closes is dropped rather
than carried into the next shard, and every shard after the first
starts with an idle server and a fresh GPS reference.  For long shards
(boundary effects amortize as ``O(N / duration)``) the error is small
and the differential tests bound it; for *exact* results run unsharded.
Closed-loop (backlogged) specs depend on scheduler feedback, cannot be
pre-materialized, and are rejected with
:class:`~repro.errors.ConfigurationError`.

Quickstart::

    from repro.parallel import run_time_sharded

    metrics = run_time_sharded("2dfq", specs, config, num_shards=8, jobs=8)
    metrics.latency_stats("T1").p99
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily at run time to avoid package cycles
    from ..experiments.config import ExperimentConfig
    from ..metrics.collector import StreamingRunMetrics
    from ..metrics.streaming import MetricsPartial
    from ..parallel.cache import RunCache
    from ..workloads.spec import TenantSpec
    from ..workloads.trace import TraceRecord

__all__ = ["TimeShardSpec", "run_time_sharded", "slice_trace"]


def slice_trace(
    trace: Sequence["TraceRecord"],
    start: float,
    stop: float,
) -> List["TraceRecord"]:
    """Records with ``start <= time < stop``, re-based to ``time - start``.

    Times here are *trace* times (sim time x replay speed), matching the
    units of :class:`~repro.workloads.trace.TraceRecord`.
    """
    if stop <= start:
        raise ConfigurationError(
            f"empty trace window [{start}, {stop})"
        )
    return [
        dataclasses.replace(record, time=record.time - start)
        for record in trace
        if start <= record.time < stop
    ]


@dataclasses.dataclass(frozen=True)
class TimeShardSpec:
    """One time window of a long run, as an independent cell.

    ``trace`` holds only this shard's slice, already re-based to the
    shard-local clock (time 0 = window start), so a cell pickles
    proportionally to its window, not to the whole run.  ``execute()``
    runs the window with the streaming collector and returns its
    :class:`~repro.metrics.streaming.MetricsPartial` shifted back to the
    global clock -- the shape :func:`merge_partials` folds.
    """

    scheduler: str
    config: "ExperimentConfig"
    trace: Tuple["TraceRecord", ...]
    shard_index: int
    num_shards: int
    speed: float = 1.0

    def label(self) -> str:
        """Human-readable cell label (trace-session directory naming)."""
        return (
            f"{self.config.name}--{self.scheduler}"
            f"--shard{self.shard_index:03d}of{self.num_shards}"
        )

    @property
    def shard_duration(self) -> float:
        return self.config.duration / self.num_shards

    @property
    def start_time(self) -> float:
        """Window start on the global simulation clock."""
        return self.shard_index * self.shard_duration

    def execute(self) -> "MetricsPartial":
        from ..experiments.runner import run_single

        # Warmup lives entirely inside shard 0 (validated by
        # run_time_sharded); later shards measure from their first instant.
        warmup = self.config.warmup if self.shard_index == 0 else 0.0
        shard_config = dataclasses.replace(
            self.config,
            name=self.label(),
            duration=self.shard_duration,
            warmup=warmup,
            metrics_mode="streaming",
        )
        metrics = run_single(
            self.scheduler,
            [],
            shard_config,
            trace=list(self.trace),
            speed=self.speed,
        )
        partial = metrics.partial
        partial.shift_times(self.start_time)
        return partial


def run_time_sharded(
    scheduler_name: str,
    specs: Sequence["TenantSpec"],
    config: "ExperimentConfig",
    num_shards: int,
    trace: Optional[Sequence["TraceRecord"]] = None,
    speed: float = 1.0,
    jobs: Optional[int] = None,
    cache: Optional["RunCache"] = None,
) -> "StreamingRunMetrics":
    """Run one scheduler over one long workload as ``num_shards``
    consecutive time windows, merged into a single
    :class:`~repro.metrics.collector.StreamingRunMetrics`.

    The workload must be fully open-loop (pre-materializable): the trace
    is generated once (or taken from ``trace``, in trace-time units),
    sliced into equal windows, and each window fans out through
    :func:`repro.parallel.run_cells` -- so ``jobs``/``cache`` behave
    exactly as they do for independent runs.  ``config.warmup`` must fit
    inside the first shard.  See the module docstring for the boundary
    approximation this makes.
    """
    from ..parallel.engine import run_cells
    from ..metrics.collector import StreamingRunMetrics
    from ..metrics.streaming import merge_partials
    from ..workloads.arrivals import OpenLoopProcess
    from ..workloads.trace import generate_trace

    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    closed = [
        spec.tenant_id
        for spec in specs
        if not isinstance(spec.arrivals, OpenLoopProcess)
    ]
    if closed:
        raise ConfigurationError(
            f"time sharding requires open-loop specs; closed-loop "
            f"tenant(s) {closed} depend on scheduler feedback and cannot "
            "be sliced into independent windows"
        )
    shard_duration = config.duration / num_shards
    if config.warmup >= shard_duration:
        raise ConfigurationError(
            f"warmup ({config.warmup}s) must fit inside the first shard "
            f"({shard_duration}s); use fewer shards or less warmup"
        )
    if trace is None:
        trace = generate_trace(
            list(specs), config.duration * speed, seed=config.seed
        )
    cells = [
        TimeShardSpec(
            scheduler=scheduler_name,
            config=config,
            trace=tuple(
                slice_trace(
                    trace,
                    index * shard_duration * speed,
                    (index + 1) * shard_duration * speed,
                )
            ),
            shard_index=index,
            num_shards=num_shards,
            speed=speed,
        )
        for index in range(num_shards)
    ]
    partials = run_cells(cells, jobs=jobs, cache=cache)
    return StreamingRunMetrics(merge_partials(partials))
