"""On-disk content-addressed cache of simulation results.

``python -m repro.figures`` recomputes identical seeded runs on every
invocation; the suite behind Figure 13 re-runs hundreds of deterministic
cells whenever one parameter moves.  Because every cell is a pure
function of its spec (see :mod:`repro.parallel.spec`), its result can be
stored on disk under a key derived purely from *content*:

    key = sha256(canonical-JSON(cell) + repro.__version__ + source digest)

Cache-invalidation rules (DESIGN.md §10):

* any field of the cell changes -- schedulers, tenant specs, trace,
  seed, duration, estimator params -- the canonical JSON changes;
* the installed ``repro`` version changes;
* any ``.py`` source file of the ``repro`` package changes (the *source
  digest* hashes every module, so a scheduler bug-fix invalidates every
  cached result computed with the buggy code).

Entries are pickle files named by their key, written atomically
(temp file + ``os.replace``) so concurrent writers -- two figure
invocations sharing one cache directory -- can never expose a torn
entry.  A corrupt or unreadable entry is treated as a miss and
overwritten, never trusted.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import __version__
from .spec import canonicalize

__all__ = ["RunCache", "source_digest"]

#: Sentinel distinguishing "no entry" from a cached ``None``.
_MISS = object()


@functools.lru_cache(maxsize=1)
def source_digest() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Computed once per process; any source edit therefore invalidates all
    cache keys, which keeps cached results honest across development.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class RunCache:
    """Content-addressed store of cell results under one directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys -----------------------------------------------------------------

    def key_for(self, cell: Any) -> str:
        """Stable hex key of a cell (see module docstring for the rules)."""
        canonical = cell.canonical() if hasattr(cell, "canonical") else canonicalize(cell)
        payload = json.dumps(
            {
                "cell": canonical,
                "repro": __version__,
                "source": source_digest(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- storage ----------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached result for ``key``, or the module ``_MISS`` sentinel.

        Use :meth:`lookup` for the ``(found, value)`` view.  Unreadable
        entries count as misses.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return _MISS
        self.hits += 1
        return value

    def lookup(self, key: str) -> tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss."""
        value = self.get(key)
        if value is _MISS:
            return False, None
        return True, value

    def put(self, key: str, result: Any) -> Path:
        """Store a result atomically; concurrent writers are safe."""
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- observation -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def stats(self) -> Dict[str, int]:
        """JSON-ready hit/miss/store counters plus entries on disk."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self),
        }

    def __repr__(self) -> str:
        return (
            f"RunCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )


def describe_cache(cache: Optional[RunCache]) -> str:
    """One-line summary for CLI output (empty string when no cache)."""
    if cache is None:
        return ""
    return (
        f"run cache: {cache.hits} hit(s), {cache.misses} miss(es), "
        f"{cache.stores} stored under {cache.directory}"
    )
