"""Process-pool execution engine for independent simulation cells.

The paper's headline evaluation aggregates hundreds of independent
seeded simulations (the Figure 13 suite alone is experiments x
schedulers cells).  Every cell is a pure function of its picklable spec
(:mod:`repro.parallel.spec`), so the engine can fan cells out over a
``concurrent.futures.ProcessPoolExecutor`` and merge results **by cell
index**: output with ``jobs=N`` is bit-identical to serial execution
for any ``N``, regardless of completion order.

Layered on top is the content-addressed :class:`~repro.parallel.cache.RunCache`:
cells whose key is already stored are never executed, which turns warm
figure regeneration into pure deserialization.

Trace-session semantics (DESIGN.md §10)
---------------------------------------
Tracing and multi-process execution do not mix: a
:class:`~repro.obs.session.TraceSession` is process-global state whose
artifacts are written by the run it observes.  The contract is:

* ``jobs > 1`` while a trace session is active raises
  :class:`~repro.errors.ConfigurationError` (the figures CLI surfaces
  this as a ``--trace`` / ``--jobs`` usage error up front);
* pool workers always start with tracing *disabled* -- the worker
  initializer clears any session inherited through ``fork``, so a
  worker can never write trace artifacts or attach tracers;
* serial execution (``jobs=1``) under a session traces exactly as
  before, and a cache hit under a session is recorded as a
  manifest-only run directory so provenance stays honest (the result
  was *not* recomputed; the manifest says so and names the cache key).

Use :func:`execution_context` to set jobs/cache once for a whole block
(the figures CLI wraps every figure in it), or pass ``jobs=`` /
``cache=`` explicitly to :func:`run_cells` and the experiment entry
points that forward to it.
"""

from __future__ import annotations

import contextlib
import dataclasses
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs.session import clear_session, current_session
from .cache import RunCache

__all__ = [
    "ExecutionContext",
    "execution_context",
    "current_execution",
    "run_cells",
]


@dataclasses.dataclass(frozen=True)
class ExecutionContext:
    """Engine defaults consulted by :func:`run_cells` when the caller
    does not pass ``jobs`` / ``cache`` explicitly."""

    jobs: int = 1
    cache: Optional[RunCache] = None


_DEFAULT = ExecutionContext()
_ACTIVE: ExecutionContext = _DEFAULT


def current_execution() -> ExecutionContext:
    """The active execution context (defaults: serial, no cache)."""
    return _ACTIVE


@contextlib.contextmanager
def execution_context(
    jobs: int = 1, cache: Optional[RunCache] = None
) -> Iterator[ExecutionContext]:
    """Set engine defaults for the duration of the block.

    The experiment entry points (``run_comparison``, ``run_suite``, and
    everything built on them) consult the active context, so wrapping a
    whole figure -- as ``python -m repro.figures --jobs N --cache DIR``
    does -- parallelizes and caches every run inside it without
    threading parameters through each experiment signature.
    """
    global _ACTIVE
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    previous = _ACTIVE
    _ACTIVE = ExecutionContext(jobs=int(jobs), cache=cache)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def _worker_init() -> None:
    """Pool-worker initializer: force tracing off in the worker.

    Workers inherit the parent's module globals under the ``fork``
    start method; an inherited :class:`TraceSession` would make workers
    write trace artifacts concurrently.  DESIGN.md §10: tracing is
    disabled in workers, period.
    """
    clear_session()


def _run_cell(cell: Any) -> Any:
    """Execute one cell in a pool worker (module-level for pickling)."""
    clear_session()  # belt and braces alongside the initializer
    return cell.execute()


def run_cells(
    cells: Sequence[Any],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[Any]:
    """Execute independent cells, in parallel and/or from cache.

    Parameters
    ----------
    cells:
        Picklable objects with an ``execute()`` method (and dataclass
        fields, for cache keying) -- see :mod:`repro.parallel.spec`.
    jobs:
        Worker-process count; ``None`` consults the active
        :func:`execution_context` (default 1 = serial, in-process).
    cache:
        A :class:`RunCache`; ``None`` consults the context.

    Returns the cells' results **in cell order** -- the deterministic
    merge that makes parallel output identical to serial output.
    """
    context = current_execution()
    effective_jobs = context.jobs if jobs is None else int(jobs)
    effective_cache = context.cache if cache is None else cache
    if effective_jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {effective_jobs}")
    session = current_session()
    if session is not None and effective_jobs > 1:
        raise ConfigurationError(
            "tracing is incompatible with jobs > 1: a trace session is "
            "process-global and pool workers run with tracing disabled; "
            "re-run with jobs=1 (CLI: drop --jobs or drop --trace)"
        )

    results: List[Any] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    pending: List[int] = []
    for index, cell in enumerate(cells):
        if effective_cache is not None:
            key = effective_cache.key_for(cell)
            keys[index] = key
            found, value = effective_cache.lookup(key)
            if found:
                results[index] = value
                if session is not None:
                    session.export_cached_run(
                        _cell_label(cell), key=key, cell=cell
                    )
                continue
        pending.append(index)

    if not pending:
        return results

    if effective_jobs == 1:
        for index in pending:
            results[index] = cells[index].execute()
    else:
        workers = min(effective_jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as executor:
            futures = {
                executor.submit(_run_cell, cells[index]): index
                for index in pending
            }
            # Fail fast: the first worker exception cancels the rest and
            # propagates, instead of silently completing a partial merge.
            wait(futures, return_when=FIRST_EXCEPTION)
            for future, index in futures.items():
                results[index] = future.result()

    if effective_cache is not None:
        for index in pending:
            key = keys[index]
            if key is not None:
                effective_cache.put(key, results[index])
    return results


def _cell_label(cell: Any) -> str:
    label = getattr(cell, "label", None)
    if callable(label):
        return str(label())
    return type(cell).__name__
