"""Process-pool execution engine for independent simulation cells.

The paper's headline evaluation aggregates hundreds of independent
seeded simulations (the Figure 13 suite alone is experiments x
schedulers cells).  Every cell is a pure function of its picklable spec
(:mod:`repro.parallel.spec`), so the engine can fan cells out over a
``concurrent.futures.ProcessPoolExecutor`` and merge results **by cell
index**: output with ``jobs=N`` is bit-identical to serial execution
for any ``N``, regardless of completion order.

Layered on top is the content-addressed :class:`~repro.parallel.cache.RunCache`:
cells whose key is already stored are never executed, which turns warm
figure regeneration into pure deserialization.

Failure policy (DESIGN.md §11)
------------------------------
A failing cell is always *attributable*: worker exceptions are wrapped
in :class:`~repro.errors.CellExecutionError` carrying the cell index
and the cell object (the original exception is ``__cause__``).  Three
degradation knobs harden long fan-outs:

* ``retries=N`` -- re-execute a failed cell up to N more times before
  giving up (transient failures; deterministic cells fail fast anyway);
* ``timeout=T`` -- a cell running longer than T wall-clock seconds is
  abandoned (``jobs > 1`` only: a hung serial cell cannot be preempted
  from within its own process).  Timeouts are not retried -- a stuck
  cell would just wedge another worker;
* ``on_error="quarantine"`` -- instead of raising on the first failure,
  failed cells yield :class:`CellFailure` placeholders (never cached)
  while every other cell's result is still returned; under an active
  trace session each quarantined cell is recorded as a run directory
  whose ``manifest.json`` carries an ``errors`` block.

The default (``on_error="raise"``) keeps the fail-fast semantics:
first failure cancels the remaining cells and propagates.

Trace-session semantics (DESIGN.md §10)
---------------------------------------
Tracing and multi-process execution do not mix: a
:class:`~repro.obs.session.TraceSession` is process-global state whose
artifacts are written by the run it observes.  The contract is:

* ``jobs > 1`` while a trace session is active raises
  :class:`~repro.errors.ConfigurationError` (the figures CLI surfaces
  this as a ``--trace`` / ``--jobs`` usage error up front);
* pool workers always start with tracing *disabled* -- the worker
  initializer clears any session inherited through ``fork``, so a
  worker can never write trace artifacts or attach tracers;
* serial execution (``jobs=1``) under a session traces exactly as
  before, and a cache hit under a session is recorded as a
  manifest-only run directory so provenance stays honest (the result
  was *not* recomputed; the manifest says so and names the cache key).

Use :func:`execution_context` to set jobs/cache/failure policy once for
a whole block (the figures CLI wraps every figure in it), or pass the
parameters explicitly to :func:`run_cells` and the experiment entry
points that forward to it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CellExecutionError, ConfigurationError
from ..obs.session import clear_session, current_session
from .cache import RunCache

__all__ = [
    "ExecutionContext",
    "execution_context",
    "current_execution",
    "run_cells",
    "CellFailure",
]

_ON_ERROR = ("raise", "quarantine")


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """Quarantine placeholder returned for a failed cell.

    Appears in :func:`run_cells` results (``on_error="quarantine"``)
    at the failed cell's index, so downstream merges stay positional.
    Failures are never written to the run cache.
    """

    index: int
    label: str
    error_type: str
    error: str
    attempts: int

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ExecutionContext:
    """Engine defaults consulted by :func:`run_cells` when the caller
    does not pass the corresponding parameter explicitly."""

    jobs: int = 1
    cache: Optional[RunCache] = None
    timeout: Optional[float] = None
    retries: int = 0
    on_error: str = "raise"


_DEFAULT = ExecutionContext()
_ACTIVE: ExecutionContext = _DEFAULT


def current_execution() -> ExecutionContext:
    """The active execution context (defaults: serial, no cache,
    fail-fast)."""
    return _ACTIVE


@contextlib.contextmanager
def execution_context(
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_error: str = "raise",
) -> Iterator[ExecutionContext]:
    """Set engine defaults for the duration of the block.

    The experiment entry points (``run_comparison``, ``run_suite``, and
    everything built on them) consult the active context, so wrapping a
    whole figure -- as ``python -m repro.figures --jobs N --cache DIR``
    does -- parallelizes and caches every run inside it without
    threading parameters through each experiment signature.
    """
    global _ACTIVE
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    _check_policy(timeout, retries, on_error)
    previous = _ACTIVE
    _ACTIVE = ExecutionContext(
        jobs=int(jobs),
        cache=cache,
        timeout=timeout,
        retries=int(retries),
        on_error=on_error,
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def _check_policy(timeout: Optional[float], retries: int, on_error: str) -> None:
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if on_error not in _ON_ERROR:
        raise ConfigurationError(
            f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
        )


def _worker_init() -> None:
    """Pool-worker initializer: force tracing off in the worker.

    Workers inherit the parent's module globals under the ``fork``
    start method; an inherited :class:`TraceSession` would make workers
    write trace artifacts concurrently.  DESIGN.md §10: tracing is
    disabled in workers, period.
    """
    clear_session()


def _run_cell(cell: Any) -> Any:
    """Execute one cell in a pool worker (module-level for pickling)."""
    clear_session()  # belt and braces alongside the initializer
    return cell.execute()


def run_cells(
    cells: Sequence[Any],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    on_error: Optional[str] = None,
) -> List[Any]:
    """Execute independent cells, in parallel and/or from cache.

    Parameters
    ----------
    cells:
        Picklable objects with an ``execute()`` method (and dataclass
        fields, for cache keying) -- see :mod:`repro.parallel.spec`.
    jobs:
        Worker-process count; ``None`` consults the active
        :func:`execution_context` (default 1 = serial, in-process).
    cache:
        A :class:`RunCache`; ``None`` consults the context.
    timeout:
        Per-cell wall-clock limit in seconds (``jobs > 1`` only; a
        serial cell cannot be preempted from its own process).  ``None``
        consults the context (default: no limit).
    retries:
        Extra executions granted to a cell that raised; ``None``
        consults the context (default 0).  Timeouts are never retried.
    on_error:
        ``"raise"`` (default): first failure raises
        :class:`~repro.errors.CellExecutionError`.  ``"quarantine"``:
        failed cells yield :class:`CellFailure` placeholders and every
        other result is still returned.

    Returns the cells' results **in cell order** -- the deterministic
    merge that makes parallel output identical to serial output.
    """
    context = current_execution()
    effective_jobs = context.jobs if jobs is None else int(jobs)
    effective_cache = context.cache if cache is None else cache
    effective_timeout = context.timeout if timeout is None else timeout
    effective_retries = context.retries if retries is None else int(retries)
    effective_on_error = context.on_error if on_error is None else on_error
    if effective_jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {effective_jobs}")
    _check_policy(effective_timeout, effective_retries, effective_on_error)
    session = current_session()
    if session is not None and effective_jobs > 1:
        raise ConfigurationError(
            "tracing is incompatible with jobs > 1: a trace session is "
            "process-global and pool workers run with tracing disabled; "
            "re-run with jobs=1 (CLI: drop --jobs or drop --trace)"
        )

    results: List[Any] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    pending: List[int] = []
    for index, cell in enumerate(cells):
        if effective_cache is not None:
            key = effective_cache.key_for(cell)
            keys[index] = key
            found, value = effective_cache.lookup(key)
            if found:
                results[index] = value
                if session is not None:
                    session.export_cached_run(
                        _cell_label(cell), key=key, cell=cell
                    )
                continue
        pending.append(index)

    if not pending:
        return results

    failures: List[CellFailure] = []

    def fail(index: int, attempts: int, exc: BaseException) -> None:
        cell = cells[index]
        if effective_on_error == "raise":
            raise CellExecutionError(index, cell, str(exc)) from exc
        failure = CellFailure(
            index=index,
            label=_cell_label(cell),
            error_type=type(exc).__name__,
            error=str(exc),
            attempts=attempts,
        )
        results[index] = failure
        failures.append(failure)
        if session is not None:
            session.export_failed_cell(failure, cell=cell)

    if effective_jobs == 1:
        for index in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    results[index] = cells[index].execute()
                    break
                except Exception as exc:  # noqa: BLE001 -- policy boundary
                    if attempts <= effective_retries:
                        continue
                    fail(index, attempts, exc)
                    break
    else:
        _run_pool(
            cells,
            pending,
            results,
            jobs=effective_jobs,
            timeout=effective_timeout,
            retries=effective_retries,
            fail=fail,
        )

    if effective_cache is not None:
        for index in pending:
            key = keys[index]
            if key is not None and not isinstance(results[index], CellFailure):
                effective_cache.put(key, results[index])
    return results


def _run_pool(
    cells: Sequence[Any],
    pending: Sequence[int],
    results: List[Any],
    *,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    fail,
) -> None:
    """Fan pending cells over a process pool with the failure policy.

    Every in-flight future carries (cell index, attempt count, deadline).
    Completed futures either record a result, get the cell resubmitted
    (exception, retries left), or invoke the failure policy.  A future
    past its deadline is abandoned: its worker process may be wedged, so
    once any timeout fires the executor is torn down without joining and
    its worker processes are terminated.
    """
    workers = min(jobs, len(pending))
    executor = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
    timed_out = False
    inflight: Dict[Future, Tuple[int, int, Optional[float]]] = {}

    def submit(index: int, attempt: int) -> None:
        deadline = (
            # Worker timeouts are real elapsed time, not simulated time.
            time.monotonic() + timeout  # repro: ignore[RPR001]
            if timeout is not None
            else None
        )
        inflight[executor.submit(_run_cell, cells[index])] = (
            index, attempt, deadline,
        )

    try:
        for index in pending:
            submit(index, 1)
        while inflight:
            wait_for = None
            if timeout is not None:
                deadlines = [d for (_, _, d) in inflight.values() if d is not None]
                wait_for = max(
                    0.0, min(deadlines) - time.monotonic()  # repro: ignore[RPR001]
                )
            done, _ = wait(
                inflight, timeout=wait_for, return_when=FIRST_COMPLETED
            )
            for future in done:
                index, attempt, _ = inflight.pop(future)
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                elif attempt <= retries:
                    submit(index, attempt + 1)
                else:
                    fail(index, attempt, exc)
            if timeout is not None:
                now = time.monotonic()  # repro: ignore[RPR001]
                for future in list(inflight):
                    index, attempt, deadline = inflight[future]
                    if deadline is not None and now >= deadline:
                        del inflight[future]
                        future.cancel()
                        timed_out = True
                        fail(
                            index,
                            attempt,
                            TimeoutError(
                                f"cell exceeded the {timeout:g}s wall-clock limit"
                            ),
                        )
    finally:
        if timed_out:
            # Abandoned futures may be wedged inside a worker; joining
            # would inherit the hang.  Drop the pool and terminate its
            # processes (best effort -- the private map is stable across
            # supported Python versions, and the pool is discarded
            # either way).
            processes = list(
                (getattr(executor, "_processes", None) or {}).values()
            )
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except Exception:  # pragma: no cover -- teardown best effort
                    pass
        else:
            executor.shutdown(wait=True)


def _cell_label(cell: Any) -> str:
    label = getattr(cell, "label", None)
    if callable(label):
        return str(label())
    return type(cell).__name__
