"""Picklable run specifications and canonical encoding for cache keys.

A *cell* is one independent unit of simulation work: everything needed
to execute it (workload specs, experiment config, scheduler name, seed)
travels inside one picklable object, so the execution engine can hand it
to a pool worker or hash it into a content-addressed cache key without
knowing what kind of experiment it is.  The engine's contract is
structural: a cell is any picklable object with an ``execute()`` method;
cells that are dataclasses get canonical encoding (and therefore cache
keys) for free via :func:`canonicalize`.

:class:`RunSpec` is the canonical cell: one scheduler over one workload,
exactly the work :func:`repro.experiments.runner.run_single` does.  The
suite defines its own denser cell (regenerating the trace inside the
worker) in :mod:`repro.experiments.suite`.

Determinism contract
--------------------
Every cell must be a pure function of its fields: all randomness flows
through ``make_rng(seed, *key)`` component streams, so executing a cell
in a pool worker, in-process, or on another machine yields bit-identical
results.  This is what makes ``jobs=N`` output merge-identical to serial
execution and what makes cached results trustworthy.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # imported lazily at run time to avoid package cycles
    from ..experiments.config import ExperimentConfig
    from ..workloads.spec import TenantSpec
    from ..workloads.trace import TraceRecord

__all__ = ["RunSpec", "canonicalize"]


def canonicalize(obj: Any) -> Any:
    """Deterministic JSON-able encoding of a cell and its workload graph.

    Handles the whole object vocabulary of the experiment layer:
    dataclasses (``TenantSpec``, ``ExperimentConfig``, ``TraceRecord``,
    arrival processes) encode as ``{"__kind__": ClassName, **fields}``;
    plain parameter objects (the cost distributions) encode their public
    ``__dict__``; containers recurse with dict keys sorted.  Derived or
    private state (leading-underscore attributes) is excluded, so e.g. a
    ``LogNormalCost``'s cached ``_mu`` never leaks into the key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [canonicalize(v) for v in obj.tolist()]
    if isinstance(obj, dict):
        return {
            str(k): canonicalize(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [canonicalize(v) for v in items]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__kind__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            out[field.name] = canonicalize(getattr(obj, field.name))
        return out
    if hasattr(obj, "__dict__"):
        out = {"__kind__": type(obj).__name__}
        for key, value in sorted(vars(obj).items()):
            if not key.startswith("_"):
                out[key] = canonicalize(value)
        return out
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a cache key; "
        "give it public attributes or make it a dataclass"
    )


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One (scheduler x workload) simulation cell.

    Executing a ``RunSpec`` is exactly one :func:`run_single` call; the
    frozen tuple fields make the spec hashable, picklable, and safe to
    share between the parent process and pool workers (workers get a
    pickled copy, so nothing they do can leak back).
    """

    scheduler: str
    specs: Tuple[TenantSpec, ...]
    config: ExperimentConfig
    trace: Optional[Tuple[TraceRecord, ...]] = None
    speed: float = 1.0

    def label(self) -> str:
        """Human-readable run label (trace-session directory naming)."""
        return f"{self.config.name}--{self.scheduler}"

    def execute(self):
        """Run the cell; returns :class:`repro.metrics.collector.RunMetrics`."""
        from ..experiments.runner import run_single

        return run_single(
            self.scheduler,
            list(self.specs),
            self.config,
            trace=list(self.trace) if self.trace is not None else None,
            speed=self.speed,
        )
