"""Typed units vocabulary for the numeric dimensions of the reproduction.

2DFQ's bookkeeping juggles several *distinct* numeric dimensions that
are all spelled ``float`` at runtime:

========== =========================================================
dimension  meaning
========== =========================================================
SimTime    simulated wallclock seconds (``Simulation.now``)
WallTime   *host* wallclock seconds (``time.time`` and friends --
           banned from simulation logic, present only in telemetry)
VirtualTime the fair-queuing virtual axis ``V(t)`` / tags ``S_f, F_f``
Duration   a length of seconds, valid on either wall axis
Cost       request work in abstract cost units (``Request.cost``)
Rate       service capacity in cost units per second
Weight     tenant share weight ``phi_f`` (its own axis: dividing a
           Cost by a Weight yields *virtual* time, Figure 7 line 23)
========== =========================================================

Mixing them (``sim_time + virtual_time``, comparing a start tag to a
wallclock) is exactly the class of silent fidelity bug the
reproducibility literature traces discrepancies to, so the aliases
below give every dimension a *name* that both humans and the
:mod:`repro.analysis.dataflow` checker can anchor on.

The aliases are :data:`typing.Annotated` wrappers around ``float``:
zero runtime cost (with ``from __future__ import annotations`` every
annotation is a string), and type checkers treat them as plain
``float`` so the strict-mypy configuration is unaffected.  The
dataflow analyzer, by contrast, resolves the annotation *names* and
enforces the dimension algebra of DESIGN.md §17.

This module is a leaf: it may import only from :mod:`typing`, so any
package (including :mod:`repro.core`) can use it without cycles.

Alongside the aliases lives the *seed registry*: the dimension facts
the dataflow analyzer cannot read off annotations alone -- well-known
attribute names, well-known callable signatures, the host-clock
sources, and the RNG construction points.  Keeping the registry here
(rather than inside the analyzer) makes it part of the public units
vocabulary: adding a new dimensioned API means adding its signature
next to the aliases it uses.
"""

from __future__ import annotations

from typing import Annotated, Dict, FrozenSet, Optional, Tuple

__all__ = [
    "SimTime",
    "WallTime",
    "VirtualTime",
    "Duration",
    "Cost",
    "Rate",
    "Weight",
    "Scalar",
    "UNIT_NAMES",
    "ATTRIBUTE_DIMS",
    "CALLABLE_DIMS",
    "CALLABLE_PARAM_DIMS",
    "WALL_CLOCK_CALLS",
    "RNG_FACTORY_CALLS",
    "ORDERING_SENSITIVE_ATTRS",
]


class _UnitTag:
    """Marker object carried inside the ``Annotated`` aliases."""

    __slots__ = ("dimension",)

    def __init__(self, dimension: str) -> None:
        self.dimension = dimension

    def __repr__(self) -> str:
        return f"Unit({self.dimension!r})"


#: Simulated wallclock seconds -- the ``now`` threaded through every
#: scheduler hook, produced by :attr:`repro.simulator.clock.Simulation.now`.
SimTime = Annotated[float, _UnitTag("sim_time")]

#: Host wallclock seconds.  Never valid inside simulation logic; typed
#: so telemetry code (obs timers, worker deadlines) can declare what it
#: holds and the analyzer can track where it flows.
WallTime = Annotated[float, _UnitTag("wall_time")]

#: The virtual-time axis: system virtual time ``V(t)`` and the virtual
#: start/finish tags ``S_f``/``F_f`` measured on it (Figure 7).
VirtualTime = Annotated[float, _UnitTag("virtual_time")]

#: A length of seconds (latency, delay, timeout) -- compatible with
#: either wall axis but never with the virtual axis.
Duration = Annotated[float, _UnitTag("duration")]

#: Request work in abstract cost units (``Request.cost``, charges,
#: credits, usage reports).
Cost = Annotated[float, _UnitTag("cost")]

#: Service capacity in cost units per second (``thread_rate``,
#: ``Scheduler.capacity``, GPS capacity).
Rate = Annotated[float, _UnitTag("rate")]

#: Tenant weight ``phi_f``.  Deliberately its own dimension:
#: ``Cost / Weight`` is a *virtual-time* increment, the central
#: conversion of the whole algorithm.
Weight = Annotated[float, _UnitTag("weight")]

#: A pure number: ratios, fractions, speed multipliers.  Multiplying by
#: a Scalar preserves the other operand's dimension exactly.
Scalar = Annotated[float, _UnitTag("dimensionless")]


#: Annotation name -> dimension string, for the analyzer's resolver.
#: Both the bare alias name (``SimTime``) and the qualified spelling
#: (``units.SimTime``) resolve through this table.
UNIT_NAMES: Dict[str, str] = {
    "SimTime": "sim_time",
    "WallTime": "wall_time",
    "VirtualTime": "virtual_time",
    "Duration": "duration",
    "Cost": "cost",
    "Rate": "rate",
    "Weight": "weight",
    "Scalar": "dimensionless",
}


#: Well-known attribute names whose dimension is unambiguous across the
#: codebase.  The dataflow analyzer consults this table for attribute
#: reads it cannot resolve through class annotations (``request.cost``
#: on an untyped local).  Only names that are *unambiguous in this
#: codebase* belong here -- generic names like ``value`` or ``rate`` of
#: mixed meanings stay out.
ATTRIBUTE_DIMS: Dict[str, str] = {
    # simulated clock and lifecycle timestamps
    "now": "sim_time",
    "arrival_time": "sim_time",
    "dispatch_time": "sim_time",
    "completion_time": "sim_time",
    # virtual-time tags
    "start_tag": "virtual_time",
    "finish_tag": "virtual_time",
    "empty_at": "virtual_time",
    # work accounting
    "cost": "cost",
    "charged_cost": "cost",
    "credit": "cost",
    "reported_usage": "cost",
    "deficit": "cost",
    # capacity and shares
    "capacity": "rate",
    "thread_rate": "rate",
    "weight": "weight",
    "active_weight": "weight",
}


#: Well-known callable names (matched on the final attribute/function
#: name after alias resolution) -> return dimension.  These seed the
#: call summaries for APIs whose definitions carry the authoritative
#: annotation but are invoked through receivers the intraprocedural
#: analysis cannot type (``self._clock.advance(now)``).
CALLABLE_DIMS: Dict[str, str] = {
    "virtual_time": "virtual_time",
    "_adjust_virtual_time": "virtual_time",
    "_finish_tag": "virtual_time",
    "_eligibility_threshold": "virtual_time",
    "_head_estimate": "cost",
    "estimate": "cost",
    "peek": "cost",
}

#: Well-known *method* signatures, keyed on the called name, for call
#: sites whose receiver the intraprocedural analysis cannot type
#: (``self._sim.at(...)``, ``scheduler.enqueue(...)``).  Each entry
#: lists the post-``self`` parameters in order as ``(name, dimension)``
#: pairs (``None`` for undimensioned parameters), so both positional
#: and keyword arguments can be checked at the boundary.  Only names
#: with one meaning across the codebase belong here.
CALLABLE_PARAM_DIMS: Dict[str, Tuple[Tuple[str, Optional[str]], ...]] = {
    # Simulation scheduling: the event-time boundary RPR111 guards.
    "at": (("time", "sim_time"), ("fn", None)),
    "after": (("delay", "duration"), ("fn", None)),
    # The scheduler contract hooks that do NOT collide with the
    # same-named Tracer event emitters (trace.enqueue/complete/cancel
    # take `now` first, so a name-keyed fallback would mis-map their
    # arguments; those hooks are checked through real method summaries
    # at self-call sites instead).
    "dequeue": (("thread_id", None), ("now", "sim_time")),
    "dequeue_batch": (("thread_ids", None), ("now", "sim_time")),
    "refresh": (("request", None), ("usage", "cost"), ("now", "sim_time")),
}

#: Fully qualified host-clock reads (the RPR001 set).  A value produced
#: by any of these carries the *wall-clock taint* RPR111 tracks, over
#: and above its ``wall_time`` dimension.
WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        # The injectable telemetry clock: repro.obs.registry.HOST_CLOCK
        # is the one sanctioned host-clock reference, and anything drawn
        # through it is still host time and must not reach sim state.
        "HOST_CLOCK",
    }
)

#: Calls that construct or derive a seeded RNG stream.  The *result* is
#: an RNG generator; every method call on it yields an RNG-tainted
#: value for the RPR110 ordering-sensitivity check.
RNG_FACTORY_CALLS: FrozenSet[str] = frozenset(
    {
        "make_rng",
        "repro.simulator.rng.make_rng",
        "numpy.random.default_rng",
        "numpy.random.Generator",
    }
)

#: Scheduler attributes whose *ordering* drives dispatch decisions.
#: RNG-tainted values must never be written into these (RPR110): a
#: seeded draw in a tie-break silently couples the schedule to RNG
#: stream consumption order, which component reordering then changes.
ORDERING_SENSITIVE_ATTRS: FrozenSet[str] = frozenset(
    {
        "start_tag",
        "finish_tag",
        "empty_at",
        "deficit",
        "seqno",
        "sel_version",
        "version",
    }
)


# The (dimension, dimension) -> dimension tables for the analyzer's
# transfer functions live in repro.analysis.dataflow.lattice; this
# module only names the vocabulary, so importing repro.units never
# pulls in the analysis machinery.
