"""repro: a full reproduction of *2DFQ: Two-Dimensional Fair Queuing for
Multi-Tenant Cloud Services* (Mace et al., SIGCOMM 2016).

The package provides:

* :mod:`repro.core` -- the 2DFQ / 2DFQ^E schedulers and every baseline
  fair queue scheduler the paper compares against;
* :mod:`repro.estimation` -- cost estimators for scheduling with unknown
  request costs;
* :mod:`repro.simulator` -- a deterministic discrete-event thread-pool
  simulator and an exact fluid GPS reference;
* :mod:`repro.workloads` -- synthetic and Azure-Storage-like workload
  models, traces, and arrival processes;
* :mod:`repro.metrics` -- service lag, service rate, Gini index, and
  latency metrics;
* :mod:`repro.experiments` -- the harness regenerating every figure of
  the paper's evaluation.

Quickstart::

    from repro import make_scheduler, Simulation, ThreadPoolServer
    from repro.simulator import BackloggedSource

    sim = Simulation()
    scheduler = make_scheduler("2dfq", num_threads=4, thread_rate=100.0)
    server = ThreadPoolServer(sim, scheduler, num_threads=4, rate=100.0)
    BackloggedSource(server, "tenantA", lambda: ("read", 1.0)).start()
    BackloggedSource(server, "tenantB", lambda: ("scan", 50.0)).start()
    sim.run(until=10.0)
"""

from .core import (
    Request,
    Scheduler,
    TwoDFQEScheduler,
    TwoDFQScheduler,
    VirtualTimeScheduler,
    make_scheduler,
    scheduler_names,
)
from .errors import (
    ConfigurationError,
    ReproError,
    SchedulerError,
    SimulationError,
    WorkloadError,
)
from .estimation import make_estimator
from .simulator import GPSReference, Simulation, ThreadPoolServer

__version__ = "1.0.0"

__all__ = [
    "Request",
    "Scheduler",
    "VirtualTimeScheduler",
    "TwoDFQScheduler",
    "TwoDFQEScheduler",
    "make_scheduler",
    "scheduler_names",
    "make_estimator",
    "Simulation",
    "ThreadPoolServer",
    "GPSReference",
    "ReproError",
    "ConfigurationError",
    "SchedulerError",
    "SimulationError",
    "WorkloadError",
    "__version__",
]
