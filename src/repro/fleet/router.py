"""Pluggable request routers for a multi-server fleet.

A router answers one question: *which healthy server gets this
request?*  The fleet hands it the request plus the current routable
server set (sorted indices); everything else a policy needs -- backlog
depths, tenant identity, a seeded RNG -- is bound once at attach time.

Policies (the ``figfleet`` sharding ablation compares all four):

``random``
    Uniform over the healthy servers, from a seeded stream
    (:func:`~repro.simulator.rng.make_rng`): the stateless baseline.
``round-robin``
    Cycles through the healthy set; even request *counts*, oblivious
    to request cost, so expensive requests can pile onto one server.
``least-backlog``
    Joins the server with the fewest queued + running requests
    (join-shortest-queue); ties break toward the lowest index, so the
    decision is deterministic.
``tenant-hash``
    Consistent hashing of the tenant id onto a replicated ring: a
    tenant's requests concentrate on one server (cache affinity, and
    per-server fair queuing then sees the tenant's full backlog), and
    when a server dies only its ring arcs move.  Uses
    :func:`~repro.simulator.rng.stable_hash`, not the salted builtin
    ``hash``.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable, ClassVar, Dict, List, Sequence

import numpy as np

from ..core.request import Request
from ..errors import ConfigurationError
from ..simulator.rng import make_rng, stable_hash

if TYPE_CHECKING:
    from .fleet import Fleet

__all__ = [
    "Router",
    "RandomRouter",
    "RoundRobinRouter",
    "LeastBacklogRouter",
    "TenantHashRouter",
    "make_router",
    "router_names",
]


class Router:
    """Routing-policy interface.

    ``bind`` is called once when the router is attached to a fleet;
    ``route`` is called per admitted request with the *sorted* list of
    routable server indices (never empty -- the fleet rejects before
    routing when no server is healthy) and returns one of them.
    """

    name: ClassVar[str] = "abstract"

    def bind(self, fleet: "Fleet", seed: int) -> None:
        """Attach to a fleet (store what ``route`` needs)."""
        self._fleet = fleet

    def route(self, request: Request, healthy: Sequence[int]) -> int:
        raise NotImplementedError


class RandomRouter(Router):
    """Uniform random placement from a seeded stream."""

    name: ClassVar[str] = "random"

    def bind(self, fleet: "Fleet", seed: int) -> None:
        super().bind(fleet, seed)
        self._rng: np.random.Generator = make_rng(seed, "fleet", "router")

    def route(self, request: Request, healthy: Sequence[int]) -> int:
        return healthy[int(self._rng.integers(0, len(healthy)))]


class RoundRobinRouter(Router):
    """Cycle through the healthy servers in index order."""

    name: ClassVar[str] = "round-robin"

    def bind(self, fleet: "Fleet", seed: int) -> None:
        super().bind(fleet, seed)
        self._next = 0

    def route(self, request: Request, healthy: Sequence[int]) -> int:
        choice = healthy[self._next % len(healthy)]
        self._next += 1
        return choice


class LeastBacklogRouter(Router):
    """Join the server with the fewest queued + running requests.

    Ties break toward the lowest server index (deterministic); a
    crashed-but-undetected server keeps accumulating backlog, so this
    policy organically steers away from it even before the health
    monitor fires -- the figures note where that softens the contrast.
    """

    name: ClassVar[str] = "least-backlog"

    def route(self, request: Request, healthy: Sequence[int]) -> int:
        fleet = self._fleet
        best = healthy[0]
        best_depth = -1
        for index in healthy:
            server = fleet.servers[index]
            depth = server.scheduler.backlog + server.busy_workers
            if best_depth < 0 or depth < best_depth:
                best, best_depth = index, depth
        return best


class TenantHashRouter(Router):
    """Consistent hashing of tenant ids onto a replicated server ring.

    Each server owns ``replicas`` pseudo-random points on a 32-bit
    ring; a tenant maps to the first point clockwise of its own hash.
    Unhealthy servers are skipped by walking further clockwise, so a
    crash moves only the dead server's arcs (the classic consistent-
    hashing property) and every surviving tenant keeps its server.
    """

    name: ClassVar[str] = "tenant-hash"

    def __init__(self, replicas: int = 32) -> None:
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self._replicas = int(replicas)

    def bind(self, fleet: "Fleet", seed: int) -> None:
        super().bind(fleet, seed)
        points: List[tuple[int, int]] = []
        for index in range(len(fleet.servers)):
            for replica in range(self._replicas):
                points.append(
                    (stable_hash("fleet-ring", str(index), str(replica)), index)
                )
        points.sort()
        self._ring_keys = [key for key, _ in points]
        self._ring_servers = [server for _, server in points]

    def route(self, request: Request, healthy: Sequence[int]) -> int:
        routable = frozenset(healthy)
        start = bisect.bisect_left(
            self._ring_keys, stable_hash("tenant", request.tenant_id)
        )
        size = len(self._ring_servers)
        for step in range(size):
            server = self._ring_servers[(start + step) % size]
            if server in routable:
                return server
        return healthy[0]  # pragma: no cover - routable is never empty


_ROUTERS: Dict[str, Callable[[], Router]] = {
    RandomRouter.name: RandomRouter,
    RoundRobinRouter.name: RoundRobinRouter,
    LeastBacklogRouter.name: LeastBacklogRouter,
    TenantHashRouter.name: TenantHashRouter,
}


def router_names() -> List[str]:
    """Registered routing policies, sorted."""
    return sorted(_ROUTERS)


def make_router(name: str) -> Router:
    """Instantiate a routing policy by registry name."""
    factory = _ROUTERS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown router {name!r}; choose from {router_names()}"
        )
    return factory()
