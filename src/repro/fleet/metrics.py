"""Cluster-level fairness metrics for a fleet run.

Per-server fairness is not cluster fairness: a tenant hashed onto the
crashed server can be perfectly served *per surviving server* while its
cluster-wide share collapses.  The :class:`FleetCollector` therefore
compares each tenant's service **aggregated across all servers** against
one fleet-wide :class:`~repro.simulator.gps.GPSReference` whose capacity
is the *healthy* capacity of the fleet (the Balanced-Fairness-style
cluster reference): every logical admission arrives into the fluid
reference, and at every detected capacity change (crash detection,
recovery) the reference re-rates via
:meth:`~repro.simulator.gps.GPSReference.set_capacity` -- exact, because
a flow's virtual emptying time is capacity-independent.

The collector mirrors the single-server
:class:`~repro.metrics.collector.MetricsCollector` shape -- absolute-grid
sampling into a :class:`~repro.metrics.service.ServiceTracker`, latency
lists per tenant, warmup exclusion for statistics -- but listens on the
*fleet* (logical admissions and completions), so hedge duplicates and
failover re-routes never double-count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.request import Request
from ..metrics.latency import LatencyStats, latency_stats
from ..metrics.service import ServiceSeries, ServiceTracker
from ..simulator.gps import GPSReference
from .fleet import Fleet

__all__ = ["FleetCollector", "FleetRunMetrics"]


@dataclass
class FleetRunMetrics:
    """Frozen results of one fleet run."""

    tracker: ServiceTracker
    latencies: Dict[str, List[float]]
    counts: Dict[str, int]
    sample_interval: float
    capacity: float
    #: (time, healthy_capacity) step points, starting at (0, capacity).
    capacity_timeline: List[Tuple[float, float]] = field(default_factory=list)

    def tenants(self) -> List[str]:
        return self.tracker.tenants()

    def service_series(self, tenant_id: str) -> ServiceSeries:
        """Fleet-aggregated service vs the fleet-wide GPS reference."""
        return self.tracker.series(tenant_id)

    def lag_sigma(
        self, tenant_id: str, reference_rate: Optional[float] = None
    ) -> float:
        return self.service_series(tenant_id).lag_sigma(reference_rate)

    def lag_sigmas(
        self, reference_rate: Optional[float] = None
    ) -> Dict[str, float]:
        return {
            tenant: self.lag_sigma(tenant, reference_rate)
            for tenant in self.tenants()
        }

    def max_abs_lag(self, tenant_id: str) -> float:
        """Worst absolute service lag (cost units) over the run -- the
        boundedness criterion of the crash-failover acceptance test."""
        lag = self.service_series(tenant_id).lag_units()
        if lag.size == 0:
            return 0.0
        return float(max(abs(float(lag.min())), abs(float(lag.max()))))

    def latency_stats(self, tenant_id: str) -> LatencyStats:
        return latency_stats(self.latencies.get(tenant_id, []))

    def completed(self, tenant_id: Optional[str] = None) -> int:
        if tenant_id is None:
            return self.counts.get("completed", 0)
        return len(self.latencies.get(tenant_id, []))


class FleetCollector:
    """Attach to a fleet *before* starting sources; read results after."""

    def __init__(
        self,
        fleet: Fleet,
        sample_interval: float = 0.1,
        warmup: float = 0.0,
        track_gps: bool = True,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self._fleet = fleet
        self._sim = fleet.sim
        self._interval = float(sample_interval)
        self._warmup = float(warmup)
        self._tracker = ServiceTracker()
        self._gps: Optional[GPSReference] = (
            GPSReference(fleet.capacity) if track_gps else None
        )
        self._latencies: Dict[str, List[float]] = {}
        self._seen_tenants: Set[str] = set()
        self._previous_service: Dict[str, float] = {}
        self._sample_index = 0
        self._observed_samples = 0
        # Anchor the sampling grid at attach time: `at()` takes an
        # absolute timestamp, so scheduling the bare interval broke for
        # any collector attached after the clock passed t=interval.
        self._epoch = self._sim.now
        self._capacity_timeline: List[Tuple[float, float]] = [
            (self._epoch, fleet.capacity)
        ]
        fleet.on_admit(self._on_admit)
        fleet.on_complete(self._on_complete)
        fleet.on_capacity_change(self._on_capacity_change)
        self._sim.at(self._epoch + self._interval, self._sample)

    # -- listeners ---------------------------------------------------------

    def _on_admit(self, request: Request) -> None:
        self._seen_tenants.add(request.tenant_id)
        if self._gps is not None:
            self._gps.arrive(
                request.tenant_id, request.cost, self._sim.now, request.weight
            )

    def _on_complete(self, request: Request) -> None:
        if request.completion_time >= self._warmup:
            self._latencies.setdefault(request.tenant_id, []).append(
                request.latency
            )

    def _on_capacity_change(self, now: float, capacity: float) -> None:
        self._capacity_timeline.append((now, capacity))
        if self._gps is not None and capacity > 0:
            # An all-down fleet (capacity 0) keeps the last rate: the
            # fluid reference must keep a positive rate, and the lag it
            # accrues against a wedged fleet is exactly the signal.
            self._gps.set_capacity(capacity, now)

    # -- sampling ----------------------------------------------------------

    def _sample(self) -> None:
        now = self._sim.now
        if self._gps is not None:
            self._gps.advance(now)
        actual: Dict[str, float] = {}
        gps: Dict[str, float] = {}
        for tenant in self._seen_tenants:
            actual[tenant] = self._fleet.service_received(tenant)
            if self._gps is not None:
                gps[tenant] = self._gps.service(tenant)
        if now >= self._warmup:
            if self._observed_samples == 0 and self._previous_service:
                self._tracker.set_baselines(self._previous_service)
            self._tracker.observe(now, actual, gps)
            self._observed_samples += 1
        self._previous_service = actual
        self._sample_index += 1
        self._sim.at(
            self._epoch + (self._sample_index + 1) * self._interval,
            self._sample,
        )

    # -- results -----------------------------------------------------------

    def result(self) -> FleetRunMetrics:
        """Freeze the collected samples into a result object."""
        return FleetRunMetrics(
            tracker=self._tracker,
            latencies=self._latencies,
            counts=dict(self._fleet.counts),
            sample_interval=self._interval,
            capacity=self._fleet.capacity,
            capacity_timeline=list(self._capacity_timeline),
        )
