"""Sim-time health monitoring / failure detection for a fleet.

A crashed server does not announce its death; the fleet learns of it the
way a real load balancer does -- by probing.  The monitor ticks every
``interval`` simulated seconds on the same absolute grid the metrics
collector uses (tick ``k`` fires at ``k * interval``, so the cadence
never drifts no matter when work happens in between) and checks each
server's liveness.  ``failure_threshold`` consecutive missed probes mark
the server down (:meth:`Fleet.mark_down` -- routing stops, failover
drains); the first healthy probe after a restart marks it back up.

The crash-to-detection window is therefore bounded by
``interval * failure_threshold`` -- during it, the router keeps feeding
the dead server, which is precisely the stranded-work mass the failover
drain then has to recover.  The ``figfleet`` figure reports this window
alongside the fairness cost of the crash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from .fleet import Fleet

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Periodic liveness probes driving ``mark_down`` / ``mark_up``."""

    def __init__(
        self,
        fleet: "Fleet",
        interval: float = 0.05,
        failure_threshold: int = 1,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"health interval must be positive, got {interval}"
            )
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.fleet = fleet
        self.interval = float(interval)
        self.failure_threshold = int(failure_threshold)
        self.probes = 0
        self._misses: List[int] = [0] * len(fleet.servers)
        self._ticks = 0
        self._started = False
        self._epoch = 0.0

    def start(self) -> None:
        """Arm the first probe (idempotent)."""
        if self._started:
            return
        self._started = True
        # Probes sit on the grid epoch + k * interval: anchoring at the
        # start() instant keeps a monitor started mid-run from asking
        # the simulator to schedule its first probe in the past.
        self._epoch = self.fleet.sim.now
        self._schedule()

    def _schedule(self) -> None:
        self.fleet.sim.at(
            self._epoch + (self._ticks + 1) * self.interval, self._tick
        )

    def _tick(self) -> None:
        self._ticks += 1
        fleet = self.fleet
        down = fleet.down
        for index, server in enumerate(fleet.servers):
            self.probes += 1
            if server.crashed:
                self._misses[index] += 1
                if (
                    self._misses[index] >= self.failure_threshold
                    and index not in down
                ):
                    fleet.mark_down(index)
            else:
                self._misses[index] = 0
                if index in down:
                    fleet.mark_up(index)
        fleet.update_gauges()
        self._schedule()
