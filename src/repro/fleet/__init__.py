"""Fault-tolerant multi-server fleet: routing, health, failover, and
cluster-level fairness on top of the single-server simulator.

Layer map (DESIGN.md §16):

* :mod:`repro.fleet.router` -- pluggable placement policies (random,
  round-robin, least-backlog, tenant-consistent-hash);
* :mod:`repro.fleet.fleet` -- the :class:`Fleet` itself: admission
  control, hedged duplicates, crash failover with exact-refund
  re-routing, and the :class:`FailoverPolicy` retry budget;
* :mod:`repro.fleet.health` -- the sim-time failure detector bounding
  the crash-to-detection window;
* :mod:`repro.fleet.injector` -- executes the fleet-granularity faults
  (``server_crashes`` / ``server_slowdowns``) of a
  :class:`~repro.faults.plan.FaultPlan`;
* :mod:`repro.fleet.metrics` -- per-tenant service aggregated across
  servers vs a fleet-wide GPS reference (cluster fairness).
"""

from .fleet import FailoverPolicy, Fleet
from .health import HealthMonitor
from .injector import FleetInjector
from .metrics import FleetCollector, FleetRunMetrics
from .router import (
    LeastBacklogRouter,
    RandomRouter,
    RoundRobinRouter,
    Router,
    TenantHashRouter,
    make_router,
    router_names,
)

__all__ = [
    "FailoverPolicy",
    "Fleet",
    "HealthMonitor",
    "FleetInjector",
    "FleetCollector",
    "FleetRunMetrics",
    "Router",
    "RandomRouter",
    "RoundRobinRouter",
    "LeastBacklogRouter",
    "TenantHashRouter",
    "make_router",
    "router_names",
]
