"""A fault-tolerant fleet of scheduler-fronted servers.

One :class:`Fleet` groups several
:class:`~repro.simulator.server.ThreadPoolServer` instances -- each with
its *own* scheduler, all sharing one
:class:`~repro.simulator.clock.Simulation` -- behind a pluggable
:class:`~repro.fleet.router.Router`.  It satisfies the
:class:`~repro.simulator.sources.SubmitTarget` protocol, so every
workload source (traces, backlogged tenants, Poisson arrivals) drives a
fleet exactly as it drives a single server.

Robustness model (DESIGN.md §16)
--------------------------------
A server crash (:meth:`crash_server`, driven by
:class:`~repro.fleet.injector.FleetInjector`) *freezes* the process:
in-flight requests stop progressing and the scheduler queue strands.
Nothing else happens until the sim-time
:class:`~repro.fleet.health.HealthMonitor` notices the missed probes and
calls :meth:`mark_down` -- the crash-to-detection window is part of the
model, and during it the router keeps feeding the dead server.

On detection, the :class:`FailoverPolicy` drains the dead server: every
stranded request is aborted through the exact-refund ``cancel()`` path
(charged cost, credit and reported usage all return to zero, so the
re-route cannot double-charge) and re-submitted through the router after
a jittered exponential backoff, up to ``max_retries`` attempts; an
exhausted budget abandons the request back to its source.  With
``failover=None`` there is no monitor at all: the router stays oblivious
and stranded work is simply lost -- the degradation contrast the
``figfleet`` figure quantifies.

``hedge=True`` additionally clones every admitted request onto a second
server (when one exists).  The first copy to finish wins; the loser is
aborted through the same exact-refund path, so the surviving copy is
charged exactly once -- the request-cloning discipline of the tail-latency
literature, restated in scheduler-charge terms.

Admission control (``admission_limit``) bounds the *fleet-wide* queued
backlog to ``limit x healthy threads``; beyond it, submissions are
rejected and their source notified after ``reject_retry_delay`` (the
deferral breaks the same-instant resubmit loop a closed-loop source
would otherwise enter).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Union

from ..core.request import Request, RequestPhase
from ..errors import ConfigurationError
from ..faults.plan import retry_delay
from ..obs.tracer import Tracer
from ..simulator.clock import Simulation
from ..simulator.rng import make_rng
from ..simulator.server import ThreadPoolServer
from .router import Router, make_router

__all__ = ["FailoverPolicy", "Fleet"]

RequestListener = Callable[[Request], None]
CapacityListener = Callable[[float, float], None]


@dataclass(frozen=True)
class FailoverPolicy:
    """Retry budget and hedging knobs for crash failover.

    The backoff schedule is shared with the deadline-retry model
    (:func:`repro.faults.plan.retry_delay`): attempt ``k`` waits
    ``backoff * growth**k`` seconds, stretched by up to ``jitter``
    uniform fraction.
    """

    max_retries: int = 3
    backoff: float = 0.005
    growth: float = 2.0
    jitter: float = 0.1
    #: Duplicate every admitted request onto a second healthy server;
    #: first completion wins, the loser is cancelled with a full refund.
    hedge: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0 or self.growth < 1.0 or not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                "need backoff >= 0, growth >= 1, 0 <= jitter <= 1; got "
                f"backoff={self.backoff}, growth={self.growth}, "
                f"jitter={self.jitter}"
            )


class Fleet:
    """Routes requests across servers; detects crashes; fails work over.

    Parameters
    ----------
    sim:
        The shared simulation loop; every server must live in it.
    servers:
        The member :class:`ThreadPoolServer` instances (index = server id).
    router:
        A :class:`~repro.fleet.router.Router` instance or registry name.
    failover:
        The crash-failover policy, or ``None`` to disable both failover
        *and* health monitoring (the router then never learns of
        crashes).
    admission_limit:
        Reject new submissions while the fleet-wide queued backlog is at
        least ``admission_limit x healthy threads``; ``None`` disables
        admission control.
    health_interval:
        Probe period of the health monitor (seconds).
    failure_threshold:
        Consecutive missed probes before a server is marked down.
    reject_retry_delay:
        Delay before a rejected request's source is notified.
    seed:
        Seeds the router and the failover jitter streams.
    """

    def __init__(
        self,
        sim: Simulation,
        servers: Sequence[ThreadPoolServer],
        router: Union[Router, str] = "least-backlog",
        failover: Optional[FailoverPolicy] = FailoverPolicy(),
        admission_limit: Optional[float] = None,
        health_interval: float = 0.05,
        failure_threshold: int = 1,
        reject_retry_delay: float = 0.02,
        seed: int = 0,
    ) -> None:
        if not servers:
            raise ConfigurationError("a fleet needs at least one server")
        for index, server in enumerate(servers):
            if server.sim is not sim:
                raise ConfigurationError(
                    f"server {index} belongs to a different Simulation"
                )
        if admission_limit is not None and admission_limit <= 0:
            raise ConfigurationError(
                f"admission_limit must be positive, got {admission_limit}"
            )
        if reject_retry_delay < 0:
            raise ConfigurationError(
                f"reject_retry_delay must be >= 0, got {reject_retry_delay}"
            )
        self.sim = sim
        self.servers: List[ThreadPoolServer] = list(servers)
        self.router: Router = (
            make_router(router) if isinstance(router, str) else router
        )
        self.router.bind(self, seed)
        self.failover = failover
        self._admission_limit = admission_limit
        self._reject_retry_delay = float(reject_retry_delay)
        self._rng = make_rng(seed, "fleet", "failover")
        self._trace: Optional[Tracer] = None
        # Routing view: servers *detected* down.  A crashed server stays
        # routable until the health monitor notices -- that window is the
        # point of modelling detection latency.
        self._down: Set[int] = set()
        # Request tracking, keyed by seqno.
        self._live: List[Dict[int, Request]] = [{} for _ in servers]
        self._owner: Dict[int, int] = {}
        self._attempts: Dict[int, int] = {}
        self._pending_retry: Dict[int, Request] = {}
        # Hedge pairs: seqno -> sibling request (both directions); the
        # clone side is recorded in _hedge_clones for the pair's life.
        self._hedge: Dict[int, Request] = {}
        self._hedge_clones: Set[int] = set()
        self.counts: Dict[str, int] = {
            "admitted": 0,
            "rejected": 0,
            "routed": 0,
            "completed": 0,
            "abandoned": 0,
            "hedged": 0,
            "hedge_wins_clone": 0,
            "server_crashes": 0,
            "server_restores": 0,
            "detections": 0,
            "recoveries": 0,
            "failovers": 0,
            "failover_retries": 0,
        }
        self._admit_listeners: List[RequestListener] = []
        self._reject_listeners: List[RequestListener] = []
        self._complete_listeners: List[RequestListener] = []
        self._abandon_listeners: List[RequestListener] = []
        self._capacity_listeners: List[CapacityListener] = []
        for index, server in enumerate(self.servers):
            server.on_complete(partial(self._on_server_complete, index))
        self.monitor = None
        if failover is not None:
            from .health import HealthMonitor  # import cycle at module load

            self.monitor = HealthMonitor(
                self,
                interval=health_interval,
                failure_threshold=failure_threshold,
            )
            self.monitor.start()

    # -- listeners (logical requests only; hedge clones never appear) ------

    def on_admit(self, fn: RequestListener) -> None:
        """Fired once per accepted submission (not per failover retry)."""
        self._admit_listeners.append(fn)

    def on_reject(self, fn: RequestListener) -> None:
        """Fired when admission control or an empty healthy set refuses."""
        self._reject_listeners.append(fn)

    def on_complete(self, fn: RequestListener) -> None:
        """Fired once per logical completion, with the logical request
        (its ``completion_time`` reflects the winning copy)."""
        self._complete_listeners.append(fn)

    def on_abandon(self, fn: RequestListener) -> None:
        """Fired when a failover retry budget is exhausted."""
        self._abandon_listeners.append(fn)

    def on_capacity_change(self, fn: CapacityListener) -> None:
        """Fired with ``(now, healthy_capacity)`` at every detection and
        recovery -- the fleet-wide GPS reference re-rates on this."""
        self._capacity_listeners.append(fn)

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach a tracer for route/fault events and ``fleet.*`` gauges
        (the member servers and schedulers are attached separately)."""
        self._trace = tracer if tracer is not None and tracer.enabled else None

    # -- observation -------------------------------------------------------

    @property
    def capacity(self) -> float:
        """Total fleet capacity in cost units/second, up or down."""
        return sum(s.num_threads * s.rate for s in self.servers)

    @property
    def healthy_capacity(self) -> float:
        """Capacity of the servers currently routable (not marked down)."""
        return sum(
            self.servers[i].num_threads * self.servers[i].rate
            for i in self._routable()
        )

    @property
    def down(self) -> FrozenSet[int]:
        """Server indices currently marked down by the health monitor."""
        return frozenset(self._down)

    @property
    def backlog(self) -> int:
        """Queued (not running) requests fleet-wide."""
        return sum(s.scheduler.backlog for s in self.servers)

    def service_received(self, tenant_id: str) -> float:
        """Cumulative useful service across all servers -- the quantity
        cluster-level fairness compares against the fleet-wide GPS."""
        return sum(s.service_received(tenant_id) for s in self.servers)

    def pending_seqnos(self) -> Set[int]:
        """Seqnos of logical requests still in flight: live on a server
        (including frozen on a crashed one), or awaiting a failover
        retry.  A live hedge clone pins its primary's seqno as pending.
        """
        pending = set(self._owner) | set(self._pending_retry)
        for seqno in sorted(pending):
            if seqno in self._hedge_clones:
                sibling = self._hedge.get(seqno)
                if sibling is not None:
                    pending.add(sibling.seqno)
        return pending

    def update_gauges(self) -> None:
        """Refresh the ``fleet.*`` gauges (no-op without a tracer)."""
        trace = self._trace
        if trace is None:
            return
        registry = trace.registry
        registry.gauge("fleet.healthy_servers").set(len(self._routable()))
        registry.gauge("fleet.backlog").set(self.backlog)
        registry.gauge("fleet.live_requests").set(len(self._owner))
        registry.gauge("fleet.pending_retries").set(len(self._pending_retry))

    # -- ingress -----------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Admit (or reject) one logical request at the current time."""
        healthy = self._routable()
        if not healthy:
            self._reject(request, "no_healthy_servers", healthy)
            return
        if self._admission_full(healthy):
            self._reject(request, "backlog_limit", healthy)
            return
        self.counts["admitted"] += 1
        for fn in self._admit_listeners:
            fn(request)
        self._place(request, healthy)
        policy = self.failover
        if policy is not None and policy.hedge and len(healthy) > 1:
            primary_server = self._owner[request.seqno]
            alternates = [i for i in healthy if i != primary_server]
            clone = Request(
                tenant_id=request.tenant_id,
                cost=request.cost,
                api=request.api,
                weight=request.weight,
                source=None,
            )
            self._hedge[request.seqno] = clone
            self._hedge[clone.seqno] = request
            self._hedge_clones.add(clone.seqno)
            self.counts["hedged"] += 1
            self._place(clone, alternates)

    def _routable(self) -> List[int]:
        return [i for i in range(len(self.servers)) if i not in self._down]

    def _admission_full(self, healthy: List[int]) -> bool:
        if self._admission_limit is None:
            return False
        queued = sum(self.servers[i].scheduler.backlog for i in healthy)
        threads = sum(self.servers[i].num_threads for i in healthy)
        return queued >= self._admission_limit * threads

    def _place(self, request: Request, candidates: List[int]) -> None:
        choice = self.router.route(request, candidates)
        if choice not in candidates:
            raise ConfigurationError(
                f"router {self.router.name!r} chose server {choice}, "
                f"not among the routable {candidates}"
            )
        self._owner[request.seqno] = choice
        self._live[choice][request.seqno] = request
        self.counts["routed"] += 1
        trace = self._trace
        if trace is not None:
            trace.route(
                self.sim.now,
                request.tenant_id,
                seqno=request.seqno,
                server=choice,
                policy=self.router.name,
                healthy=len(candidates),
                backlog=self.backlog,
                accepted=True,
            )
        self.servers[choice].submit(request)

    def _reject(
        self, request: Request, reason: str, healthy: List[int]
    ) -> None:
        self.counts["rejected"] += 1
        trace = self._trace
        if trace is not None:
            trace.route(
                self.sim.now,
                request.tenant_id,
                seqno=request.seqno,
                server=None,
                policy=self.router.name,
                healthy=len(healthy),
                backlog=self.backlog,
                accepted=False,
                reason=reason,
            )
        for fn in self._reject_listeners:
            fn(request)
        source = request.source
        if source is not None:
            # Deferred: a same-instant notification would make a
            # closed-loop source resubmit into the identical state.
            self.sim.after(
                self._reject_retry_delay, source.on_request_complete, request
            )

    # -- completion --------------------------------------------------------

    def _on_server_complete(self, index: int, request: Request) -> None:
        if self._live[index].pop(request.seqno, None) is None:
            return  # not fleet-routed (direct server traffic)
        self._owner.pop(request.seqno, None)
        self._attempts.pop(request.seqno, None)
        logical = request
        sibling = self._hedge.pop(request.seqno, None)
        if sibling is not None:
            self._hedge.pop(sibling.seqno, None)
            winner_is_clone = request.seqno in self._hedge_clones
            self._hedge_clones.discard(request.seqno)
            self._hedge_clones.discard(sibling.seqno)
            owner = self._owner.pop(sibling.seqno, None)
            if owner is not None:
                self._live[owner].pop(sibling.seqno, None)
                self.servers[owner].abort(sibling)
            if winner_is_clone:
                self.counts["hedge_wins_clone"] += 1
                logical = sibling
                logical.completion_time = request.completion_time
                source = logical.source
                if source is not None:
                    source.on_request_complete(logical)
        self.counts["completed"] += 1
        for fn in self._complete_listeners:
            fn(logical)

    # -- fault surface (driven by FleetInjector) ---------------------------

    def crash_server(self, index: int) -> None:
        """Kill server ``index`` (freeze semantics; see module docstring).

        Detection, drain and re-routing happen later, through the health
        monitor -- never here."""
        self.servers[index].crash()
        self.counts["server_crashes"] += 1
        trace = self._trace
        if trace is not None:
            trace.fault(self.sim.now, "server_crash", server=index)

    def restore_server(self, index: int) -> None:
        """Bring server ``index`` back; the monitor re-admits it to the
        routable set on its next probe."""
        self.servers[index].restore()
        self.counts["server_restores"] += 1
        trace = self._trace
        if trace is not None:
            trace.fault(self.sim.now, "server_restore", server=index)

    def set_server_speed(self, index: int, factor: float) -> None:
        """Scale every worker of one server (ServerSlowdown windows)."""
        server = self.servers[index]
        for worker in server.workers:
            server.set_worker_speed(worker.index, factor)

    def abort(self, request: Request) -> bool:
        """Abort a fleet-routed request wherever it currently lives
        (fleet-level deadline expiry).  Returns ``False`` if unknown."""
        owner = self._owner.pop(request.seqno, None)
        was_pending = self._pending_retry.pop(request.seqno, None) is not None
        self._attempts.pop(request.seqno, None)
        if owner is None:
            return was_pending
        self._live[owner].pop(request.seqno, None)
        sibling = self._hedge.pop(request.seqno, None)
        if sibling is not None:
            self._hedge.pop(sibling.seqno, None)
            self._hedge_clones.discard(request.seqno)
            self._hedge_clones.discard(sibling.seqno)
            sibling_owner = self._owner.pop(sibling.seqno, None)
            if sibling_owner is not None:
                self._live[sibling_owner].pop(sibling.seqno, None)
                self.servers[sibling_owner].abort(sibling)
        return self.servers[owner].abort(request)

    # -- health transitions (driven by HealthMonitor) ----------------------

    def mark_down(self, index: int) -> None:
        """Remove a server from the routable set and, if a failover
        policy is configured, drain its stranded requests."""
        if index in self._down:
            return
        self._down.add(index)
        self.counts["detections"] += 1
        trace = self._trace
        if trace is not None:
            trace.fault(self.sim.now, "server_down", server=index)
        self._capacity_changed()
        if self.failover is not None:
            self._drain(index)

    def mark_up(self, index: int) -> None:
        """Return a recovered server to the routable set."""
        if index not in self._down:
            return
        self._down.discard(index)
        self.counts["recoveries"] += 1
        trace = self._trace
        if trace is not None:
            trace.fault(self.sim.now, "server_up", server=index)
        self._capacity_changed()

    def _capacity_changed(self) -> None:
        now = self.sim.now
        capacity = self.healthy_capacity
        for fn in self._capacity_listeners:
            fn(now, capacity)

    # -- failover ----------------------------------------------------------

    def _drain(self, index: int) -> None:
        """Abort every request stranded on a dead server (exact refund)
        and schedule failover retries for the logical requests that no
        surviving hedge copy still carries."""
        server = self.servers[index]
        victims = list(self._live[index].values())
        self._live[index].clear()
        for request in victims:
            self._owner.pop(request.seqno, None)
            server.abort(request)
        requeue: List[Request] = []
        scheduled: Set[int] = set()
        dropped = 0
        for request in victims:
            sibling = self._hedge.get(request.seqno)
            if request.seqno in self._hedge_clones:
                # A hedge duplicate never retries on its own; when its
                # primary is also gone (stranded in an earlier crash and
                # dropped in favour of this copy), resolve the pair into
                # a plain retry of the primary.
                if sibling is not None and self._copy_dead(sibling):
                    self._unlink(request.seqno, sibling)
                    if (
                        sibling.phase == RequestPhase.CANCELLED
                        and sibling.seqno not in scheduled
                    ):
                        scheduled.add(sibling.seqno)
                        requeue.append(sibling)
                dropped += 1
                continue
            if sibling is not None:
                if not self._copy_dead(sibling):
                    dropped += 1  # the surviving clone carries it
                    continue
                self._unlink(request.seqno, sibling)
            if request.seqno not in scheduled:
                scheduled.add(request.seqno)
                requeue.append(request)
        self.counts["failovers"] += 1
        trace = self._trace
        if trace is not None:
            trace.fault(
                self.sim.now,
                "failover",
                server=index,
                drained=len(victims),
                requeued=len(requeue),
                dropped=dropped,
            )
        for request in requeue:
            self._requeue(request)

    def _copy_dead(self, request: Request) -> bool:
        return (
            self._owner.get(request.seqno) is None
            and request.seqno not in self._pending_retry
        )

    def _unlink(self, seqno: int, sibling: Request) -> None:
        self._hedge.pop(seqno, None)
        self._hedge.pop(sibling.seqno, None)
        self._hedge_clones.discard(seqno)
        self._hedge_clones.discard(sibling.seqno)

    def _requeue(self, request: Request) -> None:
        policy = self.failover
        if policy is None:  # pragma: no cover - drain implies a policy
            return
        attempts = self._attempts.get(request.seqno, 0)
        if attempts >= policy.max_retries:
            self._abandon(request)
            return
        self._attempts[request.seqno] = attempts + 1
        delay = retry_delay(
            policy.backoff,
            policy.growth,
            policy.jitter,
            attempts,
            float(self._rng.uniform(0.0, 1.0)),
        )
        self._pending_retry[request.seqno] = request
        self.sim.after(delay, self._fire_retry, request)

    def _fire_retry(self, request: Request) -> None:
        if self._pending_retry.pop(request.seqno, None) is None:
            return  # aborted while waiting
        if request.phase != RequestPhase.CANCELLED:
            return
        healthy = self._routable()
        if not healthy or self._admission_full(healthy):
            self._requeue(request)  # burns another attempt
            return
        self.counts["failover_retries"] += 1
        self._place(request, healthy)

    def _abandon(self, request: Request) -> None:
        """Terminal give-up: a failover retry budget ran out, or a
        fleet-level deadline policy expired its last retry (the
        injector routes its abandonments through here so ledger
        listeners see every terminal outcome)."""
        self._attempts.pop(request.seqno, None)
        self.counts["abandoned"] += 1
        trace = self._trace
        if trace is not None:
            trace.fault(
                self.sim.now,
                "abandoned",
                tenant=request.tenant_id,
                seqno=request.seqno,
            )
        for fn in self._abandon_listeners:
            fn(request)
        source = request.source
        if source is not None:
            source.on_request_complete(request)
