"""Fleet-granularity fault injection: executes the ``server_crashes`` /
``server_slowdowns`` (and ``deadlines``) of a
:class:`~repro.faults.plan.FaultPlan` against a
:class:`~repro.fleet.fleet.Fleet`.

The split mirrors the plan vocabulary: worker-granularity faults
(``slowdowns``, ``crashes``, ``estimator_faults``) name a worker index
inside *one* process and are executed by the single-server
:class:`~repro.faults.FaultInjector`; a fleet plan names whole servers.
Mixing the two granularities in one plan is rejected here for the same
reason the single-server injector rejects fleet faults -- a plan must be
executable by exactly one injector, or "same plan, same seed, same run"
stops meaning anything.

Deadlines work at fleet scope: the timer arms on logical admission, the
expiry aborts the request *wherever it lives* (any server, a frozen
crashed server, or the failover retry queue) through
:meth:`Fleet.abort`, and the retry is a fresh fleet submission routed
like any other.  Backoff shares :func:`~repro.faults.plan.retry_delay`
with both the single-server injector and the failover policy.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.request import Request, RequestPhase
from ..errors import ConfigurationError
from ..faults.plan import DeadlinePolicy, FaultPlan, ServerCrash, ServerSlowdown, retry_delay
from ..simulator.rng import make_rng
from .fleet import Fleet

__all__ = ["FleetInjector"]


class FleetInjector:
    """Schedules a plan's server-granularity faults into a fleet's loop.

    Usage (``repro.experiments.fleet.run_fleet`` does this when given a
    plan)::

        injector = FleetInjector(fleet, plan)
        injector.install()
        sim.run(...)
        injector.counts
    """

    def __init__(self, fleet: Fleet, plan: FaultPlan) -> None:
        self.fleet = fleet
        self.plan = plan
        self._rng = make_rng(plan.seed, "fleet-faults", "jitter")
        self._attempts: Dict[int, int] = {}  # seqno -> retries so far
        self.counts: Dict[str, int] = {
            "server_crashes": 0,
            "server_restarts": 0,
            "server_slowdowns": 0,
            "deadline_expiries": 0,
            "retries": 0,
            "abandoned": 0,
        }

    def install(self) -> None:
        """Validate the plan against this fleet and schedule every fault."""
        plan = self.plan
        if plan.slowdowns or plan.crashes or plan.estimator_faults:
            raise ConfigurationError(
                "fault plan contains worker-granularity faults (slowdowns/"
                "crashes/estimator_faults); those name a worker inside one "
                "process -- run them through the single-server FaultInjector"
            )
        size = len(self.fleet.servers)
        for crash in plan.server_crashes:
            if crash.server >= size:
                raise ConfigurationError(
                    f"server crash names server {crash.server}, but the "
                    f"fleet has {size} servers"
                )
        for slowdown in plan.server_slowdowns:
            if slowdown.server >= size:
                raise ConfigurationError(
                    f"server slowdown names server {slowdown.server}, but "
                    f"the fleet has {size} servers"
                )
        sim = self.fleet.sim
        for crash in plan.server_crashes:
            sim.at(crash.at, self._crash, crash)
            if crash.restart_at is not None:
                sim.at(crash.restart_at, self._restore, crash)
        for slowdown in plan.server_slowdowns:
            sim.at(slowdown.start, self._begin_slowdown, slowdown)
            sim.at(slowdown.end, self._end_slowdown, slowdown)
        if plan.deadlines:
            self.fleet.on_admit(self._watch_deadline)

    # -- server faults -----------------------------------------------------

    def _crash(self, crash: ServerCrash) -> None:
        self.fleet.crash_server(crash.server)
        self.counts["server_crashes"] += 1

    def _restore(self, crash: ServerCrash) -> None:
        self.fleet.restore_server(crash.server)
        self.counts["server_restarts"] += 1

    def _begin_slowdown(self, slowdown: ServerSlowdown) -> None:
        self.fleet.set_server_speed(slowdown.server, slowdown.factor)
        self.counts["server_slowdowns"] += 1
        self._trace_fault(
            "server_slowdown_begin",
            server=slowdown.server,
            factor=slowdown.factor,
        )

    def _end_slowdown(self, slowdown: ServerSlowdown) -> None:
        self.fleet.set_server_speed(slowdown.server, 1.0)
        self._trace_fault("server_slowdown_end", server=slowdown.server)

    # -- deadlines ---------------------------------------------------------

    def _watch_deadline(self, request: Request) -> None:
        policy = self.plan.policy_for(request.tenant_id)
        if policy is None:
            return
        self.fleet.sim.after(policy.deadline, self._expire, request, policy)

    def _expire(self, request: Request, policy: DeadlinePolicy) -> None:
        phase = request.phase
        if phase != RequestPhase.QUEUED and phase != RequestPhase.RUNNING:
            # CANCELLED can still mean "alive, awaiting failover retry";
            # Fleet.abort distinguishes that from a terminal state.
            if phase != RequestPhase.CANCELLED:
                return
        if not self.fleet.abort(request):
            return
        self.counts["deadline_expiries"] += 1
        self._trace_fault(
            "deadline_expired",
            tenant=request.tenant_id,
            seqno=request.seqno,
            was_running=phase == RequestPhase.RUNNING,
        )
        attempts = self._attempts.get(request.seqno, 0)
        if attempts < policy.max_retries:
            self._attempts[request.seqno] = attempts + 1
            delay = retry_delay(
                policy.backoff,
                policy.growth,
                policy.jitter,
                attempts,
                float(self._rng.uniform(0.0, 1.0)),
            )
            self.fleet.sim.after(delay, self._retry, request)
        else:
            self.counts["abandoned"] += 1
            # Routed through the fleet so abandon listeners (the
            # conservation ledger) see the terminal outcome; the fleet
            # notifies the source.
            self.fleet._abandon(request)

    def _retry(self, request: Request) -> None:
        if request.phase != RequestPhase.CANCELLED:
            return
        self.counts["retries"] += 1
        self._trace_fault(
            "retry",
            tenant=request.tenant_id,
            seqno=request.seqno,
            attempt=self._attempts.get(request.seqno, 0),
        )
        # A retry is a fresh client submission: routed anew, counted as
        # a new admission, and its deadline timer re-arms via on_admit.
        self.fleet.submit(request)

    # -- tracing -----------------------------------------------------------

    def _trace_fault(
        self, fault: str, tenant: Optional[str] = None, **fields: Any
    ) -> None:
        trace = self.fleet._trace
        if trace is not None:
            trace.fault(self.fleet.sim.now, fault, tenant=tenant, **fields)
