"""Cross-file project model for conformance rules.

Per-module AST walks are enough for the local rules (wall-clock calls,
asserts, float equality), but the scheduler-conformance contract is a
*global* property: "every class registered in ``SCHEDULER_CLASSES``
implements the full scheduler surface" needs the registry's membership
list from one file and the class bodies -- possibly inherited through a
chain of bases -- from several others.  The :class:`ProjectModel`
accumulates exactly the summaries those rules need while the engine
walks each file, then hands them to ``finish_project`` hooks.

Name resolution is intentionally lightweight: base classes are resolved
by bare class name across the analyzed tree (same-module definitions
win), which is exact for this codebase and degrades to "unknown base,
stop walking" for classes imported from outside the analyzed paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MethodInfo",
    "ClassInfo",
    "ModuleInfo",
    "RegisteredClass",
    "ProjectModel",
]


@dataclass
class MethodInfo:
    """Static summary of one method definition."""

    name: str
    lineno: int
    col: int
    #: Decorated with ``abstractmethod`` (any spelling).
    is_abstract: bool
    #: Body is only a docstring plus ``pass``/``...``/``raise
    #: NotImplementedError`` -- a declaration, not an implementation.
    is_stub: bool
    #: The body reads ``<anything>._trace`` (the tracer guard idiom).
    references_trace: bool
    #: The body calls ``super().<same method>(...)``.
    calls_super_same: bool


@dataclass
class ClassInfo:
    """Static summary of one class definition."""

    name: str
    module: str
    path: str
    lineno: int
    col: int
    bases: Tuple[str, ...]
    methods: Dict[str, MethodInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One analyzed module: its tree plus naming, kept for passes that
    need whole bodies rather than the light summaries above (the
    dataflow layer re-walks function bodies in control-flow order)."""

    tree: ast.Module
    module: str
    path: str


@dataclass(frozen=True)
class RegisteredClass:
    """One class name found in a ``SCHEDULER_CLASSES`` registration."""

    class_name: str
    module: str
    path: str
    lineno: int
    col: int


def _base_name(node: ast.expr) -> Optional[str]:
    """Bare name of a base-class expression (``Scheduler``,
    ``core.Scheduler`` -> ``Scheduler``); ``None`` for anything fancier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_abstract(node: ast.FunctionDef) -> bool:
    for deco in node.decorator_list:
        name = _base_name(deco)
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _is_stub(node: ast.FunctionDef) -> bool:
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # skip docstring
    if not body:
        return True
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # `...`
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            name = None
            if isinstance(exc, ast.Call):
                name = _base_name(exc.func)
            elif exc is not None:
                name = _base_name(exc)
            if name == "NotImplementedError":
                continue
        return False
    return True


def _references_trace(node: ast.FunctionDef) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "_trace":
            return True
    return False


def _calls_super_same(node: ast.FunctionDef) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == node.name
            and isinstance(sub.func.value, ast.Call)
            and _base_name(sub.func.value.func) == "super"
        ):
            return True
    return False


def summarize_class(
    node: ast.ClassDef, module: str, path: str
) -> ClassInfo:
    """Build the :class:`ClassInfo` summary for one class definition."""
    bases = tuple(
        name for name in (_base_name(b) for b in node.bases) if name is not None
    )
    info = ClassInfo(
        name=node.name,
        module=module,
        path=path,
        lineno=node.lineno,
        col=node.col_offset,
        bases=bases,
    )
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef):
            info.methods[stmt.name] = MethodInfo(
                name=stmt.name,
                lineno=stmt.lineno,
                col=stmt.col_offset,
                is_abstract=_is_abstract(stmt),
                is_stub=_is_stub(stmt),
                references_trace=_references_trace(stmt),
                calls_super_same=_calls_super_same(stmt),
            )
    return info


def _registered_names(node: ast.AST) -> List[str]:
    """Class names registered in a ``SCHEDULER_CLASSES`` assignment.

    Understands both shapes::

        SCHEDULER_CLASSES = {cls.name: cls for cls in (A, B, C)}
        SCHEDULER_CLASSES = {"a": A, "b": B}
    """
    value: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        value = node.value
    elif isinstance(node, ast.AnnAssign):
        value = node.value
    if isinstance(value, ast.DictComp):
        gen = value.generators[0]
        if isinstance(gen.iter, (ast.Tuple, ast.List)):
            return [
                name
                for name in (_base_name(e) for e in gen.iter.elts)
                if name is not None
            ]
    elif isinstance(value, ast.Dict):
        return [
            name
            for name in (_base_name(v) for v in value.values)
            if name is not None
        ]
    return []


class ProjectModel:
    """Accumulated cross-file facts about the analyzed tree."""

    def __init__(self) -> None:
        #: Class summaries by bare name; collisions keep every definition.
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: Classes named in a ``SCHEDULER_CLASSES`` registration.
        self.registered: List[RegisteredClass] = []
        #: Every analyzed module with its full tree, in analysis order.
        self.modules: List[ModuleInfo] = []
        #: Scratch space shared by cooperating rules so expensive
        #: whole-project passes (the dataflow analysis) run once per
        #: analyzer run however many rules consume them.
        self.cache: Dict[str, Any] = {}

    # -- collection (called by the engine) --------------------------------

    def add_module(self, tree: ast.Module, module: str, path: str) -> None:
        self.modules.append(ModuleInfo(tree=tree, module=module, path=path))
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                info = summarize_class(stmt, module, path)
                self.classes.setdefault(info.name, []).append(info)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                target = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                if (
                    isinstance(target, ast.Name)
                    and target.id == "SCHEDULER_CLASSES"
                ):
                    for name in _registered_names(stmt):
                        self.registered.append(
                            RegisteredClass(
                                class_name=name,
                                module=module,
                                path=path,
                                lineno=stmt.lineno,
                                col=stmt.col_offset,
                            )
                        )

    # -- queries ----------------------------------------------------------

    def resolve(
        self, name: str, from_module: Optional[str] = None
    ) -> Optional[ClassInfo]:
        """Resolve a class by bare name; same-module definitions win."""
        candidates = self.classes.get(name)
        if not candidates:
            return None
        if from_module is not None:
            for info in candidates:
                if info.module == from_module:
                    return info
        return candidates[0]

    def mro(self, name: str, from_module: Optional[str] = None) -> Iterator[ClassInfo]:
        """The by-name base-class chain starting at ``name``.

        Walks bases depth-first in declaration order, stopping at
        classes not defined in the analyzed tree.  Cycles (mutually
        recursive bases, which would be a bug anyway) are broken by a
        visited set.
        """
        seen = set()
        stack = [(name, from_module)]
        while stack:
            current, module = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.resolve(current, module)
            if info is None:
                continue
            yield info
            stack = [(b, info.module) for b in info.bases] + stack

    def find_method(
        self, class_name: str, method: str, from_module: Optional[str] = None
    ) -> Optional[Tuple[ClassInfo, MethodInfo]]:
        """First definition of ``method`` along the by-name MRO."""
        for info in self.mro(class_name, from_module):
            if method in info.methods:
                return info, info.methods[method]
        return None

    def base_name_closure(
        self, class_name: str, from_module: Optional[str] = None
    ) -> "set[str]":
        """Every class *name* reachable through the by-name MRO --
        including base names that resolve to nothing in the analyzed
        tree.  Scope checks like "is this a Scheduler subclass" want the
        unresolved names too: a fixture deriving from an imported
        ``Scheduler`` still declares its intent in the base list."""
        names: set[str] = {class_name}
        for info in self.mro(class_name, from_module):
            names.add(info.name)
            names.update(info.bases)
        return names

    def derives_from(
        self, class_name: str, ancestor: str, from_module: Optional[str] = None
    ) -> bool:
        """True when ``ancestor`` appears strictly above ``class_name``
        in the by-name MRO."""
        for info in self.mro(class_name, from_module):
            if info.name != class_name and info.name == ancestor:
                return True
        return False
