"""The :class:`Finding` record produced by every rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    code:
        Stable rule code (``RPR0xx``); what suppressions and
        ``--select``/``--ignore`` match against.
    message:
        Human-readable description of the violation.
    path:
        Path of the offending file, as given to the analyzer.
    line:
        1-based line number (the line suppressions apply to).
    col:
        0-based column offset.
    rule:
        Name of the rule that produced the finding (``"wall-clock"``).
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    rule: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (``--format json``)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
        }

    def format_text(self) -> str:
        """The one-line text form: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
