"""The analyzer: file collection, single-pass dispatch, suppressions.

One :class:`Analyzer` run parses every ``.py`` file under the given
paths exactly once, walks each tree once while dispatching nodes to the
rules that declared interest in their type, accumulates the cross-file
:class:`~repro.analysis.project.ProjectModel`, runs the project-level
rules, and finally applies inline suppressions -- reporting any
suppression that silenced nothing (``RPR000``) and any file that failed
to parse (``RPR090``).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from .base import Rule, RuleContext
from .findings import Finding
from .project import ProjectModel
from .rules import ALL_RULES
from .suppress import UNUSED_SUPPRESSION_CODE, SuppressionIndex

__all__ = ["Analyzer", "AnalysisResult", "PARSE_ERROR_CODE"]

#: Code under which unparseable files are reported.
PARSE_ERROR_CODE = "RPR090"


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_analyzed": self.files_analyzed,
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts_by_code(),
        }


def _module_name(path: str) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    ``src/repro/core/vt_base.py`` -> ``repro.core.vt_base``;
    a fixture tree's ``core/bad.py`` -> ``core.bad``.
    """
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        if not pkg:
            break
        parts.append(pkg)
    return ".".join(reversed(parts))


def collect_files(paths: Sequence[str]) -> List[str]:
    """All ``.py`` files under ``paths``, sorted for deterministic output."""
    files: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            files.add(path)
        else:
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in filenames:
                    if name.endswith(".py"):
                        files.add(os.path.join(dirpath, name))
    return sorted(files)


class Analyzer:
    """Run a rule catalogue over a set of files.

    Parameters
    ----------
    rules:
        Rule *classes* to instantiate (default: the full catalogue).
    select:
        If given, only rules whose code is in this set run.
    ignore:
        Rules whose code is in this set are skipped (applied after
        ``select``).  The built-in ``RPR000``/``RPR090`` pseudo-rules
        honor both switches too.
    """

    def __init__(
        self,
        rules: Optional[Iterable[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        dataflow_cache: Optional[str] = None,
    ) -> None:
        self._select = set(select) if select is not None else None
        self._ignore = set(ignore) if ignore is not None else set()
        #: Directory for the persisted dataflow report (``--cache DIR``);
        #: ``None`` disables on-disk caching (in-memory sharing across
        #: the RPR1xx rules of one run is always on).
        self._dataflow_cache = dataflow_cache
        catalogue = list(rules if rules is not None else ALL_RULES)
        #: every code some catalogue rule (or pseudo-rule) claims,
        #: regardless of --select/--ignore filtering -- so suppressions
        #: naming a merely-disabled rule are distinguishable from typos.
        self._catalogue_codes: Set[str] = {cls.code for cls in catalogue} | {
            UNUSED_SUPPRESSION_CODE,
            PARSE_ERROR_CODE,
        }
        self._rules: List[Rule] = [
            cls() for cls in catalogue if self._enabled(cls.code)
        ]
        #: node type -> rules wanting it (built once; isinstance handles
        #: subclass declarations like a rule asking for ast.stmt).
        self._dispatch: List[Tuple[Tuple[type, ...], Rule]] = [
            (rule.node_types, rule) for rule in self._rules if rule.node_types
        ]

    def _enabled(self, code: str) -> bool:
        if self._select is not None and code not in self._select:
            return False
        return code not in self._ignore

    @property
    def rules(self) -> List[Rule]:
        return list(self._rules)

    # -- execution ---------------------------------------------------------

    def run(self, paths: Sequence[str]) -> AnalysisResult:
        result = AnalysisResult()
        project = ProjectModel()
        if self._dataflow_cache is not None:
            project.cache["dataflow_cache_dir"] = self._dataflow_cache
        modules: List[Tuple[RuleContext, SuppressionIndex]] = []

        for path in collect_files(paths):
            result.files_analyzed += 1
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    source = fh.read()
                tree = ast.parse(source, filename=path)
            except (SyntaxError, ValueError, UnicodeDecodeError, OSError) as exc:
                if self._enabled(PARSE_ERROR_CODE):
                    line = getattr(exc, "lineno", None) or 1
                    result.findings.append(
                        Finding(
                            code=PARSE_ERROR_CODE,
                            message=f"file could not be analyzed: {exc}",
                            path=path,
                            line=int(line),
                            rule="parse-error",
                        )
                    )
                continue
            ctx = RuleContext(path, _module_name(path), tree)
            suppressions = SuppressionIndex.from_source(source)
            project.add_module(tree, ctx.module, path)
            self._walk_module(ctx)
            modules.append((ctx, suppressions))

        # Project-level rules report through a context-free callback;
        # their findings participate in suppression matching like any
        # other (keyed by path+line).
        project_findings: List[Finding] = []

        def report(
            path: str, line: int, col: int, code: str, message: str, rule: str
        ) -> None:
            project_findings.append(
                Finding(
                    code=code,
                    message=message,
                    path=path,
                    line=line,
                    col=col,
                    rule=rule,
                )
            )

        for rule in self._rules:
            rule.finish_project(project, report)

        by_path: Dict[str, List[Finding]] = {}
        for finding in project_findings:
            by_path.setdefault(finding.path, []).append(finding)

        for ctx, suppressions in modules:
            module_findings = ctx.findings + by_path.pop(ctx.path, [])
            for finding in module_findings:
                if suppressions.suppressed(finding.line, finding.code):
                    continue
                result.findings.append(finding)
            if self._enabled(UNUSED_SUPPRESSION_CODE):
                result.findings.extend(
                    self._suppression_findings(ctx.path, suppressions)
                )
        # Project findings for paths outside the walked set (can only
        # happen with exotic reporters); keep rather than drop.
        for leftovers in by_path.values():
            result.findings.extend(leftovers)

        result.findings.sort(key=lambda f: f.sort_key)
        return result

    def _walk_module(self, ctx: RuleContext) -> None:
        for rule in self._rules:
            rule.start_module(ctx)
        if self._dispatch:
            for node in ast.walk(ctx.tree):
                for types, rule in self._dispatch:
                    if isinstance(node, types):
                        rule.visit(node, ctx)
        for rule in self._rules:
            rule.finish_module(ctx)

    def _suppression_findings(
        self, path: str, suppressions: SuppressionIndex
    ) -> List[Finding]:
        """RPR000 findings: malformed suppressions, suppressions naming
        codes that are not enabled rules, and suppressions that silenced
        nothing."""
        known = {rule.code for rule in self._rules}
        out: List[Finding] = []
        for sup in suppressions.all_suppressions():
            if sup.malformed:
                out.append(
                    Finding(
                        code=UNUSED_SUPPRESSION_CODE,
                        message=(
                            "malformed suppression: use "
                            "`# repro: ignore[RPR0xx]` with explicit codes"
                        ),
                        path=path,
                        line=sup.line,
                        col=sup.col,
                        rule="unused-suppression",
                    )
                )
                continue
            for code in sup.unused_codes:
                if code not in known:
                    # A code no *enabled* rule claims.  If some catalogue
                    # rule owns it, it is merely filtered out by
                    # --select/--ignore and the suppression may be doing
                    # real work -- skip.  A code outside the catalogue is
                    # a typo and stays reportable under any filtering.
                    if code in self._catalogue_codes:
                        continue
                    message = f"suppression names unknown rule code {code}"
                else:
                    message = (
                        f"unused suppression: no {code} finding on this line"
                    )
                out.append(
                    Finding(
                        code=UNUSED_SUPPRESSION_CODE,
                        message=message,
                        path=path,
                        line=sup.line,
                        col=sup.col,
                        rule="unused-suppression",
                    )
                )
        return out
