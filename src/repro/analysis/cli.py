"""Command-line interface: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis                    # analyze src/repro
    python -m repro.analysis src/repro --format json
    python -m repro.analysis --select RPR001,RPR030 src/repro
    python -m repro.analysis --list-rules

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors -- so the CI lint job is a single invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Set

from .engine import PARSE_ERROR_CODE, Analyzer
from .rules import rule_catalogue
from .suppress import UNUSED_SUPPRESSION_CODE

__all__ = ["main"]


def _parse_codes(values: List[str]) -> Set[str]:
    codes: Set[str] = set()
    for value in values:
        codes.update(c.strip() for c in value.split(",") if c.strip())
    return codes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Simulation-safety static analysis: determinism, virtual-time "
            "hygiene, scheduler conformance, and sim-purity rules for the "
            "repro codebase (DESIGN.md §12)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to skip (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _default_paths() -> List[str]:
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    return []


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        catalogue = dict(rule_catalogue())
        catalogue[UNUSED_SUPPRESSION_CODE] = (
            "unused-suppression: `# repro: ignore` comment that silenced "
            "nothing (engine built-in)"
        )
        catalogue[PARSE_ERROR_CODE] = (
            "parse-error: file could not be parsed (engine built-in)"
        )
        for code in sorted(catalogue):
            print(f"{code}  {catalogue[code]}")
        return 0

    paths = list(args.paths) or _default_paths()
    if not paths:
        parser.error("no paths given and src/repro not found")
    for path in paths:
        if not os.path.exists(path):
            parser.error(f"path does not exist: {path}")

    select = _parse_codes(args.select) or None
    ignore = _parse_codes(args.ignore) or None
    analyzer = Analyzer(select=select, ignore=ignore)
    result = analyzer.run(paths)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.format_text())
        counts = result.counts_by_code()
        if result.findings:
            breakdown = ", ".join(f"{c}: {n}" for c, n in counts.items())
            print(
                f"{len(result.findings)} finding(s) in "
                f"{result.files_analyzed} file(s) ({breakdown})"
            )
        else:
            print(
                f"clean: {result.files_analyzed} file(s), "
                f"{len(analyzer.rules)} rule(s), 0 findings"
            )
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
