"""Command-line interface: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis                    # src/repro + aux roots
    python -m repro.analysis src/repro --format json
    python -m repro.analysis --select RPR001,RPR030 src/repro
    python -m repro.analysis --write-baseline analysis-baseline.json
    python -m repro.analysis --baseline analysis-baseline.json
    python -m repro.analysis --format github --cache .repro-cache
    python -m repro.analysis --list-rules

Scan roots
----------
With no explicit paths, ``src/repro`` is analyzed under the full rule
catalogue, and the auxiliary roots (``benchmarks/``, ``examples/``,
``tests/``) are analyzed under the determinism subset only
(:data:`AUX_RULE_SUBSET`): wall-clock and unseeded-RNG hygiene matter
everywhere a simulation can be driven from, but style/structure rules
and the dimension dataflow pass are scoped to the library source.  The
seeded-violation fixture packages under ``tests/analysis_fixtures/``
are excluded -- they exist to *contain* findings.

Baselines
---------
``--write-baseline FILE`` records the current findings; ``--baseline
FILE`` then subtracts them on later runs so the rules are strict on new
code only.  Baseline entries are keyed ``(path, code, message)`` with
multiplicity -- robust against pure line drift, while a new instance of
an already-known hazard class in the same file still surfaces.

Exit status: 0 when clean (after baseline subtraction), 1 when findings
were reported, 2 on usage errors -- so the CI lint job is a single
invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import PARSE_ERROR_CODE, AnalysisResult, Analyzer, collect_files
from .findings import Finding
from .rules import rule_catalogue
from .suppress import UNUSED_SUPPRESSION_CODE

__all__ = ["main", "AUX_SCAN_ROOTS", "AUX_RULE_SUBSET"]

#: Default auxiliary scan roots (analyzed when present).
AUX_SCAN_ROOTS = ("benchmarks", "examples", "tests")

#: Rules applied to the auxiliary roots: determinism hygiene (wall-clock
#: reads, unseeded RNG) plus the engine built-ins (suppression bookkeeping
#: and parse errors).  Everything else is library-source-only.
AUX_RULE_SUBSET = frozenset(
    {"RPR001", "RPR002", UNUSED_SUPPRESSION_CODE, PARSE_ERROR_CODE}
)

#: Directory name (under tests/) holding intentional seeded violations.
FIXTURE_DIR_NAME = "analysis_fixtures"


def _parse_codes(values: List[str]) -> Set[str]:
    codes: Set[str] = set()
    for value in values:
        codes.update(c.strip() for c in value.split(",") if c.strip())
    return codes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Simulation-safety static analysis: determinism, virtual-time "
            "hygiene, scheduler conformance, sim-purity, and dimension "
            "dataflow rules for the repro codebase (DESIGN.md §12, §17)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze (default: src/repro under the "
            "full catalogue, plus benchmarks/, examples/, tests/ under the "
            "determinism subset)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to skip (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format (default: text; github emits workflow-command "
            "annotations for the CI lint job)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "subtract the findings recorded in FILE; only findings beyond "
            "the baseline are reported and affect the exit status"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help=(
            "persist the dataflow pass in DIR keyed on the source digest "
            "(an unchanged tree skips the abstract interpretation)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _default_roots() -> Tuple[List[str], List[str]]:
    """(primary roots, auxiliary roots) for a no-argument invocation."""
    primary: List[str] = []
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        primary.append(candidate)
    aux = [root for root in AUX_SCAN_ROOTS if os.path.isdir(root)]
    return primary, aux


def _is_fixture_path(path: str) -> bool:
    return FIXTURE_DIR_NAME in os.path.normpath(path).split(os.sep)


def _aux_files(aux_roots: Sequence[str]) -> List[str]:
    """Auxiliary files to scan, minus the seeded-violation fixtures."""
    return [f for f in collect_files(aux_roots) if not _is_fixture_path(f)]


def _baseline_key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.path.replace(os.sep, "/"), finding.code, finding.message)


def _write_baseline(path: str, result: AnalysisResult) -> None:
    entries: Dict[str, int] = {}
    for finding in result.findings:
        key = json.dumps(_baseline_key(finding))
        entries[key] = entries.get(key, 0) + 1
    payload = {
        "version": 1,
        "comment": (
            "repro.analysis baseline: known findings keyed "
            "(path, code, message) with multiplicity; regenerate with "
            "`python -m repro.analysis --write-baseline <file>`"
        ),
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _load_baseline(path: str) -> Dict[str, int]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"not a baseline file: {path}")
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"baseline entries must be an object: {path}")
    return {str(k): int(v) for k, v in entries.items()}


def _apply_baseline(
    result: AnalysisResult, baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """(new findings, count suppressed by the baseline).

    Budgeted subtraction: a baseline entry with multiplicity N absorbs
    the first N occurrences of that (path, code, message) key; the
    N+1st is a *new* finding and is reported.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in result.findings:
        key = json.dumps(_baseline_key(finding))
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def _github_annotation(finding: Finding) -> str:
    # Workflow-command escaping: %, CR and LF in the free-text message.
    message = (
        finding.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.code}::{message}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        catalogue = dict(rule_catalogue())
        catalogue[UNUSED_SUPPRESSION_CODE] = (
            "unused-suppression: `# repro: ignore` comment that silenced "
            "nothing (engine built-in)"
        )
        catalogue[PARSE_ERROR_CODE] = (
            "parse-error: file could not be parsed (engine built-in)"
        )
        for code in sorted(catalogue):
            print(f"{code}  {catalogue[code]}")
        return 0

    select = _parse_codes(args.select) or None
    ignore = _parse_codes(args.ignore) or None

    if args.paths:
        for path in args.paths:
            if not os.path.exists(path):
                parser.error(f"path does not exist: {path}")
        primary: List[str] = list(args.paths)
        aux: List[str] = []
    else:
        primary, aux = _default_roots()
        if not primary and not aux:
            parser.error("no paths given and src/repro not found")

    analyzer = Analyzer(select=select, ignore=ignore, dataflow_cache=args.cache)
    result = (
        analyzer.run(primary) if primary else AnalysisResult()
    )

    if aux:
        aux_select = AUX_RULE_SUBSET if select is None else (
            AUX_RULE_SUBSET & select
        )
        aux_files = _aux_files(aux)
        if aux_select and aux_files:
            aux_result = Analyzer(select=aux_select, ignore=ignore).run(
                aux_files
            )
            result.findings.extend(aux_result.findings)
            result.files_analyzed += aux_result.files_analyzed
            result.findings.sort(key=lambda f: f.sort_key)

    if args.write_baseline:
        _write_baseline(args.write_baseline, result)
        print(
            f"baseline written: {args.write_baseline} "
            f"({len(result.findings)} finding(s))"
        )
        return 0

    suppressed = 0
    reportable = result.findings
    if args.baseline:
        try:
            baseline = _load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline: {exc}")
        reportable, suppressed = _apply_baseline(result, baseline)

    if args.format == "json":
        payload = result.to_dict()
        if args.baseline:
            payload["findings"] = [f.to_dict() for f in reportable]
            counts: Dict[str, int] = {}
            for finding in reportable:
                counts[finding.code] = counts.get(finding.code, 0) + 1
            payload["counts"] = dict(sorted(counts.items()))
            payload["baseline_suppressed"] = suppressed
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "github":
        for finding in reportable:
            print(_github_annotation(finding))
        summary = (
            f"{len(reportable)} finding(s) in {result.files_analyzed} file(s)"
        )
        if args.baseline:
            summary += f", {suppressed} baselined"
        print(f"::notice title=repro.analysis::{summary}")
    else:
        for finding in reportable:
            print(finding.format_text())
        if reportable:
            counts = {}
            for finding in reportable:
                counts[finding.code] = counts.get(finding.code, 0) + 1
            breakdown = ", ".join(
                f"{c}: {n}" for c, n in sorted(counts.items())
            )
            tail = f", {suppressed} baselined" if args.baseline else ""
            print(
                f"{len(reportable)} finding(s) in "
                f"{result.files_analyzed} file(s) ({breakdown}){tail}"
            )
        else:
            tail = f", {suppressed} baselined" if args.baseline else ""
            print(
                f"clean: {result.files_analyzed} file(s), "
                f"{len(analyzer.rules)} rule(s), 0 findings{tail}"
            )
    return 1 if reportable else 0


if __name__ == "__main__":
    sys.exit(main())
