"""Simulation-safety static analysis for the repro codebase.

Every result this repository produces rests on properties the runtime
watchdog (:mod:`repro.validate`) can only check *per run*: determinism
(all randomness flows from :func:`repro.simulator.rng.make_rng`, never
from wall clocks or global RNG state), exact virtual-time arithmetic,
uniform scheduler API conformance, and sim-purity (no ``assert`` for
runtime invariants -- ``python -O`` strips them).  This package checks
those properties *statically*, over the AST, so a violation is caught at
review time instead of corrupting a run.

The framework is a small visitor-based plugin system:

* a :class:`~repro.analysis.base.Rule` declares the AST node types it
  wants and reports :class:`~repro.analysis.findings.Finding` objects
  with a stable per-rule code (``RPR0xx``);
* the :class:`~repro.analysis.engine.Analyzer` parses each file once,
  dispatches nodes to the interested rules, builds a cross-file
  :class:`~repro.analysis.project.ProjectModel` for the conformance
  rules, and applies inline ``# repro: ignore[RPR0xx]`` suppressions
  (an unused suppression is itself a finding, ``RPR000``);
* ``python -m repro.analysis`` runs the whole catalogue from the command
  line (text or JSON output, nonzero exit on findings) and gates CI.

See DESIGN.md §12 for the rule catalogue and how to add a rule.
"""

from __future__ import annotations

from .base import Rule, RuleContext
from .engine import AnalysisResult, Analyzer
from .findings import Finding
from .rules import ALL_RULES, rule_catalogue

__all__ = [
    "Analyzer",
    "AnalysisResult",
    "Finding",
    "Rule",
    "RuleContext",
    "ALL_RULES",
    "rule_catalogue",
]
