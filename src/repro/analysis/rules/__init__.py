"""The RPR rule catalogue.

====== ===================== ==============================================
code   rule                  property protected
====== ===================== ==============================================
RPR000 unused-suppression    ``# repro: ignore`` hygiene (engine built-in)
RPR001 wall-clock            determinism: no wall-clock reads in sim logic
RPR002 unseeded-rng          determinism: RNG flows from ``make_rng`` only
RPR010 float-equality        virtual-time hygiene: no float ``==``/``!=``
                             in ``repro.core``
RPR011 frozen-request-field  virtual-time hygiene: request identity is
                             immutable after construction
RPR012 unordered-iteration   virtual-time hygiene: no set-order-dependent
                             scheduling decisions
RPR020 scheduler-surface     conformance: registered schedulers implement
                             the full enqueue/dequeue/refresh/complete/
                             cancel surface
RPR021 tracer-pairing        conformance: overridden state-mutating hooks
                             keep emitting their paired obs event
RPR022 index-surface         conformance: ``_index_spec`` overrides are
                             paired with a concrete ``_select_indexed``;
                             ``dequeue`` overrides with ``dequeue_batch``
RPR030 runtime-assert        sim-purity: no ``assert`` for runtime
                             invariants (stripped under ``python -O``)
RPR090 parse-error           file could not be parsed (engine built-in)
====== ===================== ==============================================
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..base import Rule
from .conformance import IndexSurfaceRule, SchedulerSurfaceRule, TracerPairingRule
from .determinism import UnseededRngRule, WallClockRule
from .hygiene import FloatEqualityRule, FrozenRequestFieldRule, UnorderedIterationRule
from .purity import RuntimeAssertRule

__all__ = [
    "ALL_RULES",
    "rule_catalogue",
    "WallClockRule",
    "UnseededRngRule",
    "FloatEqualityRule",
    "FrozenRequestFieldRule",
    "UnorderedIterationRule",
    "SchedulerSurfaceRule",
    "TracerPairingRule",
    "IndexSurfaceRule",
    "RuntimeAssertRule",
]

#: Every rule class, in catalogue (code) order.
ALL_RULES: List[Type[Rule]] = [
    WallClockRule,
    UnseededRngRule,
    FloatEqualityRule,
    FrozenRequestFieldRule,
    UnorderedIterationRule,
    SchedulerSurfaceRule,
    TracerPairingRule,
    IndexSurfaceRule,
    RuntimeAssertRule,
]


def rule_catalogue() -> Dict[str, str]:
    """Mapping of rule code to one-line description (``--list-rules``)."""
    return {cls.code: f"{cls.name}: {cls.description}" for cls in ALL_RULES}
