"""The RPR rule catalogue.

====== ===================== ==============================================
code   rule                  property protected
====== ===================== ==============================================
RPR000 unused-suppression    ``# repro: ignore`` hygiene (engine built-in)
RPR001 wall-clock            determinism: no wall-clock reads in sim logic
RPR002 unseeded-rng          determinism: RNG flows from ``make_rng`` only
RPR010 float-equality        virtual-time hygiene: no float ``==``/``!=``
                             in ``repro.core``
RPR011 frozen-request-field  virtual-time hygiene: request identity is
                             immutable after construction
RPR012 unordered-iteration   virtual-time hygiene: no set-order-dependent
                             scheduling decisions
RPR020 scheduler-surface     conformance: registered schedulers implement
                             the full enqueue/dequeue/refresh/complete/
                             cancel surface
RPR021 tracer-pairing        conformance: overridden state-mutating hooks
                             keep emitting their paired obs event
RPR022 index-surface         conformance: ``_index_spec`` overrides are
                             paired with a concrete ``_select_indexed``;
                             ``dequeue`` overrides with ``dequeue_batch``
RPR030 runtime-assert        sim-purity: no ``assert`` for runtime
                             invariants (stripped under ``python -O``)
RPR090 parse-error           file could not be parsed (engine built-in)
RPR101 dimension-arithmetic  units: no additive arithmetic across
                             incompatible time/cost dimensions
RPR102 dimension-comparison  units: no ordering comparisons across
                             incompatible dimensions
RPR103 dimension-boundary    units: call arguments, returns, and annotated
                             assignments match the declared dimension
RPR110 rng-ordering-taint    taint: seeded-RNG draws never reach
                             ordering-sensitive scheduler state
RPR111 wall-clock-taint      taint: host-clock-derived values never flow
                             into sim_time/virtual_time state
====== ===================== ==============================================

The RPR1xx block is powered by the flow-sensitive abstract interpreter
in :mod:`repro.analysis.dataflow`; see DESIGN.md §17.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..base import Rule
from .conformance import IndexSurfaceRule, SchedulerSurfaceRule, TracerPairingRule
from .dataflow import (
    DimensionArithmeticRule,
    DimensionBoundaryRule,
    DimensionComparisonRule,
    RngOrderingTaintRule,
    WallClockTaintRule,
)
from .determinism import UnseededRngRule, WallClockRule
from .hygiene import FloatEqualityRule, FrozenRequestFieldRule, UnorderedIterationRule
from .purity import RuntimeAssertRule

__all__ = [
    "ALL_RULES",
    "rule_catalogue",
    "WallClockRule",
    "UnseededRngRule",
    "FloatEqualityRule",
    "FrozenRequestFieldRule",
    "UnorderedIterationRule",
    "SchedulerSurfaceRule",
    "TracerPairingRule",
    "IndexSurfaceRule",
    "RuntimeAssertRule",
    "DimensionArithmeticRule",
    "DimensionComparisonRule",
    "DimensionBoundaryRule",
    "RngOrderingTaintRule",
    "WallClockTaintRule",
]

#: Every rule class, in catalogue (code) order.
ALL_RULES: List[Type[Rule]] = [
    WallClockRule,
    UnseededRngRule,
    FloatEqualityRule,
    FrozenRequestFieldRule,
    UnorderedIterationRule,
    SchedulerSurfaceRule,
    TracerPairingRule,
    IndexSurfaceRule,
    RuntimeAssertRule,
    DimensionArithmeticRule,
    DimensionComparisonRule,
    DimensionBoundaryRule,
    RngOrderingTaintRule,
    WallClockTaintRule,
]


def rule_catalogue() -> Dict[str, str]:
    """Mapping of rule code to one-line description (``--list-rules``)."""
    return {cls.code: f"{cls.name}: {cls.description}" for cls in ALL_RULES}
