"""The RPR1xx dataflow rules.

All five rules consume one shared :class:`~repro.analysis.dataflow.interp.DataflowReport`
-- the abstract interpretation runs once per analyzer invocation (cached
on :attr:`ProjectModel.cache`), and each rule projects out the hazard
kind it owns:

====== ========================== ====================================
code   rule                       hazard kind
====== ========================== ====================================
RPR101 dimension-arithmetic       ``arith``
RPR102 dimension-comparison       ``compare``
RPR103 dimension-boundary         ``boundary``
RPR110 rng-ordering-taint         ``rng_order``
RPR111 wall-clock-taint           ``wall_sim``
====== ========================== ====================================

Because the interpreter needs whole-function bodies and cross-file
summaries, everything happens in ``finish_project``; the per-module
visitor surface is unused.
"""

from __future__ import annotations

from typing import ClassVar

from ..base import Reporter, Rule
from ..dataflow import get_dataflow_report
from ..project import ProjectModel

__all__ = [
    "DimensionArithmeticRule",
    "DimensionComparisonRule",
    "DimensionBoundaryRule",
    "RngOrderingTaintRule",
    "WallClockTaintRule",
]


class _DataflowRule(Rule):
    """Shared shape: report every hazard of :attr:`kind`."""

    #: Hazard kind in the shared report this rule projects out.
    kind: ClassVar[str] = ""

    def finish_project(self, project: ProjectModel, report: Reporter) -> None:
        for hazard in get_dataflow_report(project).by_kind(self.kind):
            report(
                hazard.path,
                hazard.line,
                hazard.col,
                self.code,
                hazard.message,
                self.name,
            )


class DimensionArithmeticRule(_DataflowRule):
    """RPR101: additive arithmetic across incompatible dimensions.

    ``start_tag + now``, ``cost - elapsed`` -- the operands live on
    different axes, so the sum is meaningless no matter the values.
    """

    code = "RPR101"
    name = "dimension-arithmetic"
    description = (
        "no +/-/% across incompatible time/cost dimensions "
        "(sim_time, virtual_time, wall_time, cost, rate, weight)"
    )
    kind = "arith"


class DimensionComparisonRule(_DataflowRule):
    """RPR102: ordering comparison across incompatible dimensions."""

    code = "RPR102"
    name = "dimension-comparison"
    description = (
        "no ordering comparisons across incompatible dimensions "
        "(a virtual-time tag never orders against a sim timestamp)"
    )
    kind = "compare"


class DimensionBoundaryRule(_DataflowRule):
    """RPR103: concrete dimension lost or swapped at an annotated
    boundary -- call argument, return statement, or assignment into an
    annotated variable/attribute."""

    code = "RPR103"
    name = "dimension-boundary"
    description = (
        "arguments, returns, and annotated assignments must match the "
        "declared repro.units dimension"
    )
    kind = "boundary"


class RngOrderingTaintRule(_DataflowRule):
    """RPR110: a seeded-RNG draw flows into ordering-sensitive scheduler
    state (tags, deficits, heap keys, scheduler-class comparisons).

    Workload randomness (arrival times, costs) is legitimate; the sink
    set is restricted to scheduler classes precisely so only *dispatch
    order* coupling to RNG stream consumption is flagged.
    """

    code = "RPR110"
    name = "rng-ordering-taint"
    description = (
        "seeded-RNG draws must not reach ordering-sensitive scheduler "
        "state (virtual-time tags, deficits, heap keys)"
    )
    kind = "rng_order"


class WallClockTaintRule(_DataflowRule):
    """RPR111: a host-clock-derived value reaches simulated state.

    RPR001 bans the *call sites* in sim packages; this rule follows the
    *value* -- a ``time.monotonic()`` read laundered through telemetry
    into a ``SimTime`` parameter three assignments later.
    """

    code = "RPR111"
    name = "wall-clock-taint"
    description = (
        "host-clock-derived values must never flow into sim_time or "
        "virtual_time state"
    )
    kind = "wall_sim"
