"""Sim-purity rule: RPR030 (no runtime ``assert``)."""

from __future__ import annotations

import ast
from typing import ClassVar, Tuple

from ..base import Rule, RuleContext

__all__ = ["RuntimeAssertRule"]


class RuntimeAssertRule(Rule):
    """RPR030: no ``assert`` statements in library code.

    ``python -O`` strips asserts, so an invariant guarded by one simply
    stops being checked in optimized deployments -- the worst possible
    failure mode for correctness machinery.  Raise
    :class:`repro.errors.SimulationError` /
    :class:`~repro.errors.SchedulerError` (or route through
    :mod:`repro.validate`) instead; test code is free to assert, which
    is why the CI gate runs the analyzer over ``src/repro`` only.
    """

    code: ClassVar[str] = "RPR030"
    name: ClassVar[str] = "runtime-assert"
    description: ClassVar[str] = (
        "assert used for a runtime invariant (vanishes under python -O); "
        "raise a repro.errors exception"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Assert,)

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        ctx.report(
            self,
            node,
            "`assert` is stripped by python -O; raise SimulationError/"
            "SchedulerError from repro.errors (or use repro.validate)",
        )
