"""Virtual-time hygiene rules: RPR010, RPR011, RPR012.

The virtual-time arithmetic in :mod:`repro.core` is engineered so every
charge is exactly reconciled (complete()/cancel() restore tags to the
fair value).  That engineering is easy to undo with innocent-looking
code: an ``==`` between two float tags (round-off makes it flap), a
mutation of a request's identity after construction (its seqno/cost are
tie-breakers and charge units), or a scheduling decision driven by set
iteration order (hash-salted per process).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Tuple

from ..base import Rule, RuleContext

__all__ = [
    "FloatEqualityRule",
    "FrozenRequestFieldRule",
    "UnorderedIterationRule",
]

#: Attributes that are float-valued virtual-time state wherever they
#: appear in repro.core (tags, charges, costs).
_FLOAT_ATTRS = frozenset(
    {
        "start_tag",
        "finish_tag",
        "charged_cost",
        "credit",
        "reported_usage",
        "cost",
        "arrival_time",
        "dispatch_time",
        "completion_time",
        "deficit",
        "virtual_time",
    }
)


def _is_floatish(node: ast.expr) -> bool:
    """Conservatively true when an expression is certainly float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division is float-valued in Python 3
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_ATTRS
    return False


class FloatEqualityRule(Rule):
    """RPR010: no ``==``/``!=`` between float expressions in ``repro.core``.

    Virtual-time tags accumulate round-off; two tags that are
    mathematically equal are rarely bit-equal, so equality tests on them
    are latent nondeterminism (they flip with summation order).  Compare
    with an explicit tolerance, or restructure so exact comparison is on
    integers (seqnos, epochs) -- as the eligibility slack in
    ``vt_base._eligibility_threshold`` does.
    """

    code: ClassVar[str] = "RPR010"
    name: ClassVar[str] = "float-equality"
    description: ClassVar[str] = (
        "== / != between float expressions in repro.core virtual-time logic"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if not ctx.in_package("core"):
            return
        if not isinstance(node, ast.Compare):
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floatish(left) or _is_floatish(right):
                ctx.report(
                    self,
                    node,
                    "exact ==/!= on float virtual-time values flaps with "
                    "round-off; compare with a tolerance or on integer keys",
                )
                return


#: Request identity fields that must never be reassigned after
#: construction.  (Lifecycle fields -- phase, *_time, thread_id,
#: charging bookkeeping -- are intentionally mutable.)
_FROZEN_FIELDS = frozenset({"tenant_id", "cost", "api", "seqno", "weight"})


def _looks_like_request(node: ast.expr) -> bool:
    """True when an attribute's receiver is, by naming convention, a
    :class:`~repro.core.request.Request` (``request.cost``, ``req.api``,
    ``state.queue[0].seqno``)."""
    if isinstance(node, ast.Name):
        name = node.id
        return (
            name in ("request", "req", "head")
            or name.endswith("_request")
            or name.endswith("_req")
        )
    if isinstance(node, ast.Subscript):
        value = node.value
        return isinstance(value, ast.Attribute) and value.attr == "queue"
    return False


class FrozenRequestFieldRule(Rule):
    """RPR011: request identity is frozen after construction.

    ``seqno`` is the global deterministic tie-breaker, ``cost`` the unit
    every charge reconciles against, and estimators key their state on
    ``(tenant_id, api)``: reassigning any of them mid-flight corrupts
    bookkeeping that assumes they are constants.  The rule matches
    attribute stores on receivers named like requests (``request``,
    ``req``, ``head``, ``*_request``) and on queue heads
    (``<x>.queue[0]``).
    """

    code: ClassVar[str] = "RPR011"
    name: ClassVar[str] = "frozen-request-field"
    description: ClassVar[str] = (
        "assignment to a frozen Request identity field "
        "(tenant_id/cost/api/seqno/weight)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (
        ast.Assign,
        ast.AugAssign,
        ast.AnnAssign,
    )

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _FROZEN_FIELDS
                and _looks_like_request(target.value)
            ):
                ctx.report(
                    self,
                    target,
                    f"request identity field `{target.attr}` is frozen "
                    "after construction (it feeds tie-breaking and charge "
                    "reconciliation); build a new Request instead",
                )


class UnorderedIterationRule(Rule):
    """RPR012: no iteration over set-typed expressions.

    Set iteration order depends on insertion history *and* the
    per-process hash salt for strings, so any scheduling decision (or
    request construction order) fed by it differs between runs.  Dicts
    are fine -- Python dicts iterate in insertion order, which the
    backlog bookkeeping in ``vt_base`` deliberately relies on -- but a
    set must be passed through ``sorted(...)`` first.
    """

    code: ClassVar[str] = "RPR012"
    name: ClassVar[str] = "unordered-iteration"
    description: ClassVar[str] = (
        "iteration over a set (hash-salted order); wrap in sorted(...)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (
        ast.For,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        iters = []
        if isinstance(node, ast.For):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            if self._is_set_expr(it):
                ctx.report(
                    self,
                    it,
                    "iterating a set feeds hash-salted order into the "
                    "simulation; wrap the set in sorted(...)",
                )
