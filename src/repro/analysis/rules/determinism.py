"""Determinism rules: RPR001 (wall clock) and RPR002 (unseeded RNG).

The whole reproduction depends on runs being a pure function of their
configuration: the parallel engine's bit-identical serial/parallel
guarantee, the content-addressed run cache, and the golden-trace tests
all assume that re-executing a cell yields byte-identical results.  A
single ``time.time()`` in simulation logic, or one draw from a global
RNG, silently breaks every one of those contracts -- the failure mode
the reproducibility literature on request-cloning models documents.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, Optional, Tuple

from ..base import Rule, RuleContext

__all__ = ["WallClockRule", "UnseededRngRule"]


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTrackingRule(Rule):
    """Shared machinery: resolve local names through import aliases."""

    node_types: ClassVar[Tuple[type, ...]] = (
        ast.Import,
        ast.ImportFrom,
        ast.Call,
    )

    def start_module(self, ctx: RuleContext) -> None:
        #: local alias -> fully qualified dotted name
        self._aliases: Dict[str, str] = {}

    def _record_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self._aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                self._aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    def _resolve(self, node: ast.expr) -> Optional[str]:
        """Fully qualified dotted name of a call target, through aliases."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        full_head = self._aliases.get(head, head)
        return f"{full_head}.{rest}" if rest else full_head


#: Wall-clock reads that make a run irreproducible.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Suffixes matched when the receiver is an imported-from name
#: (``from datetime import datetime; datetime.now()``).
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")


class WallClockRule(_ImportTrackingRule):
    """RPR001: no wall-clock reads anywhere under ``src/repro``.

    Simulated time is :attr:`repro.simulator.clock.Simulation.now`;
    anything derived from the host's clock differs between runs and
    machines.  The few legitimate wall-clock sites -- run telemetry
    timers in :mod:`repro.obs.registry`, worker timeouts in
    :mod:`repro.parallel.engine` -- carry explicit
    ``# repro: ignore[RPR001]`` suppressions, which doubles as an
    auditable inventory of every place the host clock leaks in.
    """

    code: ClassVar[str] = "RPR001"
    name: ClassVar[str] = "wall-clock"
    description: ClassVar[str] = (
        "wall-clock read (time.time/perf_counter/datetime.now...) in "
        "simulation code; use Simulation.now"
    )

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._record_import(node)
            return
        if not isinstance(node, ast.Call):
            return
        target = self._resolve(node.func)
        if target is None:
            return
        if target in _WALL_CLOCK_CALLS or any(
            target == s or target.endswith("." + s) for s in _WALL_CLOCK_SUFFIXES
        ):
            ctx.report(
                self,
                node,
                f"wall-clock call `{target}()` breaks run determinism; "
                "simulated time must come from Simulation.now",
            )


#: numpy.random construction entry points that *are* allowed -- but only
#: inside repro/simulator/rng.py, the single RNG chokepoint.
_NP_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)


class UnseededRngRule(_ImportTrackingRule):
    """RPR002: all randomness flows from ``repro.simulator.rng.make_rng``.

    Three violation shapes:

    * importing the stdlib :mod:`random` module at all (its global state
      is seeded from the OS, and even ``random.Random(seed)`` bypasses
      the per-component stream derivation ``make_rng`` provides);
    * calling a ``numpy.random`` *module-level* function
      (``np.random.random()``, ``np.random.seed()``, ...), which mutates
      hidden global generator state;
    * constructing a generator (``np.random.default_rng``,
      ``SeedSequence``, bit generators) anywhere other than
      ``repro/simulator/rng.py`` -- new streams must be derived through
      :func:`~repro.simulator.rng.make_rng` so they stay stable under
      component reordering.
    """

    code: ClassVar[str] = "RPR002"
    name: ClassVar[str] = "unseeded-rng"
    description: ClassVar[str] = (
        "stdlib random / numpy.random global state / generator "
        "construction outside repro.simulator.rng"
    )

    def _in_rng_module(self, ctx: RuleContext) -> bool:
        return ctx.parts[-2:] == ("simulator", "rng")

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if isinstance(node, ast.Import):
            self._record_import(node)
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    ctx.report(
                        self,
                        node,
                        "stdlib `random` is banned: derive a stream with "
                        "repro.simulator.rng.make_rng(seed, *key)",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            self._record_import(node)
            if node.module == "random" and not node.level:
                ctx.report(
                    self,
                    node,
                    "stdlib `random` is banned: derive a stream with "
                    "repro.simulator.rng.make_rng(seed, *key)",
                )
            return
        if not isinstance(node, ast.Call):
            return
        target = self._resolve(node.func)
        if target is None or not target.startswith("numpy.random."):
            return
        if target in _NP_CONSTRUCTORS:
            if not self._in_rng_module(ctx):
                ctx.report(
                    self,
                    node,
                    f"`{target}` outside repro.simulator.rng: new streams "
                    "must be derived via make_rng(seed, *key)",
                )
            return
        member = target.rsplit(".", 1)[1]
        if member[:1].islower():
            # Module-level convenience functions share one hidden global
            # generator; class references (annotations, isinstance) and
            # capitalized constructors were handled above.
            ctx.report(
                self,
                node,
                f"`{target}()` draws from numpy's global RNG state; use a "
                "Generator from repro.simulator.rng.make_rng",
            )
