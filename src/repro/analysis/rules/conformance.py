"""Scheduler-conformance rules: RPR020, RPR021, and RPR022.

These are the cross-file rules: they consume the
:class:`~repro.analysis.project.ProjectModel` the engine accumulates
while walking every module, and report from ``finish_project``.
"""

from __future__ import annotations

from typing import ClassVar

from ..base import Reporter, Rule
from ..project import ProjectModel

__all__ = ["SchedulerSurfaceRule", "TracerPairingRule", "IndexSurfaceRule"]

#: The full scheduler API surface (DESIGN.md §4 contract): every
#: registered scheduler must provide each of these, directly or through
#: a base class in the analyzed tree.
_SURFACE = (
    "enqueue",
    "dequeue",
    "refresh",
    "complete",
    "cancel",
)


class SchedulerSurfaceRule(Rule):
    """RPR020: registered schedulers implement the full surface.

    Walks every class name registered in ``SCHEDULER_CLASSES``
    (``repro.core.registry``) and requires a *concrete* definition of
    each surface method somewhere along its by-name base chain --
    ``@abstractmethod`` declarations and ``raise NotImplementedError``
    stubs do not count.  This is what keeps
    :class:`~repro.simulator.server.ThreadPoolServer`, the fault
    injector's cancel path, and the watchdog proxy oblivious to which of
    the 8 policies they drive.
    """

    code: ClassVar[str] = "RPR020"
    name: ClassVar[str] = "scheduler-surface"
    description: ClassVar[str] = (
        "registered scheduler missing a concrete "
        "enqueue/dequeue/refresh/complete/cancel implementation"
    )

    def finish_project(self, project: ProjectModel, report: Reporter) -> None:
        for reg in project.registered:
            info = project.resolve(reg.class_name, reg.module)
            if info is None:
                report(
                    reg.path,
                    reg.lineno,
                    reg.col,
                    self.code,
                    f"registered scheduler `{reg.class_name}` is not defined "
                    "in the analyzed tree (run the analyzer over the whole "
                    "package so its base chain is visible)",
                    self.name,
                )
                continue
            for method in _SURFACE:
                found = project.find_method(info.name, method, info.module)
                if found is None:
                    report(
                        info.path,
                        info.lineno,
                        info.col,
                        self.code,
                        f"scheduler `{info.name}` (registered in "
                        f"{reg.module}) has no `{method}` implementation "
                        "anywhere in its base chain",
                        self.name,
                    )
                    continue
                owner, impl = found
                if impl.is_abstract or impl.is_stub:
                    report(
                        info.path,
                        info.lineno,
                        info.col,
                        self.code,
                        f"scheduler `{info.name}` inherits `{method}` only "
                        f"as an abstract/stub declaration "
                        f"(from `{owner.name}`); a concrete implementation "
                        "is required",
                        self.name,
                    )


#: State-mutating hooks of the virtual-time framework and the trace
#: emission their base implementations perform.  An override that
#: neither references ``_trace`` nor defers to ``super()`` silently
#: drops those events, starving the obs pipeline (golden traces,
#: Chrome-trace export, the watchdog's non-strict reporting).
_INSTRUMENTED_HOOKS = {
    "enqueue": "enqueue",
    "dequeue": "select/dispatch",
    "complete": "complete",
    "cancel": "cancel",
    "_cancel_queued": "vt_update",
    "_cancel_running": "vt_update",
}


class TracerPairingRule(Rule):
    """RPR021: overridden state-mutating hooks keep their obs events.

    For every class deriving (by name) from ``VirtualTimeScheduler``:
    each override of an instrumented hook must either reference
    ``self._trace`` (the guarded-emission idiom) or call
    ``super().<hook>()`` so the instrumented base implementation still
    runs.
    """

    code: ClassVar[str] = "RPR021"
    name: ClassVar[str] = "tracer-pairing"
    description: ClassVar[str] = (
        "VirtualTimeScheduler hook override drops its paired repro.obs "
        "tracer event (no _trace reference, no super() call)"
    )

    _ROOT: ClassVar[str] = "VirtualTimeScheduler"

    def finish_project(self, project: ProjectModel, report: Reporter) -> None:
        for infos in project.classes.values():
            for info in infos:
                in_framework = info.name == self._ROOT or project.derives_from(
                    info.name, self._ROOT, info.module
                )
                if not in_framework:
                    continue
                for hook, event in _INSTRUMENTED_HOOKS.items():
                    impl = info.methods.get(hook)
                    if impl is None or impl.is_abstract or impl.is_stub:
                        continue
                    if impl.references_trace or impl.calls_super_same:
                        continue
                    report(
                        info.path,
                        impl.lineno,
                        impl.col,
                        self.code,
                        f"`{info.name}.{hook}` overrides an instrumented "
                        f"hook without emitting its paired `{event}` trace "
                        "event (reference self._trace or call "
                        f"super().{hook}(...))",
                        self.name,
                    )


class IndexSurfaceRule(Rule):
    """RPR022: the indexed-selection and batch-dispatch surfaces stay
    paired below ``VirtualTimeScheduler``.

    Two halves, both protecting differential identities the framework
    relies on:

    * a subclass that advertises an index layout by overriding
      ``_index_spec`` concretely must have a concrete
      ``_select_indexed`` somewhere along its by-name base chain --
      otherwise ``indexed=True`` (and the adaptive default's rising
      edge) routes straight into the base stub's
      ``NotImplementedError`` mid-run;
    * a subclass that overrides ``dequeue`` must also override
      ``dequeue_batch``: the base ``dequeue_batch`` inlines the *base*
      dequeue body for the untraced hot path, so an inherited batch
      path would silently dispatch with the old policy whenever
      several workers free at once.
    """

    code: ClassVar[str] = "RPR022"
    name: ClassVar[str] = "index-surface"
    description: ClassVar[str] = (
        "VirtualTimeScheduler subclass breaks the indexed-selection "
        "pairing (_index_spec without a concrete _select_indexed, or "
        "dequeue overridden without dequeue_batch)"
    )

    _ROOT: ClassVar[str] = "VirtualTimeScheduler"

    def finish_project(self, project: ProjectModel, report: Reporter) -> None:
        for infos in project.classes.values():
            for info in infos:
                if info.name == self._ROOT or not project.derives_from(
                    info.name, self._ROOT, info.module
                ):
                    continue
                spec = info.methods.get("_index_spec")
                if spec is not None and not (spec.is_abstract or spec.is_stub):
                    found = project.find_method(
                        info.name, "_select_indexed", info.module
                    )
                    if found is None or found[1].is_abstract or found[1].is_stub:
                        report(
                            info.path,
                            spec.lineno,
                            spec.col,
                            self.code,
                            f"`{info.name}` overrides `_index_spec` but has "
                            "no concrete `_select_indexed` in its base "
                            "chain; indexed mode (including the adaptive "
                            "default) would raise mid-run",
                            self.name,
                        )
                deq = info.methods.get("dequeue")
                if (
                    deq is not None
                    and not (deq.is_abstract or deq.is_stub)
                    and "dequeue_batch" not in info.methods
                ):
                    report(
                        info.path,
                        deq.lineno,
                        deq.col,
                        self.code,
                        f"`{info.name}` overrides `dequeue` without "
                        "overriding `dequeue_batch`; the inherited batch "
                        "path inlines the base dequeue and would dispatch "
                        "with the old policy",
                        self.name,
                    )
