"""Inline suppressions: ``# repro: ignore[RPR0xx]``.

A suppression comment names the rule codes it silences and applies to
findings on its own line.  Suppressions are accounted for: one that
silences nothing is itself reported (``RPR000``), so stale ignores
cannot accumulate -- the same contract as mypy's
``warn_unused_ignores``.  A bare ``# repro: ignore`` without a code
list is rejected as malformed rather than treated as a blanket waiver.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["Suppression", "SuppressionIndex", "UNUSED_SUPPRESSION_CODE"]

#: Code under which unused or malformed suppressions are reported.
UNUSED_SUPPRESSION_CODE = "RPR000"

_COMMENT_RE = re.compile(r"#\s*repro:\s*ignore\b(?P<codes>\[[^\]]*\])?")
_CODE_RE = re.compile(r"RPR\d{3}")


@dataclass
class Suppression:
    """One ``# repro: ignore[...]`` comment."""

    line: int
    col: int
    codes: Tuple[str, ...]
    malformed: bool = False
    used_codes: Set[str] = field(default_factory=set)

    def suppresses(self, code: str) -> bool:
        return not self.malformed and code in self.codes

    @property
    def unused_codes(self) -> Tuple[str, ...]:
        return tuple(c for c in self.codes if c not in self.used_codes)


class SuppressionIndex:
    """All suppression comments of one module, keyed by line."""

    def __init__(self, suppressions: Iterable[Suppression] = ()) -> None:
        self._by_line: Dict[int, List[Suppression]] = {}
        for sup in suppressions:
            self._by_line.setdefault(sup.line, []).append(sup)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan ``source`` for suppression comments.

        Uses :mod:`tokenize` so comment-looking text inside string
        literals is never misread as a suppression.  Sources that fail
        to tokenize yield an empty index (the analyzer reports the parse
        failure separately).
        """
        sups: List[Suppression] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _COMMENT_RE.search(tok.string)
                if match is None:
                    continue
                raw = match.group("codes")
                codes = tuple(_CODE_RE.findall(raw)) if raw else ()
                sups.append(
                    Suppression(
                        line=tok.start[0],
                        col=tok.start[1],
                        codes=codes,
                        malformed=not codes,
                    )
                )
        except (tokenize.TokenizeError, IndentationError, SyntaxError):
            return cls()
        return cls(sups)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_line.values())

    def suppressed(self, line: int, code: str) -> bool:
        """True if a suppression covers ``code`` on ``line``; marks it used."""
        hit = False
        for sup in self._by_line.get(line, ()):
            if sup.suppresses(code):
                sup.used_codes.add(code)
                hit = True
        return hit

    def all_suppressions(self) -> List[Suppression]:
        out: List[Suppression] = []
        for line in sorted(self._by_line):
            out.extend(self._by_line[line])
        return out
