"""Flow-sensitive dimension & taint dataflow analysis (DESIGN.md §17).

The single-pass visitor engine of :mod:`repro.analysis` catches
*syntactic* hazards -- a wall-clock call, a float ``==``.  This package
adds an intraprocedural, flow-sensitive abstract-interpretation layer
that catches *semantic* ones: a ``sim_time + virtual_time`` mix-up three
assignments away from either source, a seeded-RNG draw that ends up in
a heap key, a host-clock read that flows into simulated state.

Layout:

* :mod:`~repro.analysis.dataflow.lattice` -- the dimension lattice
  (``Unknown < {sim_time, wall_time, virtual_time, duration, cost,
  rate, weight, dimensionless} < Conflict``), the join, and the
  arithmetic transfer tables;
* :mod:`~repro.analysis.dataflow.summaries` -- the units model built
  over the whole analyzed tree: per-class attribute dimensions,
  per-function parameter/return summaries (from :mod:`repro.units`
  annotations, seeded by the registry, closed by one inference pass);
* :mod:`~repro.analysis.dataflow.interp` -- the abstract interpreter
  that walks each function body in control-flow order, joining
  environments at merges and iterating loops to a fixpoint, and emits
  the hazard records the RPR1xx rules report.

The rules themselves live in :mod:`repro.analysis.rules.dataflow` so
they register in the ordinary catalogue; they share one analysis run
per project via :func:`get_dataflow_report`.
"""

from __future__ import annotations

from .lattice import (
    CONFLICT,
    DIMENSIONLESS,
    UNKNOWN,
    AbstractValue,
    binop_transfer,
    compatible,
    join,
)
from .interp import DataflowReport, FunctionAnalysis, analyze_project, get_dataflow_report
from .summaries import FunctionSummary, UnitsModel, build_units_model

__all__ = [
    "UNKNOWN",
    "CONFLICT",
    "DIMENSIONLESS",
    "AbstractValue",
    "join",
    "compatible",
    "binop_transfer",
    "UnitsModel",
    "FunctionSummary",
    "build_units_model",
    "DataflowReport",
    "FunctionAnalysis",
    "analyze_project",
    "get_dataflow_report",
]
