"""The abstract interpreter behind the RPR1xx rules.

One :class:`FunctionAnalysis` walks one function body in control-flow
order over an abstract environment mapping names (locals, plus
``recv.attr`` pseudo-names for attribute state) to
:class:`~repro.analysis.dataflow.lattice.AbstractValue`.  Branches are
interpreted on copies of the environment and joined at the merge;
loops iterate to a (bounded) fixpoint, which the shallow lattice
reaches in a couple of rounds.  Hazards are emitted as structured
records; the rule classes in :mod:`repro.analysis.rules.dataflow`
translate them into findings.

Hazard kinds and their rules::

    arith      RPR101  additive arithmetic over incompatible dimensions
    compare    RPR102  ordering comparison over incompatible dimensions
    boundary   RPR103  concrete dimension mismatch at an annotated
                       boundary (call argument, return, annotated or
                       declared-attribute assignment)
    rng_order  RPR110  RNG-tainted value reaching ordering-sensitive
                       scheduler state (scheduler classes only)
    wall_sim   RPR111  host-clock-tainted value reaching sim_time /
                       virtual_time state

Taint is sticky where dimension is not: arithmetic that would launder a
dimension into ``Unknown`` keeps the RNG/wall bits, so RPR110/RPR111
catch flows the dimension lattice alone would lose.  Deliberate
imprecision (documented in DESIGN.md §17): the analysis is
intraprocedural -- call results adopt the callee's *dimension* summary
but never its taint -- and module-level script code is not interpreted.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...units import (
    ATTRIBUTE_DIMS,
    CALLABLE_DIMS,
    CALLABLE_PARAM_DIMS,
    ORDERING_SENSITIVE_ATTRS,
    RNG_FACTORY_CALLS,
    WALL_CLOCK_CALLS,
)
from ..project import ProjectModel
from .lattice import (
    CONFLICT,
    DIMENSIONLESS,
    UNKNOWN,
    AbstractValue,
    binop_transfer,
    compatible,
    join_values,
)
from .summaries import FunctionSummary, UnitsModel, annotation_dim, build_units_model

__all__ = [
    "Hazard",
    "DataflowReport",
    "FunctionAnalysis",
    "analyze_project",
    "get_dataflow_report",
]

#: Environment type: name (or ``recv.attr`` pseudo-name) -> value.
Env = Dict[str, AbstractValue]

_BOTTOM = AbstractValue()

#: Sink dimensions for the host-clock rule: simulated state.
_SIM_DIMS = frozenset({"sim_time", "virtual_time"})

#: Operator node type -> surface spelling for transfer dispatch.
_OP_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mod: "%",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
}

#: Comparison operators that demand dimensional compatibility.
_ORDERED_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: Loop-fixpoint iteration bound; the lattice has height 2 per variable
#: so two rounds usually suffice, four is safety margin.
_MAX_LOOP_ROUNDS = 4


@dataclass(frozen=True)
class Hazard:
    """One dataflow hazard at one source location."""

    kind: str
    path: str
    line: int
    col: int
    message: str


@dataclass
class DataflowReport:
    """All hazards from one whole-project analysis run."""

    hazards: List[Hazard] = field(default_factory=list)
    functions_analyzed: int = 0

    def by_kind(self, kind: str) -> List[Hazard]:
        return [h for h in self.hazards if h.kind == kind]


def _describe(node: ast.expr) -> str:
    """Short source spelling of an expression for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on real trees
        return "<expr>"
    return text if len(text) <= 45 else text[:42] + "..."


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Top-level import aliases: local name -> fully qualified name."""
    aliases: Dict[str, str] = {}
    for node in tree.body:
        _record_import(node, aliases)
    return aliases


def _record_import(node: ast.stmt, aliases: Dict[str, str]) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname:
                aliases[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                aliases[head] = head
    elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
        for alias in node.names:
            aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FunctionAnalysis:
    """Interpret one function body; collect hazards and the return dim."""

    def __init__(
        self,
        model: UnitsModel,
        summary: FunctionSummary,
        aliases: Dict[str, str],
        *,
        collect: bool = True,
    ) -> None:
        self.model = model
        self.summary = summary
        self.aliases = dict(aliases)
        self.collect = collect
        self.hazards: List[Hazard] = []
        self.return_value: AbstractValue = _BOTTOM
        self._saw_return = False
        self._seen: Set[Tuple[int, int, str]] = set()
        self._is_scheduler = (
            summary.class_name is not None
            and model.is_scheduler_class(summary.class_name, summary.module)
        )

    # -- reporting ---------------------------------------------------------

    def _report(self, kind: str, node: ast.AST, message: str) -> None:
        if not self.collect:
            return
        line = getattr(node, "lineno", self.summary.lineno)
        col = getattr(node, "col_offset", 0)
        key = (line, col, kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self.hazards.append(
            Hazard(
                kind=kind,
                path=self.summary.path,
                line=line,
                col=col,
                message=message,
            )
        )

    # -- entry point -------------------------------------------------------

    def run(self) -> AbstractValue:
        node = self.summary.node
        if node is None:  # registry-only summaries have no body
            return _BOTTOM
        env: Env = {}
        for name, dim in self.summary.params:
            value = AbstractValue(dim or UNKNOWN)
            if dim == "wall_time":
                # A parameter *declared* host time is a taint source:
                # the annotation is the hand-off point.
                value = AbstractValue(dim, wall=True)
            env[name] = value
        self._exec_block(node.body, env)
        return self.return_value

    # -- environments ------------------------------------------------------

    @staticmethod
    def _join_env(a: Env, b: Env) -> Env:
        out: Env = {}
        for key in a.keys() | b.keys():
            out[key] = join_values(a.get(key, _BOTTOM), b.get(key, _BOTTOM))
        return out

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt], env: Env) -> Env:
        for stmt in stmts:
            env = self._exec_stmt(stmt, env)
        return env

    def _exec_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, value, env, stmt.value)
            return env
        if isinstance(stmt, ast.AnnAssign):
            declared = annotation_dim(stmt.annotation)
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                if declared is not None:
                    self._check_annotated_assign(stmt, value, declared)
                    value = value.with_dim(declared)
                self._bind_target(stmt.target, value, env, stmt.value)
            elif declared is not None:
                self._bind_target(
                    stmt.target, AbstractValue(declared), env, None
                )
            return env
        if isinstance(stmt, ast.AugAssign):
            op = _OP_SYMBOLS.get(type(stmt.op))
            current = self._eval(stmt.target, env, reading=True)
            value = self._eval(stmt.value, env)
            if op is not None:
                result_dim, hazard = binop_transfer(op, current.dim, value.dim)
                if hazard:
                    self._arith_hazard(stmt, op, stmt.target, current, stmt.value, value)
                merged = AbstractValue(
                    result_dim,
                    rng=current.rng or value.rng,
                    wall=current.wall or value.wall,
                )
            else:
                merged = join_values(current, value)
            self._bind_target(stmt.target, merged, env, stmt.value)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                declared = self.summary.return_dim
                if declared is not None:
                    if value.wall and declared in _SIM_DIMS:
                        self._report(
                            "wall_sim",
                            stmt,
                            "host-clock-derived value returned from "
                            f"`{self.summary.name}()` annotated as {declared}",
                        )
                    elif (
                        value.dim not in (UNKNOWN, CONFLICT, DIMENSIONLESS)
                        and not compatible(value.dim, declared)
                    ):
                        self._report(
                            "boundary",
                            stmt,
                            f"returning {value.dim} value "
                            f"`{_describe(stmt.value)}` from "
                            f"`{self.summary.name}()` annotated -> {declared}",
                        )
                if self._saw_return:
                    self.return_value = join_values(self.return_value, value)
                else:
                    self.return_value = value
                    self._saw_return = True
            return env
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = self._exec_block(stmt.body, dict(env))
            else_env = self._exec_block(stmt.orelse, dict(env))
            return self._join_env(then_env, else_env)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt, env)
        if isinstance(stmt, ast.Try):
            body_env = self._exec_block(stmt.body, dict(env))
            merged = body_env
            for handler in stmt.handlers:
                handler_env = dict(self._join_env(env, body_env))
                if handler.name:
                    handler_env[handler.name] = _BOTTOM
                merged = self._join_env(
                    merged, self._exec_block(handler.body, handler_env)
                )
            merged = self._exec_block(stmt.orelse, merged)
            return self._exec_block(stmt.finalbody, merged)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value, env, None)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
            return env
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            _record_import(stmt, self.aliases)
            return env
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
            return env
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        if isinstance(stmt, ast.Match):
            self._eval(stmt.subject, env)
            merged: Optional[Env] = None
            for case in stmt.cases:
                case_env = self._exec_block(case.body, dict(env))
                merged = (
                    case_env if merged is None
                    else self._join_env(merged, case_env)
                )
            return self._join_env(env, merged) if merged is not None else env
        # Nested definitions, pass, break, continue, global, nonlocal:
        # no dataflow effect at this level of precision.
        return env

    def _exec_loop(self, stmt: ast.stmt, env: Env) -> Env:
        loop_env = dict(env)
        for _ in range(_MAX_LOOP_ROUNDS):
            trial = dict(loop_env)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                iterable = self._eval(stmt.iter, trial)
                # Iteration element: dimension unknown, taints inherited
                # (iterating a tainted collection yields tainted items).
                self._bind_target(
                    stmt.target,
                    AbstractValue(UNKNOWN, rng=iterable.rng, wall=iterable.wall),
                    trial,
                    None,
                )
            else:
                self._eval(stmt.test, trial)  # type: ignore[attr-defined]
            after = self._exec_block(stmt.body, trial)
            new_env = self._join_env(loop_env, after)
            if new_env == loop_env:
                break
            loop_env = new_env
        env = self._join_env(env, loop_env)
        orelse = getattr(stmt, "orelse", [])
        return self._exec_block(orelse, env)

    # -- binding and sinks -------------------------------------------------

    def _bind_target(
        self,
        target: ast.expr,
        value: AbstractValue,
        env: Env,
        value_node: Optional[ast.expr],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.Attribute):
            self._check_attr_sinks(target, value, value_node)
            if isinstance(target.value, ast.Name):
                # A dimensionless/unknown write into a *declared* slot
                # (`self._active_weight = 0.0` resetting a Weight) keeps
                # the declared dimension: the declaration is
                # authoritative, and rebinding the pseudo-variable to
                # DIMENSIONLESS would launder later reads (`cost /
                # self._active_weight` losing its virtual_time result).
                if value.dim in (UNKNOWN, DIMENSIONLESS):
                    declared = self._declared_attr_dim(target)
                    if declared is not None:
                        value = value.with_dim(declared)
                env[f"{target.value.id}.{target.attr}"] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if (
                value_node is not None
                and isinstance(value_node, (ast.Tuple, ast.List))
                and len(value_node.elts) == len(target.elts)
            ):
                # Positional unpack of a literal tuple keeps per-element
                # precision; this is how `a, b = b, a` swaps stay typed.
                for sub_target, sub_value in zip(target.elts, value_node.elts):
                    self._bind_target(
                        sub_target, self._eval(sub_value, env), env, sub_value
                    )
            else:
                element = AbstractValue(UNKNOWN, rng=value.rng, wall=value.wall)
                for sub_target in target.elts:
                    self._bind_target(sub_target, element, env, None)
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, value, env, None)
        # Subscript targets: no binding at this precision.

    def _declared_attr_dim(self, target: ast.Attribute) -> Optional[str]:
        """Declared dimension of an attribute-assignment target."""
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.summary.class_name is not None
        ):
            declared = self.model.attr_dim(
                self.summary.class_name, target.attr, self.summary.module
            )
            if declared is not None:
                return declared
        return ATTRIBUTE_DIMS.get(target.attr)

    def _check_attr_sinks(
        self,
        target: ast.Attribute,
        value: AbstractValue,
        value_node: Optional[ast.expr],
    ) -> None:
        if (
            value.rng
            and self._is_scheduler
            and target.attr in ORDERING_SENSITIVE_ATTRS
        ):
            self._report(
                "rng_order",
                target,
                f"RNG-derived value written to ordering-sensitive "
                f"scheduler state `{_describe(target)}`; seeded draws "
                "must not influence dispatch order",
            )
        declared = self._declared_attr_dim(target)
        if declared is None:
            return
        if value.wall and declared in _SIM_DIMS:
            self._report(
                "wall_sim",
                target,
                f"host-clock-derived value assigned to `{_describe(target)}` "
                f"({declared}); simulated state must come from Simulation.now",
            )
            return
        if value.dim not in (UNKNOWN, CONFLICT, DIMENSIONLESS) and not compatible(
            value.dim, declared
        ):
            self._report(
                "boundary",
                target,
                f"{value.dim} value assigned to `{_describe(target)}`, "
                f"declared {declared}",
            )

    def _check_annotated_assign(
        self, stmt: ast.AnnAssign, value: AbstractValue, declared: str
    ) -> None:
        if value.wall and declared in _SIM_DIMS:
            self._report(
                "wall_sim",
                stmt,
                f"host-clock-derived value bound to "
                f"`{_describe(stmt.target)}` annotated {declared}",
            )
            return
        if value.dim not in (UNKNOWN, CONFLICT, DIMENSIONLESS) and not compatible(
            value.dim, declared
        ):
            self._report(
                "boundary",
                stmt,
                f"{value.dim} value bound to `{_describe(stmt.target)}` "
                f"annotated {declared}",
            )

    def _arith_hazard(
        self,
        node: ast.AST,
        op: str,
        left_node: ast.expr,
        left: AbstractValue,
        right_node: ast.expr,
        right: AbstractValue,
    ) -> None:
        wall, other = None, None
        if left.wall and right.dim in _SIM_DIMS:
            wall, other = left_node, right
        elif right.wall and left.dim in _SIM_DIMS:
            wall, other = right_node, left
        if wall is not None and other is not None:
            self._report(
                "wall_sim",
                node,
                f"host-clock-derived `{_describe(wall)}` combined with "
                f"{other.dim} state",
            )
            return
        self._report(
            "arith",
            node,
            f"dimension conflict: `{_describe(left_node)}` ({left.dim}) "
            f"{op} `{_describe(right_node)}` ({right.dim})",
        )

    # -- expressions -------------------------------------------------------

    def _eval(
        self, node: ast.expr, env: Env, *, reading: bool = False
    ) -> AbstractValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return _BOTTOM
            return AbstractValue(DIMENSIONLESS)
        if isinstance(node, ast.Name):
            return env.get(node.id, _BOTTOM)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            value = _BOTTOM
            for operand in node.values:
                value = join_values(value, self._eval(operand, env))
            return value
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join_values(
                self._eval(node.body, env), self._eval(node.orelse, env)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            rng = wall = False
            for elt in node.elts:
                value = self._eval(elt, env)
                rng, wall = rng or value.rng, wall or value.wall
            return AbstractValue(UNKNOWN, rng=rng, wall=wall)
        if isinstance(node, ast.Dict):
            rng = wall = False
            for sub in list(node.keys) + list(node.values):
                if sub is not None:
                    value = self._eval(sub, env)
                    rng, wall = rng or value.rng, wall or value.wall
            return AbstractValue(UNKNOWN, rng=rng, wall=wall)
        if isinstance(node, ast.Subscript):
            receiver = self._eval(node.value, env)
            self._eval(node.slice, env)
            return AbstractValue(UNKNOWN, rng=receiver.rng, wall=receiver.wall)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            inner = dict(env)
            for gen in node.generators:
                iterable = self._eval(gen.iter, inner)
                self._bind_target(
                    gen.target,
                    AbstractValue(UNKNOWN, rng=iterable.rng, wall=iterable.wall),
                    inner,
                    None,
                )
                for cond in gen.ifs:
                    self._eval(cond, inner)
            if isinstance(node, ast.DictComp):
                self._eval(node.key, inner)
                value = self._eval(node.value, inner)
            else:
                value = self._eval(node.elt, inner)
            return AbstractValue(UNKNOWN, rng=value.rng, wall=value.wall)
        if isinstance(node, ast.Lambda):
            return _BOTTOM
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return _BOTTOM
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind_target(node.target, value, env, node.value)
            return value
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, env)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value, env)
            return _BOTTOM
        return _BOTTOM

    def _eval_attribute(self, node: ast.Attribute, env: Env) -> AbstractValue:
        # Flow-sensitive pseudo-variable first: `recv.attr` written
        # earlier in this function keeps its assigned value.
        if isinstance(node.value, ast.Name):
            pseudo = f"{node.value.id}.{node.attr}"
            if pseudo in env:
                return env[pseudo]
        # Declared dimension through the enclosing class's MRO.
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.summary.class_name is not None
        ):
            declared = self.model.attr_dim(
                self.summary.class_name, node.attr, self.summary.module
            )
            if declared is not None:
                return AbstractValue(
                    declared, wall=declared == "wall_time"
                )
        receiver = self._eval(node.value, env)
        if receiver.rng_generator:
            # Attribute on an RNG generator (a bound method about to be
            # called, or generator state): carries the generator mark.
            return AbstractValue(UNKNOWN, rng_generator=True)
        dim = ATTRIBUTE_DIMS.get(node.attr)
        if dim is not None:
            return AbstractValue(dim, wall=dim == "wall_time")
        return AbstractValue(UNKNOWN, rng=receiver.rng, wall=receiver.wall)

    def _eval_binop(self, node: ast.BinOp, env: Env) -> AbstractValue:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        op = _OP_SYMBOLS.get(type(node.op))
        if op is None:
            return AbstractValue(
                UNKNOWN,
                rng=left.rng or right.rng,
                wall=left.wall or right.wall,
            )
        result_dim, hazard = binop_transfer(op, left.dim, right.dim)
        if hazard:
            self._arith_hazard(node, op, node.left, left, node.right, right)
        return AbstractValue(
            result_dim,
            rng=left.rng or right.rng,
            wall=left.wall or right.wall,
        )

    def _eval_compare(self, node: ast.Compare, env: Env) -> AbstractValue:
        values = [self._eval(node.left, env)]
        values.extend(self._eval(cmp, env) for cmp in node.comparators)
        nodes = [node.left, *node.comparators]
        rng = any(v.rng for v in values)
        wall = any(v.wall for v in values)
        for i, op in enumerate(node.ops):
            if not isinstance(op, _ORDERED_CMPS):
                continue
            a, b = values[i], values[i + 1]
            if not compatible(a.dim, b.dim):
                if (a.wall and b.dim in _SIM_DIMS) or (
                    b.wall and a.dim in _SIM_DIMS
                ):
                    self._report(
                        "wall_sim",
                        node,
                        f"host-clock-derived value compared against "
                        f"{(b if a.wall else a).dim} state",
                    )
                else:
                    self._report(
                        "compare",
                        node,
                        f"dimension conflict in comparison: "
                        f"`{_describe(nodes[i])}` ({a.dim}) vs "
                        f"`{_describe(nodes[i + 1])}` ({b.dim})",
                    )
        if rng and self._is_scheduler:
            self._report(
                "rng_order",
                node,
                "RNG-derived value in a scheduler-class comparison: "
                "seeded draws must not act as dispatch tie-breaks",
            )
        return AbstractValue(DIMENSIONLESS, rng=rng, wall=wall)

    # -- calls -------------------------------------------------------------

    def _resolve_call_target(self, func: ast.expr) -> Optional[str]:
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        full_head = self.aliases.get(head, head)
        return f"{full_head}.{rest}" if rest else full_head

    def _callee_summary(
        self, func: ast.expr, env: Env
    ) -> Optional[FunctionSummary]:
        if isinstance(func, ast.Name):
            target = self.aliases.get(func.id, func.id)
            module, _, name = target.rpartition(".")
            if module:
                summary = self.model.function_summary(module, name)
                if summary is not None:
                    return summary
            return self.model.function_summary(self.summary.module, func.id)
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.summary.class_name is not None
            ):
                return self.model.method_summary(
                    self.summary.class_name, func.attr, self.summary.module
                )
        return None

    def _eval_call(self, node: ast.Call, env: Env) -> AbstractValue:
        func = node.func
        target = self._resolve_call_target(func)
        final_name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )

        # Host-clock and RNG sources.
        if target is not None and (
            target in WALL_CLOCK_CALLS or final_name in WALL_CLOCK_CALLS
        ):
            self._eval_args_only(node, env)
            return AbstractValue("wall_time", wall=True)
        if target is not None and (
            target in RNG_FACTORY_CALLS or final_name in RNG_FACTORY_CALLS
        ):
            self._eval_args_only(node, env)
            return AbstractValue(UNKNOWN, rng_generator=True)

        # Draws from an RNG generator receiver.
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, env)
            if receiver.rng_generator:
                self._eval_args_only(node, env)
                return AbstractValue(UNKNOWN, rng=True)

        # Dimension-transparent builtins.  min/max return one of their
        # operands, so a dimensionless clamp bound (``max(0.0, cost)``)
        # must not launder the concrete dimension through the join.
        if isinstance(func, ast.Name) and func.id in ("min", "max", "abs", "sorted"):
            values = [self._eval(arg, env) for arg in node.args]
            for kw in node.keywords:
                self._eval(kw.value, env)
            concrete = {
                v.dim
                for v in values
                if v.dim not in (UNKNOWN, CONFLICT, DIMENSIONLESS)
            }
            rng = any(v.rng for v in values)
            wall = any(v.wall for v in values)
            if len(concrete) == 1 and not any(
                v.dim in (UNKNOWN, CONFLICT) for v in values
            ):
                return AbstractValue(concrete.pop(), rng=rng, wall=wall)
            value = _BOTTOM
            for v in values:
                value = join_values(value, v)
            return value
        if isinstance(func, ast.Name) and func.id in ("float", "int", "round"):
            if len(node.args) == 1 and not node.keywords:
                return self._eval(node.args[0], env)

        # Heap pushes: ordering-sensitive sink for RNG taint.
        if final_name in ("heappush", "heappushpop", "heapreplace"):
            self._check_heap_push(node, env)
            return _BOTTOM

        summary = self._callee_summary(func, env)
        if summary is not None:
            self._check_call_boundary(node, summary.params, summary.name, env)
            declared = summary.effective_return_dim
            return AbstractValue(declared or UNKNOWN)

        # Registry fallback for well-known method names.
        if final_name is not None and final_name in CALLABLE_PARAM_DIMS:
            self._check_call_boundary(
                node, CALLABLE_PARAM_DIMS[final_name], final_name, env
            )
            return AbstractValue(CALLABLE_DIMS.get(final_name, UNKNOWN))
        if final_name is not None and final_name in CALLABLE_DIMS:
            self._eval_args_only(node, env)
            return AbstractValue(CALLABLE_DIMS[final_name])

        self._eval_args_only(node, env)
        return _BOTTOM

    def _eval_args_only(self, node: ast.Call, env: Env) -> None:
        for arg in node.args:
            self._eval(arg, env)
        for kw in node.keywords:
            self._eval(kw.value, env)

    def _check_heap_push(self, node: ast.Call, env: Env) -> None:
        for arg in node.args:
            elements = (
                arg.elts if isinstance(arg, (ast.Tuple, ast.List)) else [arg]
            )
            for element in elements:
                value = self._eval(element, env)
                if value.rng and self._is_scheduler:
                    self._report(
                        "rng_order",
                        element,
                        f"RNG-derived value `{_describe(element)}` used in "
                        "a scheduler heap key; seeded draws must not "
                        "influence dispatch order",
                    )
        for kw in node.keywords:
            self._eval(kw.value, env)

    def _check_call_boundary(
        self,
        node: ast.Call,
        params: Tuple[Tuple[str, Optional[str]], ...],
        callee: str,
        env: Env,
    ) -> None:
        by_name = dict(params)
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self._eval(arg, env)
                continue
            value = self._eval(arg, env)
            declared = params[index][1] if index < len(params) else None
            self._check_one_boundary(arg, value, declared, callee)
        for kw in node.keywords:
            value = self._eval(kw.value, env)
            declared = by_name.get(kw.arg) if kw.arg is not None else None
            self._check_one_boundary(kw.value, value, declared, callee)

    def _check_one_boundary(
        self,
        arg: ast.expr,
        value: AbstractValue,
        declared: Optional[str],
        callee: str,
    ) -> None:
        if declared is None:
            return
        if value.wall and declared in _SIM_DIMS:
            self._report(
                "wall_sim",
                arg,
                f"host-clock-derived `{_describe(arg)}` passed to "
                f"`{callee}()` parameter annotated {declared}",
            )
            return
        if value.dim in (UNKNOWN, CONFLICT, DIMENSIONLESS):
            return
        # Boundaries demand the *exact* declared dimension, not additive
        # compatibility: a Duration passed where a SimTime parameter is
        # declared type-checks under `+`/`-` rules but is the classic
        # point-vs-length bug (`sim.at(interval, ...)` schedules the
        # first sample at ABSOLUTE time `interval`, which is in the past
        # for any collector attached after t=0).
        if value.dim != declared:
            self._report(
                "boundary",
                arg,
                f"{value.dim} value `{_describe(arg)}` passed to "
                f"`{callee}()` parameter annotated {declared}",
            )


def analyze_project(project: ProjectModel) -> DataflowReport:
    """Run the full two-phase dataflow analysis over a project.

    Phase 1 interprets every function with hazard collection off,
    recording an *inferred* return dimension for functions without a
    return annotation -- one round of cross-function propagation.
    Phase 2 re-interprets everything with the completed summary table
    and collects hazards.
    """
    model = build_units_model(project)
    aliases_by_module: Dict[str, Dict[str, str]] = {
        mod.module: _module_aliases(mod.tree) for mod in project.modules
    }
    summaries = model.all_summaries()

    for summary in summaries:
        if summary.return_dim is not None or summary.node is None:
            continue
        analysis = FunctionAnalysis(
            model,
            summary,
            aliases_by_module.get(summary.module, {}),
            collect=False,
        )
        result = analysis.run()
        if result.dim not in (UNKNOWN, CONFLICT):
            summary.inferred_return_dim = result.dim

    report = DataflowReport()
    for summary in summaries:
        if summary.node is None:
            continue
        analysis = FunctionAnalysis(
            model, summary, aliases_by_module.get(summary.module, {})
        )
        analysis.run()
        report.hazards.extend(analysis.hazards)
        report.functions_analyzed += 1
    report.hazards.sort(key=lambda h: (h.path, h.line, h.col, h.kind))
    return report


#: Bump to invalidate on-disk dataflow caches when the analysis itself
#: changes (lattice, transfer functions, rule semantics).
_CACHE_SCHEMA = 3


def _project_digest(project: ProjectModel) -> str:
    """SHA-256 over the analyzed sources, same path+NUL+bytes framing as
    :func:`repro.parallel.cache.source_digest` so one hashing idiom
    covers both caches.  Keyed additionally on the cache schema version
    because the hazards depend on the analyzer, not only the inputs."""
    digest = hashlib.sha256()
    digest.update(f"dataflow-schema-{_CACHE_SCHEMA}".encode())
    digest.update(b"\0")
    for mod in sorted(project.modules, key=lambda m: m.path):
        digest.update(mod.path.encode())
        digest.update(b"\0")
        try:
            with open(mod.path, "rb") as fh:
                digest.update(fh.read())
        except OSError:
            # Unreadable source: key on the path alone; the entry still
            # differs from a tree where the file was readable.
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    return digest.hexdigest()


def _load_cached_report(path: str) -> Optional[DataflowReport]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return DataflowReport(
            hazards=[Hazard(**h) for h in payload["hazards"]],
            functions_analyzed=int(payload["functions_analyzed"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None  # corrupt or missing entry: treated as a miss


def _store_cached_report(path: str, report: DataflowReport) -> None:
    payload = {
        "hazards": [
            {
                "kind": h.kind,
                "path": h.path,
                "line": h.line,
                "col": h.col,
                "message": h.message,
            }
            for h in report.hazards
        ],
        "functions_analyzed": report.functions_analyzed,
    }
    directory = os.path.dirname(path) or "."
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)  # atomic: no torn entries for readers
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # cache is best-effort; analysis already succeeded


def get_dataflow_report(project: ProjectModel) -> DataflowReport:
    """The per-analyzer-run shared report (computed once, cached on the
    project's scratch space however many RPR1xx rules consume it).

    When the engine put a ``dataflow_cache_dir`` into the project's
    scratch space (the CLI's ``--cache DIR``), the report is also
    persisted on disk keyed by the source digest of the analyzed tree,
    so an unchanged tree skips the abstract-interpretation pass
    entirely on the next run.
    """
    cached = project.cache.get("dataflow_report")
    if isinstance(cached, DataflowReport):
        return cached
    cache_dir = project.cache.get("dataflow_cache_dir")
    entry_path: Optional[str] = None
    if isinstance(cache_dir, str) and cache_dir:
        entry_path = os.path.join(
            cache_dir, f"dataflow-{_project_digest(project)}.json"
        )
        report = _load_cached_report(entry_path)
        if report is not None:
            project.cache["dataflow_report"] = report
            project.cache["dataflow_cache_hit"] = True
            return report
    report = analyze_project(project)
    project.cache["dataflow_report"] = report
    if entry_path is not None:
        project.cache["dataflow_cache_hit"] = False
        _store_cached_report(entry_path, report)
    return report
