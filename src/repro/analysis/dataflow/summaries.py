"""The units model: dimension facts harvested from the analyzed tree.

Before any function body is interpreted, one pass over every module
collects the *anchors* the abstract interpreter resolves against:

* **class attribute dimensions** -- from annotated class-body fields
  (dataclass fields like ``cost: Cost``) and annotated ``self.x:
  SimTime = ...`` assignments in method bodies, merged along the
  by-name MRO of :class:`~repro.analysis.project.ProjectModel`;
* **function summaries** -- parameter and return dimensions read off
  :mod:`repro.units` annotations for every function and method, the
  cross-function propagation vehicle: a call site checks its argument
  dimensions against the callee summary (RPR103) and adopts the
  callee's return dimension.  Functions without a return annotation
  get an *inferred* return dimension filled in by the interpreter's
  first pass (see :func:`~repro.analysis.dataflow.interp.analyze_project`);
* **scheduler scope** -- which classes are schedulers (by registry
  membership or a ``Scheduler`` anywhere in their base-name closure),
  the scope in which RPR110's ordering-sensitivity sinks apply.

Name resolution mirrors the rest of :mod:`repro.analysis`: bare-name,
same-module-first, degrading to "unknown, give up" rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...units import UNIT_NAMES
from ..project import ProjectModel

__all__ = ["FunctionSummary", "UnitsModel", "build_units_model", "annotation_dim"]


#: Typing wrappers unwrapped before matching a units alias:
#: ``Optional[SimTime]`` and ``Annotated[float, ...]`` both anchor.
_UNWRAP_NAMES = frozenset({"Optional", "Annotated", "Final", "ClassVar"})


def annotation_dim(node: Optional[ast.expr]) -> Optional[str]:
    """Dimension named by an annotation expression, or ``None``.

    Matches ``SimTime``, ``units.SimTime``, the string form
    ``"SimTime"``, and one level of ``Optional[...]`` wrapping.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip()
        for wrapper in _UNWRAP_NAMES:
            prefix = wrapper + "["
            if name.startswith(prefix) and name.endswith("]"):
                name = name[len(prefix):-1].strip()
        name = name.rsplit(".", 1)[-1]
        return UNIT_NAMES.get(name)
    if isinstance(node, ast.Name):
        return UNIT_NAMES.get(node.id)
    if isinstance(node, ast.Attribute):
        return UNIT_NAMES.get(node.attr)
    if isinstance(node, ast.Subscript):
        head: Optional[str] = None
        if isinstance(node.value, ast.Name):
            head = node.value.id
        elif isinstance(node.value, ast.Attribute):
            head = node.value.attr
        if head in _UNWRAP_NAMES:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return annotation_dim(inner)
    return None


@dataclass
class FunctionSummary:
    """Dimension signature of one function or method."""

    name: str
    module: str
    path: str
    lineno: int
    #: Enclosing class name for methods, ``None`` for module-level.
    class_name: Optional[str]
    #: ``(param_name, dimension-or-None)`` in order, *excluding* a
    #: leading ``self``/``cls`` for methods.
    params: Tuple[Tuple[str, Optional[str]], ...]
    #: Dimension from the return annotation, or ``None``.
    return_dim: Optional[str] = None
    #: Dimension inferred by the interpreter's first pass when no
    #: return annotation anchors it; consulted only as a fallback.
    inferred_return_dim: Optional[str] = None
    #: The function definition node, for the interpreter.
    node: Optional[ast.FunctionDef] = field(default=None, repr=False)

    @property
    def effective_return_dim(self) -> Optional[str]:
        return self.return_dim or self.inferred_return_dim


def _function_summary(
    node: ast.FunctionDef,
    module: str,
    path: str,
    class_name: Optional[str],
) -> FunctionSummary:
    args = node.args
    ordered: List[ast.arg] = list(args.posonlyargs) + list(args.args)
    if class_name is not None and ordered and ordered[0].arg in ("self", "cls"):
        ordered = ordered[1:]
    params = tuple(
        (a.arg, annotation_dim(a.annotation))
        for a in ordered + list(args.kwonlyargs)
    )
    return FunctionSummary(
        name=node.name,
        module=module,
        path=path,
        lineno=node.lineno,
        class_name=class_name,
        params=params,
        return_dim=annotation_dim(node.returns),
        node=node,
    )


class UnitsModel:
    """Everything the interpreter resolves names against."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        #: ``(module, class_name) -> {attr: dim}`` from annotations in
        #: that class's own body (pre-MRO merge).
        self._own_attr_dims: Dict[Tuple[str, str], Dict[str, str]] = {}
        #: ``(module, class_name, method) -> summary``.
        self._methods: Dict[Tuple[str, str, str], FunctionSummary] = {}
        #: ``(module, func_name) -> summary`` for module-level functions.
        self._functions: Dict[Tuple[str, str], FunctionSummary] = {}
        #: class name -> is-scheduler verdict cache.
        self._scheduler_cache: Dict[Tuple[str, Optional[str]], bool] = {}
        self._collect()

    # -- collection --------------------------------------------------------

    def _collect(self) -> None:
        for mod in self.project.modules:
            for stmt in mod.tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    self._functions[(mod.module, stmt.name)] = _function_summary(
                        stmt, mod.module, mod.path, None
                    )
                elif isinstance(stmt, ast.ClassDef):
                    self._collect_class(stmt, mod.module, mod.path)

    def _collect_class(self, node: ast.ClassDef, module: str, path: str) -> None:
        attrs: Dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                dim = annotation_dim(stmt.annotation)
                if dim is not None:
                    attrs[stmt.target.id] = dim
            elif isinstance(stmt, ast.FunctionDef):
                self._methods[(module, node.name, stmt.name)] = (
                    _function_summary(stmt, module, path, node.name)
                )
                # Annotated self-attribute assignments anywhere in the
                # method body contribute attribute dimensions too.
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.AnnAssign)
                        and isinstance(sub.target, ast.Attribute)
                        and isinstance(sub.target.value, ast.Name)
                        and sub.target.value.id == "self"
                    ):
                        dim = annotation_dim(sub.annotation)
                        if dim is not None:
                            attrs.setdefault(sub.target.attr, dim)
        self._own_attr_dims[(module, node.name)] = attrs

    # -- queries -----------------------------------------------------------

    def attr_dim(
        self, class_name: str, attr: str, from_module: Optional[str] = None
    ) -> Optional[str]:
        """Declared dimension of ``class_name.attr``, walking the MRO."""
        for info in self.project.mro(class_name, from_module):
            own = self._own_attr_dims.get((info.module, info.name))
            if own and attr in own:
                return own[attr]
        return None

    def method_summary(
        self, class_name: str, method: str, from_module: Optional[str] = None
    ) -> Optional[FunctionSummary]:
        """First summary of ``method`` along the by-name MRO."""
        for info in self.project.mro(class_name, from_module):
            summary = self._methods.get((info.module, info.name, method))
            if summary is not None:
                return summary
        return None

    def function_summary(
        self, module: str, name: str
    ) -> Optional[FunctionSummary]:
        """Module-level function summary, same-module only."""
        return self._functions.get((module, name))

    def is_scheduler_class(
        self, class_name: str, from_module: Optional[str] = None
    ) -> bool:
        """Scheduler scope for RPR110: the class is registered in
        ``SCHEDULER_CLASSES`` or carries ``Scheduler`` /
        ``VirtualTimeScheduler`` anywhere in its base-name closure."""
        key = (class_name, from_module)
        cached = self._scheduler_cache.get(key)
        if cached is not None:
            return cached
        registered = {r.class_name for r in self.project.registered}
        closure = self.project.base_name_closure(class_name, from_module)
        verdict = bool(
            closure & registered
            or "Scheduler" in closure
            or "VirtualTimeScheduler" in closure
        )
        self._scheduler_cache[key] = verdict
        return verdict

    def all_summaries(self) -> List[FunctionSummary]:
        """Every collected summary (methods then functions), in a
        deterministic order for the inference pass."""
        out = [self._methods[k] for k in sorted(self._methods)]
        out.extend(self._functions[k] for k in sorted(self._functions))
        return out


def build_units_model(project: ProjectModel) -> UnitsModel:
    """Build (or fetch the cached) :class:`UnitsModel` for a project."""
    cached = project.cache.get("units_model")
    if isinstance(cached, UnitsModel):
        return cached
    model = UnitsModel(project)
    project.cache["units_model"] = model
    return model
