"""The dimension lattice and its transfer tables.

Three layers::

            Conflict                 (provably mixed dimensions)
       /   /   |   \\   \\
    sim_time wall_time ... weight    (the concrete dimensions, plus
       \\   \\   |   /   /            ``dimensionless`` for literals)
            Unknown                  (no information)

The *join* (control-flow merge) is deliberately forgiving: two branches
assigning different concrete dimensions to one variable join to
``Unknown``, not ``Conflict`` -- a merge is not evidence of a bug, and
false positives would force suppressions all over legitimate code.
``Conflict`` is produced only by the arithmetic transfer functions,
where mixing is structural (``sim_time + virtual_time`` on one node).

Arithmetic follows the classic units algebra:

* **additive** operators (``+``, ``-``, ``%``) require *compatible*
  dimensions.  Each wall axis is compatible with ``duration``
  (``now + delay`` is a timestamp; ``t1 - t0`` is a duration); the
  virtual axis is closed under addition and subtraction (tags and
  virtual spans live on the same axis); everything else only combines
  with itself.  Incompatible pairs produce ``Conflict`` and an RPR101
  hazard.
* **multiplicative** operators compose dimensions instead of requiring
  agreement: ``rate * duration -> cost``, ``cost / rate -> duration``,
  ``cost / weight -> virtual_time`` (Figure 7's central conversion),
  ``weight * virtual_time -> cost`` (the GPS backlog identity), and a
  same-dimension quotient is a pure ratio (``dimensionless``).  Unknown
  compositions yield ``Unknown``, never ``Conflict`` -- multiplication
  of exotic pairs is how *new* dimensions are built, not a bug per se.
* ``dimensionless`` is the identity for every operator: scaling by a
  constant or adding an epsilon never changes (or conflicts with) a
  dimension.

Comparisons reuse the additive compatibility relation: ordering a
``sim_time`` against a ``virtual_time`` is meaningless (RPR102).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "UNKNOWN",
    "CONFLICT",
    "DIMENSIONLESS",
    "CONCRETE_DIMS",
    "AbstractValue",
    "join",
    "join_values",
    "compatible",
    "additive_transfer",
    "multiplicative_transfer",
    "binop_transfer",
]

#: Lattice bottom: nothing known about the value's dimension.
UNKNOWN = "unknown"
#: Lattice top: the value provably mixes incompatible dimensions.
CONFLICT = "conflict"
#: Pure numbers: literals, counts, ratios, epsilons.
DIMENSIONLESS = "dimensionless"

#: The concrete (middle-layer) dimensions, mirroring repro.units.
CONCRETE_DIMS: FrozenSet[str] = frozenset(
    {
        "sim_time",
        "wall_time",
        "virtual_time",
        "duration",
        "cost",
        "rate",
        "weight",
        DIMENSIONLESS,
    }
)

#: Additive compatibility groups: dimensions sharing a group may be
#: added/subtracted/compared.  ``duration`` deliberately appears in both
#: wall-axis groups (a duration is a length of seconds on either
#: clock), which also makes sim_time/wall_time *incompatible with each
#: other* -- exactly the property RPR101/RPR102 protect.
_ADDITIVE_GROUPS: Tuple[FrozenSet[str], ...] = (
    frozenset({"sim_time", "duration"}),
    frozenset({"wall_time", "duration"}),
    frozenset({"virtual_time"}),
    frozenset({"cost"}),
    frozenset({"rate"}),
    frozenset({"weight"}),
    frozenset({DIMENSIONLESS}),
)

#: Additive result: for a compatible pair, the "pointier" dimension
#: wins (time point +/- duration -> time point); subtracting two points
#: on the same wall axis yields a duration.
_POINT_AXES: FrozenSet[str] = frozenset({"sim_time", "wall_time"})

#: Multiplicative composition table (symmetric pairs listed once).
_MUL_TABLE: Dict[Tuple[str, str], str] = {
    ("rate", "duration"): "cost",
    ("weight", "virtual_time"): "cost",
}

#: Division table: numerator, denominator -> quotient.
_DIV_TABLE: Dict[Tuple[str, str], str] = {
    ("cost", "rate"): "duration",
    ("cost", "duration"): "rate",
    ("cost", "weight"): "virtual_time",
    ("cost", "virtual_time"): "weight",
}


@dataclass(frozen=True)
class AbstractValue:
    """One abstract value: a dimension plus the two taint bits.

    ``dim``
        Element of the dimension lattice (``UNKNOWN``, ``CONFLICT``, or
        a member of :data:`CONCRETE_DIMS`).
    ``rng``
        True when the value is (or derives from) a seeded-RNG draw.
    ``wall``
        True when the value derives from a host-clock read.  Tracked
        separately from ``dim == "wall_time"`` because taint is sticky:
        arithmetic that launders the dimension into ``Unknown`` keeps
        the taint, which is what lets RPR111 catch a host-clock read
        three assignments away from the sim-state sink.
    ``rng_generator``
        True when the value *is* an RNG generator object (the result of
        ``make_rng``/``default_rng``); method calls on it produce
        ``rng``-tainted draws.
    """

    dim: str = UNKNOWN
    rng: bool = False
    wall: bool = False
    rng_generator: bool = False

    def with_dim(self, dim: str) -> "AbstractValue":
        return AbstractValue(dim, self.rng, self.wall, self.rng_generator)

    @property
    def tainted(self) -> bool:
        return self.rng or self.wall


#: The no-information value (module-level singleton for convenience).
BOTTOM = AbstractValue()


def join(a: str, b: str) -> str:
    """Join two lattice elements at a control-flow merge.

    ``Unknown`` is the identity; equal elements join to themselves;
    *different concrete* elements join to ``Unknown`` (see module
    docstring for why not ``Conflict``); ``Conflict`` absorbs.
    """
    if a == b:
        return a
    if a == UNKNOWN:
        return b
    if b == UNKNOWN:
        return a
    if a == CONFLICT or b == CONFLICT:
        return CONFLICT
    return UNKNOWN


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Pointwise join: dimensions via :func:`join`, taints via union."""
    return AbstractValue(
        dim=join(a.dim, b.dim),
        rng=a.rng or b.rng,
        wall=a.wall or b.wall,
        rng_generator=a.rng_generator or b.rng_generator,
    )


def compatible(a: str, b: str) -> bool:
    """May ``a`` and ``b`` legally meet under ``+``/``-``/``<``?

    ``Unknown`` and ``dimensionless`` are compatible with everything;
    ``Conflict`` is treated as compatible so one bad node produces one
    finding rather than a cascade downstream.
    """
    if a in (UNKNOWN, CONFLICT, DIMENSIONLESS) or b in (
        UNKNOWN,
        CONFLICT,
        DIMENSIONLESS,
    ):
        return True
    return any(a in group and b in group for group in _ADDITIVE_GROUPS)


def additive_transfer(op: str, a: str, b: str) -> str:
    """Result dimension of ``a <op> b`` for ``+``/``-``/``%``.

    Callers check :func:`compatible` first; an incompatible pair
    produces ``CONFLICT`` here regardless of the operator.
    """
    if not compatible(a, b):
        return CONFLICT
    if a == CONFLICT or b == CONFLICT:
        return CONFLICT
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == DIMENSIONLESS:
        return b
    if b == DIMENSIONLESS:
        return a
    if a == b:
        # Subtracting two points on a wall axis measures a length.
        if op == "-" and a in _POINT_AXES:
            return "duration"
        return a
    # Compatible but different: one is a point axis, the other duration.
    if op == "+" or op == "%":
        return a if a in _POINT_AXES else b
    # point - duration -> point; duration - point is a hazard-free
    # oddity we simply give up on.
    if a in _POINT_AXES and b == "duration":
        return a
    return UNKNOWN


def multiplicative_transfer(op: str, a: str, b: str) -> str:
    """Result dimension of ``a <op> b`` for ``*`` and ``/``.

    Composition, never conflict: unknown pairings yield ``UNKNOWN``.
    """
    if a == CONFLICT or b == CONFLICT:
        return CONFLICT
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if op == "*":
        if a == DIMENSIONLESS:
            return b
        if b == DIMENSIONLESS:
            return a
        return _MUL_TABLE.get((a, b)) or _MUL_TABLE.get((b, a)) or UNKNOWN
    if op == "/":
        if b == DIMENSIONLESS:
            return a
        if a == b:
            return DIMENSIONLESS
        if a == DIMENSIONLESS:
            # 1/x: an inverse dimension we do not model.
            return UNKNOWN
        return _DIV_TABLE.get((a, b), UNKNOWN)
    return UNKNOWN


def binop_transfer(op: str, a: str, b: str) -> Tuple[str, bool]:
    """Dispatch on the operator; returns ``(result_dim, is_hazard)``.

    ``is_hazard`` is True exactly when the pair is additively
    incompatible under an additive operator -- the RPR101 condition.
    Unhandled operators (``**``, ``//``, bit ops) return ``UNKNOWN``.
    """
    if op in ("+", "-", "%"):
        if not compatible(a, b):
            return CONFLICT, True
        return additive_transfer(op, a, b), False
    if op in ("*", "/"):
        return multiplicative_transfer(op, a, b), False
    if op == "//":
        # Floor division follows true division's composition.
        return multiplicative_transfer("/", a, b), False
    return UNKNOWN, False


def comparison_hazard(a: str, b: str) -> bool:
    """True when ordering ``a`` against ``b`` is dimensionally
    meaningless -- the RPR102 condition (same relation as addition)."""
    return not compatible(a, b)


def describe(dim: str) -> str:
    """Human-readable dimension name for finding messages."""
    return dim
