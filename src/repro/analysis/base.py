"""Rule plugin interface and per-module analysis context."""

from __future__ import annotations

import ast
from typing import Callable, ClassVar, List, Optional, Tuple

from .findings import Finding
from .project import ProjectModel

__all__ = ["Rule", "RuleContext", "Reporter"]

#: Callback project-level rules use to report a finding at an arbitrary
#: location: ``report(path, line, col, code, message, rule_name)``.
Reporter = Callable[[str, int, int, str, str, str], None]


class RuleContext:
    """Everything a rule can know about the module under analysis.

    Attributes
    ----------
    path:
        The file path as handed to the analyzer (what findings carry).
    module:
        Best-effort dotted module name, derived by walking parent
        directories while they contain ``__init__.py`` -- so analyzing
        the real tree yields ``repro.core.vt_base`` and analyzing a test
        fixture yields the fixture's package-relative name.
    parts:
        ``module.split(".")`` as a tuple, for cheap scope checks
        (``"core" in ctx.parts``).
    tree:
        The parsed :class:`ast.Module`.
    """

    __slots__ = ("path", "module", "parts", "tree", "_findings")

    def __init__(self, path: str, module: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.parts: Tuple[str, ...] = tuple(module.split(".")) if module else ()
        self.tree = tree
        self._findings: List[Finding] = []

    def report(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        *,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        """Record a finding for ``rule`` at ``node`` (or an explicit line)."""
        self._findings.append(
            Finding(
                code=rule.code,
                message=message,
                path=self.path,
                line=line if line is not None else getattr(node, "lineno", 1),
                col=col if col is not None else getattr(node, "col_offset", 0),
                rule=rule.name,
            )
        )

    @property
    def findings(self) -> List[Finding]:
        return self._findings

    def in_package(self, name: str) -> bool:
        """True when ``name`` is one of the module's package components."""
        return name in self.parts[:-1]


class Rule:
    """Base class for analysis rules.

    A rule is a visitor plugin: it declares the AST node types it wants
    in :attr:`node_types`, and the engine -- which walks each module's
    tree exactly once -- calls :meth:`visit` for every matching node.
    Module-scoped state lives between :meth:`start_module` and
    :meth:`finish_module`; rules needing the whole tree (class graphs,
    registry membership) override :meth:`finish_project`, called once
    after every file has been walked.
    """

    #: Stable finding code, ``RPR0xx``.  Suppressions match on this.
    code: ClassVar[str] = "RPR999"
    #: Short kebab-case rule name for listings and finding records.
    name: ClassVar[str] = "unnamed-rule"
    #: One-line description shown by ``--list-rules``.
    description: ClassVar[str] = ""
    #: AST node classes this rule's :meth:`visit` receives.
    node_types: ClassVar[Tuple[type, ...]] = ()

    def start_module(self, ctx: RuleContext) -> None:
        """Called before the walk of each module; reset per-module state."""

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        """Called for every node in the module whose type is listed in
        :attr:`node_types`, in document order."""

    def finish_module(self, ctx: RuleContext) -> None:
        """Called after the walk of each module."""

    def finish_project(self, project: ProjectModel, report: Reporter) -> None:
        """Called once after all modules; cross-file rules report here."""

    def __repr__(self) -> str:
        return f"<Rule {self.code} {self.name}>"
